//! Integration tests of the shard router: deterministic tenant routing,
//! pool isolation under overload, and the cross-pool metrics rollup,
//! through the public facade.

use std::time::Duration;

use paresy::prelude::*;

/// The §5.2 specification: at zero allowed error its search needs orders
/// of magnitude more candidates than any quick run can finish, so it
/// reliably keeps a worker busy until a budget or a cancellation fires.
fn hard_spec(extra: &str) -> Spec {
    Spec::from_strs(
        [
            "00", "1101", "0001", "0111", "001", "1", "10", "1100", "111", "1010", extra,
        ],
        [
            "", "0", "0000", "0011", "01", "010", "011", "100", "1000", "1001", "11", "1110",
        ],
    )
    .unwrap()
}

fn tiny_spec(positive: &str) -> Spec {
    Spec::from_strs([positive], []).unwrap()
}

/// A tenant name that routes to `pool` on a router of `pools` pools.
fn tenant_for_pool(router: &ShardRouter, pool: usize) -> String {
    for i in 0..1024 {
        let tenant = format!("tenant-{i}");
        let request = SynthRequest::new(tiny_spec("0")).with_tenant(&tenant);
        if router.route(&request) == pool {
            return tenant;
        }
    }
    panic!("no tenant found for pool {pool}");
}

#[test]
fn same_tenant_key_always_lands_on_the_same_pool() {
    let router = ShardRouter::start(RouterConfig::identical(4, ServiceConfig::new(1))).unwrap();
    // Whatever the specification, a tenant's requests share one pool.
    let routes: Vec<usize> = ["0", "1", "00", "010", "111", "0110"]
        .iter()
        .map(|p| router.route(&SynthRequest::new(tiny_spec(p)).with_tenant("acme")))
        .collect();
    assert!(
        routes.windows(2).all(|w| w[0] == w[1]),
        "tenant 'acme' scattered across pools: {routes:?}"
    );
    // Tenant-less requests route by spec fingerprint: identical specs
    // (even reordered ones) agree, and the mapping is the documented
    // consistent-hash ring over the pool names — stable across
    // processes, so a restarted router shards identically.
    let spec = Spec::from_strs(["10", "1"], ["0"]).unwrap();
    let reordered = Spec::from_strs(["1", "10", "10"], ["0"]).unwrap();
    assert_eq!(
        router.route(&SynthRequest::new(spec.clone())),
        router.route(&SynthRequest::new(reordered))
    );
    let mut ring = HashRing::new();
    for index in 0..4 {
        ring.add(&format!("pool-{index}"));
    }
    assert_eq!(
        format!("pool-{}", router.route(&SynthRequest::new(spec.clone()))),
        ring.route(spec.fingerprint()).unwrap()
    );
    router.shutdown();
}

#[test]
fn queue_full_on_one_pool_does_not_poison_the_others() {
    // Two single-worker pools with one-slot queues; pool A is driven to
    // QueueFull while pool B keeps serving.
    let synth = SynthConfig::default().with_time_budget(Duration::from_millis(500));
    let router = ShardRouter::start(RouterConfig::identical(
        2,
        ServiceConfig::new(1)
            .with_queue_capacity(1)
            .with_synth(synth),
    ))
    .unwrap();
    let tenant_a = tenant_for_pool(&router, 0);
    let tenant_b = tenant_for_pool(&router, 1);

    // Occupy pool A's worker, then its queue slot (distinct hard specs,
    // so nothing coalesces). The worker needs a moment to pop the first
    // job; spin until the second submission owns the queue slot.
    let _running = router
        .submit(SynthRequest::new(hard_spec("01111")).with_tenant(&tenant_a))
        .unwrap();
    let queued = loop {
        match router.try_submit(SynthRequest::new(hard_spec("011110")).with_tenant(&tenant_a)) {
            Ok(handle) => break handle,
            Err(ServiceError::QueueFull) => std::thread::yield_now(),
            Err(other) => panic!("unexpected {other}"),
        }
    };
    let rejected = router
        .try_submit(SynthRequest::new(hard_spec("0111100")).with_tenant(&tenant_a))
        .unwrap_err();
    assert_eq!(rejected, ServiceError::QueueFull);

    // Pool B is unaffected: it accepts and answers immediately.
    let unaffected = router
        .try_submit(
            SynthRequest::new(Spec::from_strs(["0", "00"], ["1"]).unwrap()).with_tenant(&tenant_b),
        )
        .unwrap();
    assert!(unaffected.wait().outcome.is_ok());

    let snapshot = router.shutdown();
    let rollup = snapshot.rollup();
    // At least the final rejection (the spin loop above may have counted
    // more while the worker was still dequeuing), all of them pool A's.
    assert!(rollup.rejected >= 1);
    assert_eq!(snapshot.pools[0].1.rejected, rollup.rejected);
    assert_eq!(snapshot.pools[1].1.rejected, 0);
    assert_eq!(snapshot.pools[1].1.solved, 1);
    drop(queued);
}

#[test]
fn rollup_equals_the_sum_of_per_pool_counters() {
    let router = ShardRouter::start(RouterConfig::identical(3, ServiceConfig::new(1))).unwrap();
    // A mix of tenant-routed and fingerprint-routed traffic, with
    // duplicates to exercise cache hits.
    let specs = ["0", "1", "00", "11", "01", "0"];
    let handles: Vec<JobHandle> = specs
        .iter()
        .enumerate()
        .flat_map(|(i, p)| {
            let spec = tiny_spec(p);
            let tenanted = SynthRequest::new(spec.clone()).with_tenant(format!("t{}", i % 2));
            [
                router.submit(tenanted).unwrap(),
                router.submit(SynthRequest::new(spec)).unwrap(),
            ]
        })
        .collect();
    for handle in &handles {
        assert!(handle.wait().outcome.is_ok());
    }
    let snapshot = router.shutdown();
    assert_eq!(snapshot.pools.len(), 3);
    let rollup = snapshot.rollup();
    let sum = |field: fn(&MetricsSnapshot) -> u64| -> u64 {
        snapshot.pools.iter().map(|(_, s)| field(s)).sum()
    };
    assert_eq!(rollup.submitted, sum(|s| s.submitted));
    assert_eq!(rollup.submitted, 2 * specs.len() as u64);
    assert_eq!(rollup.cache_hits, sum(|s| s.cache_hits));
    assert_eq!(rollup.coalesced, sum(|s| s.coalesced));
    assert_eq!(rollup.enqueued, sum(|s| s.enqueued));
    assert_eq!(rollup.completed, sum(|s| s.completed));
    assert_eq!(rollup.solved, sum(|s| s.solved));
    assert_eq!(rollup.failed, sum(|s| s.failed));
    assert_eq!(
        rollup.workers.len(),
        snapshot.pools.iter().map(|(_, s)| s.workers.len()).sum()
    );
    // Every request was answered, and the duplicated spec "0" reused at
    // least one earlier result somewhere.
    assert_eq!(rollup.solved + rollup.cache_hits + rollup.coalesced, 12);
    assert!(rollup.cache_hits + rollup.coalesced >= 1);
}
