//! Property tests: the sequential and data-parallel engines implement the
//! same algorithm, so on any specification they must agree on the minimal
//! cost (the expressions themselves may differ between equally-minimal
//! candidates).

use proptest::prelude::*;

use paresy::bench::generator::{generate_type2, Type2Params};
use paresy::core::Engine;
use paresy::lang::Alphabet;
use paresy::prelude::*;

fn small_spec(seed: u64, max_len: usize, examples: usize) -> Option<Spec> {
    let params = Type2Params {
        alphabet: Alphabet::binary(),
        max_len,
        positives: examples,
        negatives: examples,
    };
    generate_type2(&params, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Both engines find expressions of the same (minimal) cost and both
    /// results classify every example correctly.
    #[test]
    fn engines_agree_on_minimal_cost(seed in 0u64..10_000, max_len in 2usize..4, examples in 2usize..4) {
        let Some(spec) = small_spec(seed, max_len, examples) else { return Ok(()) };
        let sequential = Synthesizer::new(CostFn::UNIFORM).run(&spec).unwrap();
        let parallel = Synthesizer::new(CostFn::UNIFORM)
            .with_engine(Engine::parallel_with_threads(3))
            .run(&spec)
            .unwrap();
        prop_assert_eq!(sequential.cost, parallel.cost, "spec {}", spec);
        prop_assert!(spec.is_satisfied_by(&sequential.regex));
        prop_assert!(spec.is_satisfied_by(&parallel.regex));
        prop_assert_eq!(sequential.regex.cost(&CostFn::UNIFORM), sequential.cost);
        prop_assert_eq!(parallel.regex.cost(&CostFn::UNIFORM), parallel.cost);
    }

    /// The reported cost never exceeds the cost of the overfitted union of
    /// positives, which is the search's own upper bound.
    #[test]
    fn results_never_exceed_the_overfit_bound(seed in 0u64..10_000) {
        let Some(spec) = small_spec(seed, 3, 3) else { return Ok(()) };
        let result = Synthesizer::new(CostFn::UNIFORM).run(&spec).unwrap();
        prop_assert!(result.cost <= spec.overfit_regex().cost(&CostFn::UNIFORM));
    }

    /// Minimality is monotone in the cost function: making the star more
    /// expensive can only increase (or keep) the total cost of the result.
    #[test]
    fn star_surcharge_is_monotone(seed in 0u64..10_000) {
        let Some(spec) = small_spec(seed, 3, 3) else { return Ok(()) };
        let cheap = Synthesizer::new(CostFn::UNIFORM).run(&spec).unwrap();
        let pricey = Synthesizer::new(CostFn::new(1, 1, 5, 1, 1)).run(&spec).unwrap();
        // Evaluate both results under the uniform function: the result of
        // the uniform search is by definition minimal there.
        prop_assert!(cheap.cost <= pricey.regex.cost(&CostFn::UNIFORM));
    }
}
