//! Property tests: the sequential, thread-parallel and data-parallel
//! backends implement the same algorithm, so on any specification they
//! must agree on the minimal cost (the expressions themselves may differ
//! between equally-minimal candidates). The agreement is checked through
//! the session API, including batched runs over one warm device and runs
//! under cancellation.

use proptest::prelude::*;

use paresy::bench::generator::{generate_type2, Type2Params};
use paresy::lang::Alphabet;
use paresy::prelude::*;

fn small_spec(seed: u64, max_len: usize, examples: usize) -> Option<Spec> {
    let params = Type2Params {
        alphabet: Alphabet::binary(),
        max_len,
        positives: examples,
        negatives: examples,
    };
    generate_type2(&params, seed)
}

fn session(backend: BackendChoice) -> SynthSession {
    SynthSession::new(SynthConfig::new(CostFn::UNIFORM).with_backend(backend)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All three backends find expressions of the same (minimal) cost and
    /// every result classifies every example correctly.
    #[test]
    fn backends_agree_on_minimal_cost(seed in 0u64..10_000, max_len in 2usize..4, examples in 2usize..4) {
        let Some(spec) = small_spec(seed, max_len, examples) else { return Ok(()) };
        let sequential = session(BackendChoice::Sequential).run(&spec).unwrap();
        let threaded = session(BackendChoice::ThreadParallel { threads: Some(3) })
            .run(&spec)
            .unwrap();
        let parallel = session(BackendChoice::DeviceParallel { threads: Some(3) })
            .run(&spec)
            .unwrap();
        prop_assert_eq!(sequential.cost, threaded.cost, "spec {}", spec);
        prop_assert_eq!(sequential.cost, parallel.cost, "spec {}", spec);
        prop_assert!(spec.is_satisfied_by(&sequential.regex));
        prop_assert!(spec.is_satisfied_by(&threaded.regex));
        prop_assert!(spec.is_satisfied_by(&parallel.regex));
        prop_assert_eq!(sequential.regex.cost(&CostFn::UNIFORM), sequential.cost);
        prop_assert_eq!(threaded.regex.cost(&CostFn::UNIFORM), threaded.cost);
        prop_assert_eq!(parallel.regex.cost(&CostFn::UNIFORM), parallel.cost);
    }

    /// A batch through a warm thread-parallel session agrees with the
    /// sequential baseline spec by spec, and a cancellation mid-batch
    /// makes the remaining specs fail fast with `Cancelled` on every
    /// backend alike.
    #[test]
    fn threaded_batches_agree_and_cancel(base in 0u64..10_000) {
        let specs: Vec<Spec> =
            (0..4).filter_map(|k| small_spec(base + k, 3, 3)).collect();
        if specs.is_empty() { return Ok(()) }

        let mut sequential = session(BackendChoice::Sequential);
        let mut threaded = session(BackendChoice::ThreadParallel { threads: Some(2) });
        let cpu_results = sequential.run_batch(&specs);
        let mt_results = threaded.run_batch(&specs);
        prop_assert_eq!(threaded.stats().runs, specs.len() as u64);
        for ((spec, cpu), mt) in specs.iter().zip(&cpu_results).zip(&mt_results) {
            let cpu = cpu.as_ref().unwrap();
            let mt = mt.as_ref().unwrap();
            prop_assert_eq!(cpu.cost, mt.cost, "spec {}", spec);
            prop_assert!(spec.is_satisfied_by(&mt.regex));
        }
        // The self-scheduled launches were accounted on the stats device.
        prop_assert!(threaded.device().unwrap().stats().kernel_launches > 0);

        // Cancellation: tripping the token fails the whole batch fast,
        // identically across backends.
        for choice in [
            BackendChoice::Sequential,
            BackendChoice::ThreadParallel { threads: Some(2) },
            BackendChoice::DeviceParallel { threads: Some(2) },
        ] {
            let mut cancelled = session(choice);
            cancelled.cancel_token().cancel();
            for result in cancelled.run_batch(&specs) {
                prop_assert!(
                    matches!(result, Err(SynthesisError::Cancelled { .. })),
                    "backend {} did not cancel", choice.name()
                );
            }
            prop_assert_eq!(cancelled.stats().failed, specs.len() as u64);
        }
    }

    /// `run_batch` through one warm session of each backend produces the
    /// same per-spec minimal costs as the other backend, with every spec
    /// sharing the parallel session's single device.
    #[test]
    fn batched_sessions_agree_spec_by_spec(base in 0u64..10_000) {
        let specs: Vec<Spec> =
            (0..4).filter_map(|k| small_spec(base + k, 3, 3)).collect();
        if specs.is_empty() { return Ok(()) }

        let mut sequential = session(BackendChoice::Sequential);
        let mut parallel = session(BackendChoice::DeviceParallel { threads: Some(2) });
        let device_stats_before = parallel.device().unwrap().stats();

        let cpu_results = sequential.run_batch(&specs);
        let gpu_results = parallel.run_batch(&specs);

        prop_assert_eq!(sequential.stats().runs, specs.len() as u64);
        prop_assert_eq!(parallel.stats().runs, specs.len() as u64);
        for ((spec, cpu), gpu) in specs.iter().zip(&cpu_results).zip(&gpu_results) {
            let cpu = cpu.as_ref().unwrap();
            let gpu = gpu.as_ref().unwrap();
            prop_assert_eq!(cpu.cost, gpu.cost, "spec {}", spec);
            prop_assert!(spec.is_satisfied_by(&cpu.regex));
            prop_assert!(spec.is_satisfied_by(&gpu.regex));
        }
        // Every run of the batch went through the one reusable device.
        let device_stats = parallel.device().unwrap().stats();
        prop_assert!(device_stats.kernel_launches > device_stats_before.kernel_launches);
    }

    /// Streamed-chunk level execution is invisible in the outcome: for
    /// every backend and every chunk bound — including the degenerate
    /// one-row-at-a-time stream and `usize::MAX`, which restores the
    /// seed's whole-level batches — the minimal cost matches the
    /// whole-level sequential baseline, and the result still classifies
    /// every example correctly.
    #[test]
    fn streamed_chunks_agree_with_whole_level_batches(seed in 0u64..10_000, examples in 2usize..4) {
        let Some(spec) = small_spec(seed, 3, examples) else { return Ok(()) };
        let whole = {
            let config = SynthConfig::new(CostFn::UNIFORM)
                .with_level_chunk_rows(usize::MAX);
            SynthSession::new(config).unwrap().run(&spec).unwrap()
        };
        prop_assert!(spec.is_satisfied_by(&whole.regex));
        for chunk_rows in [1usize, 7, 64, usize::MAX] {
            for choice in [
                BackendChoice::Sequential,
                BackendChoice::ThreadParallel { threads: Some(3) },
                BackendChoice::DeviceParallel { threads: Some(3) },
            ] {
                let config = SynthConfig::new(CostFn::UNIFORM)
                    .with_backend(choice)
                    .with_level_chunk_rows(chunk_rows)
                    .with_sched_chunk(2);
                let streamed = SynthSession::new(config).unwrap().run(&spec).unwrap();
                prop_assert_eq!(
                    streamed.cost, whole.cost,
                    "backend {} chunk {} on {}", choice.name(), chunk_rows, spec
                );
                prop_assert!(spec.is_satisfied_by(&streamed.regex));
            }
        }
    }

    /// The reported cost never exceeds the cost of the overfitted union of
    /// positives, which is the search's own upper bound.
    #[test]
    fn results_never_exceed_the_overfit_bound(seed in 0u64..10_000) {
        let Some(spec) = small_spec(seed, 3, 3) else { return Ok(()) };
        let result = session(BackendChoice::Sequential).run(&spec).unwrap();
        prop_assert!(result.cost <= spec.overfit_regex().cost(&CostFn::UNIFORM));
    }

    /// Minimality is monotone in the cost function: making the star more
    /// expensive can only increase (or keep) the total cost of the result.
    #[test]
    fn star_surcharge_is_monotone(seed in 0u64..10_000) {
        let Some(spec) = small_spec(seed, 3, 3) else { return Ok(()) };
        let cheap = session(BackendChoice::Sequential).run(&spec).unwrap();
        let mut pricey_session =
            SynthSession::new(SynthConfig::new(CostFn::new(1, 1, 5, 1, 1))).unwrap();
        let pricey = pricey_session.run(&spec).unwrap();
        // Evaluate both results under the uniform function: the result of
        // the uniform search is by definition minimal there.
        prop_assert!(cheap.cost <= pricey.regex.cost(&CostFn::UNIFORM));
    }
}
