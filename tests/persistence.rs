//! Integration tests of the persistent result cache: disk-warm restarts,
//! corrupt-tail tolerance, configuration mismatches and compaction,
//! through the public facade.
//!
//! A `--cache-dir` store is a *directory* — `MANIFEST.json`, numbered
//! `NNNNN.jsonl` segments and at most one `checkpoint.NNNNN.jsonl` — so
//! the damage these tests inflict targets whichever live file holds the
//! records after a clean shutdown (the checkpoint: `shutdown` folds all
//! history into one before exiting).

use std::path::{Path, PathBuf};

use paresy::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paresy-persist-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Root of the single-service store inside `--cache-dir DIR`.
fn store_root(dir: &Path) -> PathBuf {
    dir.join("results")
}

/// The record-bearing files of a store, sorted: the checkpoint (if any)
/// first, then segments in id order — the replay order.
fn live_files(root: &Path) -> Vec<PathBuf> {
    let mut checkpoints = Vec::new();
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(root).unwrap().flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("checkpoint.") && name.ends_with(".jsonl") {
            checkpoints.push(entry.path());
        } else if name.ends_with(".jsonl") {
            segments.push(entry.path());
        }
    }
    checkpoints.sort();
    segments.sort();
    checkpoints.extend(segments);
    checkpoints
}

/// The one file holding records after a clean shutdown (the fold leaves
/// a checkpoint plus an empty tail segment).
fn record_file(root: &Path) -> PathBuf {
    live_files(root)
        .into_iter()
        .find(|path| {
            std::fs::metadata(path)
                .map(|m| m.len() > 0)
                .unwrap_or(false)
        })
        .expect("a clean shutdown leaves a non-empty checkpoint")
}

fn specs() -> Vec<Spec> {
    vec![
        Spec::from_strs(["0", "00"], ["1", "10"]).unwrap(),
        Spec::from_strs(["1", "11", "111"], ["", "0", "10"]).unwrap(),
        Spec::from_strs(["10", "101", "100"], ["", "0", "1"]).unwrap(),
    ]
}

fn run_all(service: &SynthService, specs: &[Spec]) -> Vec<SynthResponse> {
    let handles: Vec<JobHandle> = specs
        .iter()
        .map(|spec| service.submit(SynthRequest::new(spec.clone())).unwrap())
        .collect();
    handles.iter().map(JobHandle::wait).collect()
}

#[test]
fn a_restarted_service_answers_repeats_from_disk_without_synthesis() {
    let dir = temp_dir("restart");
    let config = || ServiceConfig::new(1).with_cache_dir(&dir);

    // First process: solve everything cold and persist.
    let first = SynthService::start(config()).unwrap();
    let cold = run_all(&first, &specs());
    let costs: Vec<u64> = cold
        .iter()
        .map(|r| r.outcome.as_ref().expect("quick specs solve").cost)
        .collect();
    let metrics = first.shutdown();
    assert_eq!(metrics.disk_loaded, 0, "the first start is cold");
    assert_eq!(metrics.solved, 3);
    // The store is a manifest-led directory, not a single file.
    assert!(store_root(&dir).join("MANIFEST.json").exists());

    // Second process: the same requests are all disk-warm cache hits.
    let second = SynthService::start(config()).unwrap();
    let warm = run_all(&second, &specs());
    for (response, expected_cost) in warm.iter().zip(&costs) {
        assert_eq!(response.source, ResponseSource::Cache);
        let result = response.outcome.as_ref().unwrap();
        assert_eq!(result.cost, *expected_cost, "disk result keeps its cost");
    }
    let metrics = second.shutdown();
    assert_eq!(metrics.disk_loaded, 3);
    assert_eq!(metrics.cache_hits, 3);
    assert_eq!(
        metrics.workers.iter().map(|w| w.runs).sum::<u64>(),
        0,
        "the restarted service executed zero syntheses"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_truncated_record_file_degrades_to_a_cold_start() {
    let dir = temp_dir("truncated");
    let config = || ServiceConfig::new(1).with_cache_dir(&dir);
    {
        let service = SynthService::start(config()).unwrap();
        run_all(&service, &specs());
        service.shutdown();
    }
    // Cut the checkpoint mid-first-record, as a crash mid-write would:
    // nothing parses any more.
    let path = record_file(&store_root(&dir));
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..20.min(text.len())]).unwrap();

    let service = SynthService::start(config()).expect("corrupt content is not a start error");
    let responses = run_all(&service, &specs());
    for response in &responses {
        assert_eq!(response.source, ResponseSource::Fresh, "cold start");
        assert!(response.outcome.is_ok());
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.disk_loaded, 0);
    assert!(metrics.disk_skipped_corrupt >= 1);
    assert_eq!(metrics.solved, 3, "everything re-ran normally");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_partially_truncated_tail_keeps_the_intact_records() {
    let dir = temp_dir("tail");
    let config = || ServiceConfig::new(1).with_cache_dir(&dir);
    {
        let service = SynthService::start(config()).unwrap();
        run_all(&service, &specs());
        service.shutdown();
    }
    // Keep every full line but chop the last record in half.
    let path = record_file(&store_root(&dir));
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    let mut mangled = lines[..2].join("\n");
    mangled.push('\n');
    mangled.push_str(&lines[2][..lines[2].len() / 2]);
    std::fs::write(&path, mangled).unwrap();

    let service = SynthService::start(config()).unwrap();
    let metrics = service.metrics();
    assert_eq!(metrics.disk_loaded, 2, "the intact records still warm");
    assert_eq!(metrics.disk_skipped_corrupt, 1);
    let responses = run_all(&service, &specs());
    let from_cache = responses
        .iter()
        .filter(|r| r.source == ResponseSource::Cache)
        .count();
    assert_eq!(from_cache, 2);
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_deleted_manifest_recovers_by_directory_scan() {
    let dir = temp_dir("scan");
    let config = || ServiceConfig::new(1).with_cache_dir(&dir);
    {
        let service = SynthService::start(config()).unwrap();
        run_all(&service, &specs());
        service.shutdown();
    }
    // Losing the manifest (or corrupting it) must not lose the records:
    // open falls back to adopting every segment the directory holds.
    std::fs::remove_file(store_root(&dir).join("MANIFEST.json")).unwrap();

    let service = SynthService::start(config()).unwrap();
    let metrics = service.metrics();
    assert_eq!(metrics.disk_loaded, 3, "the scan recovered every record");
    let responses = run_all(&service, &specs());
    assert!(responses.iter().all(|r| r.source == ResponseSource::Cache));
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_different_configuration_treats_persisted_records_as_misses() {
    let dir = temp_dir("config");
    {
        let service = SynthService::start(ServiceConfig::new(1).with_cache_dir(&dir)).unwrap();
        run_all(&service, &specs());
        service.shutdown();
    }
    // The same directory under a different cost function: every record
    // mismatches, so every request runs fresh.
    let other = SynthConfig::new(CostFn::new(2, 1, 5, 1, 1));
    let service =
        SynthService::start(ServiceConfig::new(1).with_cache_dir(&dir).with_synth(other)).unwrap();
    let responses = run_all(&service, &specs());
    for response in &responses {
        assert_eq!(response.source, ResponseSource::Fresh);
        assert!(response.outcome.is_ok());
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.disk_loaded, 0);
    assert_eq!(metrics.disk_skipped_config, 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_folds_history_into_one_checkpoint_record_per_key() {
    let dir = temp_dir("compact");
    let config = || {
        ServiceConfig::new(1)
            .with_cache_capacity(2)
            .with_cache_dir(&dir)
    };
    {
        // Capacity 2 with 3 specs: the first completion is evicted, so a
        // repeat of it appends a *second* record for the same key.
        let service = SynthService::start(config()).unwrap();
        run_all(&service, &specs());
        let repeat = service
            .submit(SynthRequest::new(specs()[0].clone()))
            .unwrap();
        assert_eq!(repeat.source(), ResponseSource::Fresh, "evicted → re-run");
        assert!(repeat.wait().outcome.is_ok());
        service.shutdown();
    }
    // The shutdown fold keeps exactly the live entries (capacity 2) in
    // the checkpoint — one record per key, every line parseable.
    let root = store_root(&dir);
    let checkpoint = record_file(&root);
    assert!(
        checkpoint
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("checkpoint."),
        "{checkpoint:?}"
    );
    let text = std::fs::read_to_string(&checkpoint).unwrap();
    assert_eq!(text.lines().count(), 2, "{text}");
    {
        let service = SynthService::start(config()).unwrap();
        let metrics = service.metrics();
        assert_eq!(metrics.disk_loaded, 2);
        assert_eq!(metrics.disk_skipped_corrupt, 0);
        service.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_pools_persist_into_separate_stores_and_rewarm() {
    let dir = temp_dir("router");
    let router_config = || RouterConfig::identical(2, ServiceConfig::new(1)).with_cache_dir(&dir);
    {
        let router = ShardRouter::start(router_config()).unwrap();
        let handles: Vec<JobHandle> = specs()
            .iter()
            .map(|spec| router.submit(SynthRequest::new(spec.clone())).unwrap())
            .collect();
        for handle in &handles {
            assert!(handle.wait().outcome.is_ok());
        }
        router.shutdown();
    }
    assert!(dir.join("pool-0").join("MANIFEST.json").exists());
    assert!(dir.join("pool-1").join("MANIFEST.json").exists());

    // The restarted router routes identically, so each shard finds its
    // own entries and the whole replay is disk-served.
    let router = ShardRouter::start(router_config()).unwrap();
    let handles: Vec<JobHandle> = specs()
        .iter()
        .map(|spec| router.submit(SynthRequest::new(spec.clone())).unwrap())
        .collect();
    for handle in &handles {
        let response = handle.wait();
        assert_eq!(response.source, ResponseSource::Cache);
        assert!(response.outcome.is_ok());
    }
    let rollup = router.shutdown().rollup();
    assert_eq!(rollup.cache_hits, 3);
    assert_eq!(rollup.disk_loaded, 3);
    assert_eq!(rollup.workers.iter().map(|w| w.runs).sum::<u64>(), 0);
    std::fs::remove_dir_all(&dir).ok();
}
