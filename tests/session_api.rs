//! End-to-end tests of the session-based synthesis API: observers,
//! cooperative cancellation, batching over one warm device, config
//! serialization, and the streamed level execution engine (chunk-boundary
//! cancellation, scheduler counters, early-winner correctness).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use paresy::core::{BatchOutcome, LevelBatch};
use paresy::prelude::*;

fn intro_spec() -> Spec {
    Spec::from_strs(
        ["10", "101", "100", "1010", "1011", "1000", "1001"],
        ["", "0", "1", "00", "11", "010"],
    )
    .unwrap()
}

/// An observer that trips a cancel token after a fixed number of level
/// events — the cooperative-cancellation pattern a service front-end uses.
struct CancelAfter {
    token: CancelToken,
    levels_seen: u64,
    cancel_after: u64,
}

impl Observer for CancelAfter {
    fn on_level(&mut self, _level: &LevelStats) {
        self.levels_seen += 1;
        if self.levels_seen >= self.cancel_after {
            self.token.cancel();
        }
    }
}

#[test]
fn tripped_cancel_token_stops_between_levels() {
    let mut session = SynthSession::new(SynthConfig::new(CostFn::UNIFORM)).unwrap();
    let mut observer = CancelAfter {
        token: session.cancel_token(),
        levels_seen: 0,
        cancel_after: 1,
    };
    let err = session.run_with(&intro_spec(), &mut observer).unwrap_err();
    let SynthesisError::Cancelled { stats } = err else {
        panic!("expected Cancelled, got {err:?}");
    };
    // The token tripped after the first completed level, so the search
    // stopped at the following level boundary: no further level was
    // recorded, far below the cost-8 solution.
    assert_eq!(observer.levels_seen, 1);
    assert_eq!(stats.levels.len(), 1);
    assert!(
        stats.max_cost_reached <= 2,
        "search ran past the cancellation boundary: {stats:?}"
    );

    // The flag is sticky across the batch...
    assert!(matches!(
        session.run(&intro_spec()),
        Err(SynthesisError::Cancelled { .. })
    ));
    // ...until reset, after which the session solves normally.
    session.cancel_token().reset();
    let result = session.run(&intro_spec()).unwrap();
    assert_eq!(result.regex.to_string(), "10(0+1)*");
}

#[test]
fn observers_see_strictly_increasing_cost_levels_on_both_backends() {
    for backend in [
        BackendChoice::Sequential,
        BackendChoice::DeviceParallel { threads: Some(3) },
    ] {
        let config = SynthConfig::new(CostFn::UNIFORM).with_backend(backend);
        let mut session = SynthSession::new(config).unwrap();
        let mut log = LevelLog::default();
        let result = session.run_with(&intro_spec(), &mut log).unwrap();
        assert_eq!(result.cost, 8, "{backend:?}");
        assert!(!log.levels.is_empty(), "{backend:?}: no level events");
        assert!(
            log.levels.windows(2).all(|w| w[0].cost < w[1].cost),
            "{backend:?}: levels not monotone: {:?}",
            log.levels
        );
        // The observer saw exactly what the run's stats recorded.
        assert_eq!(log.levels, result.stats.levels, "{backend:?}");
    }
}

#[test]
fn run_batch_reuses_one_device_across_the_table1_style_suite() {
    // A miniature Table 1 suite: several specs through one parallel
    // session, all sharing the backend's single device.
    let specs = vec![
        intro_spec(),
        Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap(),
        Spec::from_strs(["0", "00", "000"], ["", "01", "1"]).unwrap(),
        Spec::from_strs(["01", "0101"], ["", "0", "1", "10"]).unwrap(),
    ];
    let config = SynthConfig::new(CostFn::UNIFORM)
        .with_backend(BackendChoice::DeviceParallel { threads: Some(2) });
    let mut session = SynthSession::new(config).unwrap();
    let device = session
        .device()
        .expect("parallel backend owns a device")
        .clone();

    let results = session.run_batch(&specs);
    assert_eq!(results.len(), specs.len());
    for (spec, result) in specs.iter().zip(&results) {
        let result = result.as_ref().unwrap();
        assert!(
            spec.is_satisfied_by(&result.regex),
            "{spec}: {}",
            result.regex
        );
    }
    assert_eq!(session.stats().runs, specs.len() as u64);
    assert_eq!(session.stats().solved, specs.len() as u64);
    // Device setup was paid once: the same instance accumulated kernel
    // launches from every spec of the batch.
    assert!(device.stats().kernel_launches > 0);
    assert_eq!(session.device().unwrap().stats(), device.stats());

    // Per-run deltas on the reused device via reset_stats.
    device.reset_stats();
    assert_eq!(device.stats().kernel_launches, 0);
    session.run(&specs[0]).unwrap();
    assert!(device.stats().kernel_launches > 0);
}

#[test]
fn config_round_trips_and_drives_a_session() {
    let config = SynthConfig::new(CostFn::new(1, 1, 10, 1, 1))
        .with_backend(BackendChoice::DeviceParallel { threads: Some(2) })
        .with_allowed_error(0.0)
        .with_memory_budget(64 * 1024 * 1024);
    let wire = config.to_string();
    let parsed: SynthConfig = wire.parse().unwrap();
    assert_eq!(parsed, config);

    let mut session = SynthSession::new(parsed).unwrap();
    assert_eq!(session.backend_name(), "gpu-sim-parallel");
    let result = session.run(&intro_spec()).unwrap();
    assert!(intro_spec().is_satisfied_by(&result.regex));
}

#[test]
fn invalid_config_is_a_recoverable_error_everywhere() {
    let bad = SynthConfig::new(CostFn::UNIFORM).with_allowed_error(2.0);
    let err = SynthSession::new(bad).unwrap_err();
    assert!(
        matches!(err, SynthesisError::InvalidConfig { .. }),
        "{err:?}"
    );

    // The one-shot builder reports it from run() instead of panicking.
    let err = Synthesizer::new(CostFn::UNIFORM)
        .with_allowed_error(-1.0)
        .run(&intro_spec())
        .unwrap_err();
    assert!(
        matches!(err, SynthesisError::InvalidConfig { .. }),
        "{err:?}"
    );
}

/// A custom backend that trips the session's cancel token while a level
/// is streaming: chunk `cancel_at` is still processed, after which the
/// level driver must stop at the very next chunk boundary. The token is
/// filled in after session construction (sessions mint their own token).
#[derive(Debug)]
struct CancelMidLevel {
    token: Arc<std::sync::OnceLock<CancelToken>>,
    calls: Arc<AtomicU64>,
    cancel_at: u64,
}

impl Backend for CancelMidLevel {
    fn name(&self) -> &'static str {
        "test-cancel-mid-level"
    }

    fn process(&self, batch: &mut LevelBatch<'_, '_>) -> BatchOutcome {
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if call == self.cancel_at {
            self.token
                .get()
                .expect("token wired after creation")
                .cancel();
        }
        batch.run_sequential()
    }
}

#[test]
fn cancellation_between_streamed_chunks_lands_promptly() {
    // One candidate row per chunk: the intro spec needs far more than
    // `cancel_at` candidate rows, so if cancellation only landed at level
    // boundaries the backend would see many more process calls.
    let calls = Arc::new(AtomicU64::new(0));
    let token_slot = Arc::new(std::sync::OnceLock::new());
    let mut session = SynthSession::with_backend(
        SynthConfig::new(CostFn::UNIFORM).with_level_chunk_rows(1),
        Box::new(CancelMidLevel {
            token: Arc::clone(&token_slot),
            calls: Arc::clone(&calls),
            cancel_at: 3,
        }),
    )
    .unwrap();
    token_slot
        .set(session.cancel_token())
        .expect("token slot set once");

    let err = session.run(&intro_spec()).unwrap_err();
    assert!(matches!(err, SynthesisError::Cancelled { .. }), "{err:?}");
    assert_eq!(
        calls.load(Ordering::Relaxed),
        3,
        "the driver processed chunks past the cancellation"
    );
}

#[test]
fn threaded_scheduler_counters_and_early_winner_are_consistent() {
    // Single-row claims with more workers than rows per chunk maximise
    // both stealing and early-winner skipping; the outcome must still be
    // the minimal cost-8 expression, and the session must expose the
    // scheduler's work.
    let spec = intro_spec();
    let config = SynthConfig::new(CostFn::UNIFORM)
        .with_backend(BackendChoice::ThreadParallel { threads: Some(4) })
        .with_sched_chunk(1)
        .with_level_chunk_rows(32);
    let mut session = SynthSession::new(config).unwrap();
    let result = session.run(&spec).unwrap();
    assert_eq!(result.cost, 8);
    assert!(spec.is_satisfied_by(&result.regex));

    let stats = session.stats();
    assert!(stats.chunks_claimed > 0, "{stats:?}");
    assert!(stats.prefilter_rejects > 0, "{stats:?}");
    assert_eq!(stats.dedup_overflowed, 0, "{stats:?}");
    // Per-run stats flow into the cumulative session counters.
    assert_eq!(stats.chunks_claimed, result.stats.chunks_claimed);
    assert_eq!(stats.chunks_stolen, result.stats.chunks_stolen);
    // Hash-insert accounting reflects the rows that actually reached the
    // dedup set — never more than the candidates constructed (the old
    // whole-batch accounting could overstate under skipping).
    let device = session.device().unwrap().stats();
    assert!(
        device.hash_insertions <= stats.candidates_generated,
        "inserts {} overstate candidates {}",
        device.hash_insertions,
        stats.candidates_generated
    );
}

#[test]
fn sequential_and_device_count_streamed_chunks() {
    for backend in [
        BackendChoice::Sequential,
        BackendChoice::DeviceParallel { threads: Some(2) },
    ] {
        let config = SynthConfig::new(CostFn::UNIFORM)
            .with_backend(backend)
            .with_level_chunk_rows(4);
        let mut session = SynthSession::new(config).unwrap();
        let result = session.run(&intro_spec()).unwrap();
        assert_eq!(result.cost, 8, "{backend:?}");
        let stats = session.stats();
        // Chunked streaming: strictly more chunks than levels, no steals
        // outside the thread-parallel scheduler.
        assert!(
            stats.chunks_claimed > result.stats.levels.len() as u64,
            "{backend:?}: {stats:?}"
        );
        assert_eq!(stats.chunks_stolen, 0, "{backend:?}");
        assert!(stats.prefilter_rejects > 0, "{backend:?}");
    }
}

/// The session API is the only entry point: the one-shot `Synthesizer`
/// wrapper and a session agree on results, and choice/backend naming is
/// unified.
#[test]
fn synthesizer_wrapper_matches_session() {
    let spec = intro_spec();
    let one_shot = Synthesizer::new(CostFn::UNIFORM)
        .with_backend(BackendChoice::DeviceParallel { threads: Some(2) })
        .run(&spec)
        .unwrap();
    let via_session = SynthSession::new(
        SynthConfig::new(CostFn::UNIFORM)
            .with_backend(BackendChoice::DeviceParallel { threads: Some(2) }),
    )
    .unwrap()
    .run(&spec)
    .unwrap();
    assert_eq!(one_shot.cost, via_session.cost);
    assert_eq!(
        BackendChoice::parallel().name(),
        DeviceParallel::NAME,
        "CLI choice and backend agree on the name"
    );
}
