//! Integration tests of the TCP JSONL front-end through the public
//! facade: multi-client serving, fair-share flood isolation, control
//! verbs and the graceful drain.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use paresy::prelude::*;
use paresy::service::json::Json;

fn start_server(
    admission: AdmissionConfig,
) -> (SocketAddr, std::thread::JoinHandle<RouterSnapshot>) {
    let router = ShardRouter::start(RouterConfig::identical(2, ServiceConfig::new(1))).unwrap();
    let config = NetConfig::new("127.0.0.1:0")
        .with_handler_threads(4)
        .with_admission(admission);
    let server = NetServer::bind(config, router).unwrap();
    let addr = server.local_addr();
    let serving = std::thread::spawn(move || server.run().unwrap());
    (addr, serving)
}

fn request_line(id: &str, positive: &str, tenant: &str) -> String {
    format!("{{\"id\": \"{id}\", \"pos\": [\"{positive}\"], \"tenant\": \"{tenant}\"}}\n")
}

fn connect_streaming(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    stream
        .write_all(b"{\"op\": \"mode\", \"value\": \"stream\"}\n")
        .unwrap();
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert!(ack.contains("stream"), "{ack}");
    (stream, reader)
}

#[test]
fn a_flooding_tenant_never_delays_a_well_behaved_one() {
    // The flooder's bucket admits one request; everything after it must
    // be rejected explicitly while the well-behaved tenant keeps being
    // served — on a server with only one worker per pool, so an
    // unfairly queued flood would visibly stall the good tenant.
    let admission = AdmissionConfig::new().with_tenant("flood", TenantPolicy::limited(1e-9, 1.0));
    let (addr, serving) = start_server(admission);

    let flood_done = Arc::new(AtomicBool::new(false));
    let flooder = {
        let flood_done = Arc::clone(&flood_done);
        std::thread::spawn(move || {
            let (mut stream, mut reader) = connect_streaming(addr);
            const FLOOD: usize = 100;
            for index in 0..FLOOD {
                // Distinct specs: nothing coalesces or cache-serves.
                stream
                    .write_all(
                        request_line(&format!("f{index}"), &"0".repeat(index + 1), "flood")
                            .as_bytes(),
                    )
                    .unwrap();
            }
            let mut line = String::new();
            let (mut answered, mut rejected) = (0, 0);
            for _ in 0..FLOOD {
                line.clear();
                reader.read_line(&mut line).unwrap();
                let answer = Json::parse(line.trim()).unwrap();
                match answer.get("status").and_then(Json::as_str) {
                    Some("rejected") => {
                        assert_eq!(
                            answer.get("reason").and_then(Json::as_str),
                            Some("rate_limited"),
                            "{answer:?}"
                        );
                        rejected += 1;
                    }
                    _ => answered += 1,
                }
            }
            flood_done.store(true, Ordering::SeqCst);
            (answered, rejected)
        })
    };

    // The well-behaved tenant's requests are all served while the flood
    // is (or was) in progress.
    let (mut stream, mut reader) = connect_streaming(addr);
    for index in 0..5 {
        stream
            .write_all(
                request_line(&format!("g{index}"), &"1".repeat(index + 1), "good").as_bytes(),
            )
            .unwrap();
    }
    let mut line = String::new();
    for _ in 0..5 {
        line.clear();
        reader.read_line(&mut line).unwrap();
        let answer = Json::parse(line.trim()).unwrap();
        assert_eq!(
            answer.get("status").and_then(Json::as_str),
            Some("solved"),
            "{answer:?}"
        );
    }

    let (answered, rejected) = flooder.join().unwrap();
    assert_eq!(answered, 1, "one token in the flood bucket");
    assert_eq!(rejected, 99, "everything else is rejected, nothing hangs");

    let mut closer = TcpStream::connect(addr).unwrap();
    closer.write_all(b"{\"op\": \"shutdown\"}\n").unwrap();
    let snapshot = serving.join().unwrap();
    assert_eq!(snapshot.admission.rate_limited, 99);
    assert_eq!(snapshot.admission.admitted, 6);
    // The rollup splits admission rejections from queue-full ones.
    let rollup = snapshot.rollup();
    assert_eq!(rollup.rate_limited, 99);
    assert_eq!(rollup.rejected_queue_full, 0);
}

#[test]
fn verbs_answer_inline_and_shutdown_drains_pending_work() {
    let (addr, serving) = start_server(AdmissionConfig::new());
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut read_json = || {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(!line.is_empty(), "connection closed early");
        Json::parse(line.trim()).unwrap()
    };

    stream.write_all(b"{\"op\": \"ping\"}\n").unwrap();
    assert_eq!(read_json().get("op").and_then(Json::as_str), Some("ping"));

    stream.write_all(b"{\"op\": \"metrics\"}\n").unwrap();
    let metrics = read_json();
    assert_eq!(
        metrics.get("schema").and_then(Json::as_str),
        Some("rei-service/router-metrics-v1")
    );

    // Submit work and immediately ask for shutdown: the pending answers
    // are still delivered before the connection closes.
    stream
        .write_all(request_line("a", "00", "t1").as_bytes())
        .unwrap();
    stream
        .write_all(request_line("b", "11", "t2").as_bytes())
        .unwrap();
    stream.write_all(b"{\"op\": \"shutdown\"}\n").unwrap();
    let mut statuses = Vec::new();
    loop {
        let line = read_json();
        if line.get("op").is_some() {
            continue; // the shutdown ack may interleave with answers
        }
        statuses.push(
            line.get("status")
                .and_then(Json::as_str)
                .unwrap()
                .to_string(),
        );
        if statuses.len() == 2 {
            break;
        }
    }
    assert_eq!(statuses, ["solved", "solved"]);

    let snapshot = serving.join().unwrap();
    assert_eq!(snapshot.admission.admitted, 2);
    assert_eq!(snapshot.rollup().solved, 2);
}

#[test]
fn malformed_lines_and_bad_verbs_answer_without_closing() {
    let (addr, serving) = start_server(AdmissionConfig::new());
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut read_json = || {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        Json::parse(line.trim()).unwrap()
    };

    stream.write_all(b"not json\n").unwrap();
    assert_eq!(
        read_json().get("status").and_then(Json::as_str),
        Some("bad-request")
    );
    stream.write_all(b"{\"op\": \"frobnicate\"}\n").unwrap();
    assert_eq!(
        read_json().get("status").and_then(Json::as_str),
        Some("bad-request")
    );
    // The connection survived both errors.
    stream
        .write_all(request_line("ok", "010", "t").as_bytes())
        .unwrap();
    assert_eq!(
        read_json().get("status").and_then(Json::as_str),
        Some("solved")
    );

    let mut closer = TcpStream::connect(addr).unwrap();
    closer.write_all(b"{\"op\": \"shutdown\"}\n").unwrap();
    serving.join().unwrap();
}
