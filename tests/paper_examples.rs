//! Integration tests that pin down the worked examples of the paper:
//! the introductory specification, Example 3.6, the Section 5.2
//! allowed-error table and the star-free search of Section 5.1.

use paresy::prelude::*;
use paresy::syntax::metrics;

fn intro_spec() -> Spec {
    Spec::from_strs(
        ["10", "101", "100", "1010", "1011", "1000", "1001"],
        ["", "0", "1", "00", "11", "010"],
    )
    .unwrap()
}

#[test]
fn intro_example_learns_the_intended_expression() {
    let result = Synthesizer::new(CostFn::UNIFORM)
        .run(&intro_spec())
        .unwrap();
    assert_eq!(result.regex.to_string(), "10(0+1)*");
    assert_eq!(result.cost, 8);
    // The overfitted union of all positives (expression (2) in the paper)
    // also satisfies the specification but is much more expensive.
    let overfit = intro_spec().overfit_regex();
    assert!(intro_spec().is_satisfied_by(&overfit));
    assert!(overfit.cost(&CostFn::UNIFORM) > result.cost);
}

#[test]
fn intro_example_on_the_parallel_backend_is_identical() {
    let sequential = Synthesizer::new(CostFn::UNIFORM)
        .run(&intro_spec())
        .unwrap();
    let config = SynthConfig::new(CostFn::UNIFORM)
        .with_backend(BackendChoice::DeviceParallel { threads: Some(4) });
    let parallel = SynthSession::new(config)
        .unwrap()
        .run(&intro_spec())
        .unwrap();
    assert_eq!(sequential.cost, parallel.cost);
    assert!(intro_spec().is_satisfied_by(&parallel.regex));
}

#[test]
fn example_3_6_learns_a_cost_7_expression() {
    let spec = Spec::from_strs(["1", "011", "1011", "11011"], ["", "10", "101", "0011"]).unwrap();
    let result = Synthesizer::new(CostFn::UNIFORM).run(&spec).unwrap();
    // The paper's Example 3.6 annotates (0?1)*1 as the minimal expression.
    assert_eq!(
        result.cost,
        parse("(0?1)*1").unwrap().cost(&CostFn::UNIFORM)
    );
    assert!(spec.is_satisfied_by(&result.regex));
}

#[test]
fn allowed_error_table_matches_the_paper() {
    // Section 5.2, allowed error vs. cost of the result. The paper reports
    // (20 %, 12), (25 %, 8), (30 %, 8), (35 %, 7), (40 %, 4), (45 %, 1),
    // (50 %, 1); the exact expressions it prints are reproduced too.
    let spec = Spec::from_strs(
        [
            "00", "1101", "0001", "0111", "001", "1", "10", "1100", "111", "1010",
        ],
        [
            "", "0", "0000", "0011", "01", "010", "011", "100", "1000", "1001", "11", "1110",
        ],
    )
    .unwrap();
    let expected = [
        (20, 12, "(0+11)*(1+00)"),
        (25, 8, "(0+11)*1"),
        (30, 8, "(0+11)*1"),
        (35, 7, "1+(0+1)0"),
        (40, 4, "10?"),
        (45, 1, "1"),
        (50, 1, "∅"),
    ];
    for (percent, cost, regex) in expected {
        let synth =
            Synthesizer::new(CostFn::UNIFORM).with_allowed_error(f64::from(percent) / 100.0);
        let result = synth.run(&spec).unwrap();
        assert_eq!(
            result.cost, cost,
            "allowed error {percent}% produced {}",
            result.regex
        );
        assert_eq!(result.regex.to_string(), regex, "allowed error {percent}%");
        let allowed = synth.allowed_example_errors(&spec);
        assert!(spec.misclassified_by(&result.regex) <= allowed);
    }
}

#[test]
fn expensive_star_searches_the_star_free_fragment() {
    // Section 5.1: "We can already search in the star-free fragment, by
    // setting cost(*) high enough."
    let spec = Spec::from_strs(["01", "011", "0111"], ["", "0", "1", "10", "110"]).unwrap();
    let star_free_costs = CostFn::new(1, 1, 100, 1, 1);
    let result = Synthesizer::new(star_free_costs).run(&spec).unwrap();
    assert!(spec.is_satisfied_by(&result.regex));
    assert!(
        metrics::is_star_free(&result.regex),
        "expected a star-free expression, got {}",
        result.regex
    );
}

#[test]
fn infix_heterogeneity_governs_closure_size() {
    // Section 4.3's observation that ic({aaa, aa}) is much smaller than
    // ic({abc, de}) drives the benchmark design; check the sizes are as
    // published (4 vs 10).
    use paresy::lang::{InfixClosure, Word};
    assert_eq!(
        InfixClosure::of_words([Word::from("aaa"), Word::from("aa")]).len(),
        4
    );
    assert_eq!(
        InfixClosure::of_words([Word::from("abc"), Word::from("de")]).len(),
        10
    );
}
