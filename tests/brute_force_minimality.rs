//! The strongest minimality oracle: for small specifications, exhaustively
//! enumerate *every* regular expression cheaper than the synthesiser's
//! answer and verify that none of them satisfies the specification. This
//! validates the central claim of the paper (precise **and minimal** REI)
//! against an implementation that shares no code with the search.

use proptest::prelude::*;

use paresy::bench::generator::{generate_type2, Type2Params};
use paresy::lang::Alphabet;
use paresy::prelude::*;
use paresy::syntax::enumerate::expressions_up_to;

fn assert_no_cheaper_solution(spec: &Spec, found_cost: u64, costs: &CostFn) {
    if found_cost <= costs.literal {
        return;
    }
    let alphabet = Alphabet::of_spec(spec);
    for (cost, candidate) in expressions_up_to(alphabet.symbols(), costs, found_cost - 1) {
        assert!(
            !spec.is_satisfied_by(&candidate),
            "{candidate} (cost {cost}) beats the synthesiser's cost {found_cost} on {spec}"
        );
    }
    // ∅ and ε are not part of the enumeration; check them explicitly.
    assert!(
        !spec.is_satisfied_by(&Regex::Empty),
        "∅ beats the synthesiser on {spec}"
    );
    assert!(
        !spec.is_satisfied_by(&Regex::Epsilon),
        "ε beats the synthesiser on {spec}"
    );
}

#[test]
fn fixed_small_specs_are_minimal_by_brute_force() {
    let cases = [
        (vec!["0", "00", "000"], vec!["", "01", "1"]),
        (vec!["01", "0101"], vec!["", "0", "1", "10"]),
        (vec!["1", "11", "111"], vec!["", "0", "10"]),
        (vec!["", "ab"], vec!["a", "b", "ba"]),
    ];
    for (pos, neg) in cases {
        let spec = Spec::from_strs(pos.clone(), neg.clone()).unwrap();
        let result = Synthesizer::new(CostFn::UNIFORM).run(&spec).unwrap();
        assert!(spec.is_satisfied_by(&result.regex));
        assert_no_cheaper_solution(&spec, result.cost, &CostFn::UNIFORM);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random tiny specifications: the synthesiser's answer is minimal
    /// according to exhaustive enumeration (bounded to keep the oracle's
    /// exponential blow-up in check).
    #[test]
    fn random_small_specs_are_minimal_by_brute_force(seed in 0u64..5_000) {
        let params = Type2Params {
            alphabet: Alphabet::binary(),
            max_len: 3,
            positives: 2,
            negatives: 2,
        };
        let Some(spec) = generate_type2(&params, seed) else { return Ok(()) };
        let result = Synthesizer::new(CostFn::UNIFORM).run(&spec).unwrap();
        prop_assert!(spec.is_satisfied_by(&result.regex));
        // Only exhaustively check answers small enough for the oracle.
        if result.cost <= 8 {
            assert_no_cheaper_solution(&spec, result.cost, &CostFn::UNIFORM);
        }
    }
}
