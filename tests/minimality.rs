//! Cross-tool minimality check: Paresy and an un-heuristic AlphaRegex both
//! perform exhaustive search ordered by the same cost homomorphism over the
//! same constructor grammar, so on specifications without ε examples they
//! must report results of identical cost — two independently implemented
//! oracles for "precise and minimal".

use proptest::prelude::*;

use paresy::baseline::{AlphaRegex, AlphaRegexConfig, AlphaRegexError};
use paresy::bench::generator::{generate_type1, Type1Params};
use paresy::lang::Alphabet;
use paresy::prelude::*;

fn spec_without_epsilon(seed: u64) -> Option<Spec> {
    let params = Type1Params {
        alphabet: Alphabet::binary(),
        max_len: 3,
        positives: 3,
        negatives: 3,
    };
    let spec = generate_type1(&params, seed)?;
    if spec.iter().any(|w| w.is_empty()) {
        None
    } else {
        Some(spec)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn paresy_matches_alpharegex_minimal_cost(seed in 0u64..10_000) {
        let Some(spec) = spec_without_epsilon(seed) else { return Ok(()) };

        let paresy = Synthesizer::new(CostFn::ALPHAREGEX).run(&spec).unwrap();
        prop_assert!(spec.is_satisfied_by(&paresy.regex));

        let config = AlphaRegexConfig {
            use_wildcard: false,
            time_budget: Some(std::time::Duration::from_secs(10)),
            ..AlphaRegexConfig::default()
        };
        match AlphaRegex::with_config(config).run(&spec) {
            Ok(alpha) => {
                prop_assert!(spec.is_satisfied_by(&alpha.regex));
                prop_assert_eq!(
                    paresy.cost, alpha.cost,
                    "spec {}: paresy found {} vs alpharegex {}", spec, paresy.regex, alpha.regex
                );
            }
            // The baseline may exhaust its budget on unlucky draws; that
            // does not invalidate the property.
            Err(AlphaRegexError::SearchExhausted { .. }) => {}
            Err(other) => return Err(TestCaseError::fail(format!("alpharegex failed: {other}"))),
        }
    }
}

/// The paper reports that AlphaRegex's wild-card heuristic sacrifices
/// minimality; check that the heuristic can only ever match or increase
/// the cost Paresy attains.
#[test]
fn wildcard_heuristic_never_beats_paresy() {
    for task in paresy::bench::suite::easy_tasks(8) {
        let spec = task.spec();
        let paresy = Synthesizer::new(CostFn::ALPHAREGEX).run(&spec).unwrap();
        let config = AlphaRegexConfig {
            use_wildcard: true,
            ..AlphaRegexConfig::default()
        };
        let alpha = AlphaRegex::with_config(config).run(&spec).unwrap();
        assert!(
            paresy.cost <= alpha.cost,
            "{}: paresy {} (cost {}) vs alpharegex {} (cost {})",
            task.name(),
            paresy.regex,
            paresy.cost,
            alpha.regex,
            alpha.cost
        );
    }
}
