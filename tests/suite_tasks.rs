//! End-to-end runs of the reconstructed AlphaRegex suite through the public
//! API: precision with respect to the examples, minimality with respect to
//! the hand-written reference solutions and cross-matcher agreement.

use paresy::bench::suite::{alpharegex_suite, easy_tasks};
use paresy::prelude::*;
use paresy::syntax::nfa::Nfa;

#[test]
fn every_task_specification_is_well_formed() {
    for task in alpharegex_suite() {
        let spec = task.spec();
        assert!(
            spec.num_positive() >= 4,
            "{} has too few positives",
            task.name()
        );
        assert!(
            spec.num_negative() >= 4,
            "{} has too few negatives",
            task.name()
        );
        assert!(
            spec.is_satisfied_by(&task.reference_regex()),
            "{}",
            task.name()
        );
    }
}

#[test]
fn paresy_solves_the_easy_tasks_at_least_as_cheaply_as_the_references() {
    for task in easy_tasks(9) {
        let spec = task.spec();
        let result = Synthesizer::new(CostFn::UNIFORM).run(&spec).unwrap();
        assert!(
            spec.is_satisfied_by(&result.regex),
            "{}: {} is not precise",
            task.name(),
            result.regex
        );
        let reference_cost = task.reference_regex().cost(&CostFn::UNIFORM);
        assert!(
            result.cost <= reference_cost,
            "{}: found cost {} but the reference {} costs {}",
            task.name(),
            result.cost,
            task.reference,
            reference_cost
        );
    }
}

#[test]
fn derivative_and_nfa_matchers_agree_on_synthesised_results() {
    for task in easy_tasks(8) {
        let spec = task.spec();
        let result = Synthesizer::new(CostFn::UNIFORM).run(&spec).unwrap();
        let nfa = Nfa::compile(&result.regex);
        for word in spec.iter() {
            let via_derivatives = result.regex.accepts(word.chars().iter().copied());
            let via_nfa = nfa.accepts(word.chars().iter().copied());
            assert_eq!(via_derivatives, via_nfa, "{}: word {word}", task.name());
        }
    }
}

#[test]
fn synthesised_results_generalise_beyond_the_examples() {
    // For a task with a crisp target language ("strings ending with 0"),
    // the minimal result should agree with the reference on *all* strings
    // up to length 5, not just the examples.
    let task = alpharegex_suite()
        .into_iter()
        .find(|t| t.number == 11)
        .unwrap();
    let spec = task.spec();
    let result = Synthesizer::new(CostFn::UNIFORM).run(&spec).unwrap();
    let reference = Nfa::compile(&task.reference_regex());
    let learned = Nfa::compile(&result.regex);
    // The task's examples contain no ε (AlphaRegex cannot handle it), so
    // the learned language is only pinned down on non-empty words.
    let non_empty = |words: Vec<String>| -> Vec<String> {
        words.into_iter().filter(|w| !w.is_empty()).collect()
    };
    let reference_words = non_empty(reference.enumerate_up_to(&['0', '1'], 5));
    let learned_words = non_empty(learned.enumerate_up_to(&['0', '1'], 5));
    assert_eq!(reference_words, learned_words, "learned {}", result.regex);
}
