//! Integration tests of the synthesis service: caching, coalescing,
//! deadlines and graceful shutdown, through the public facade.

use std::time::{Duration, Instant};

use paresy::prelude::*;

/// Spins until the service's queue is empty — i.e. a worker has picked up
/// everything submitted so far. Tests that stage a long-running blocker
/// call this before queueing the jobs whose scheduling they assert on;
/// otherwise the batch-fusion drain may legitimately pick those jobs up
/// *together with* the blocker.
fn wait_for_empty_queue(service: &SynthService) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.metrics().queue_depth > 0 {
        assert!(Instant::now() < deadline, "queue never drained");
        std::thread::yield_now();
    }
}

/// The paper's introductory specification (minimal cost 8).
fn intro_spec() -> Spec {
    Spec::from_strs(
        ["10", "101", "100", "1010", "1011", "1000", "1001"],
        ["", "0", "1", "00", "11", "010"],
    )
    .unwrap()
}

/// The same specification with reordered, duplicated examples — a
/// different tenant writing the same request differently.
fn intro_spec_reordered() -> Spec {
    Spec::from_strs(
        ["1001", "10", "10", "1000", "1011", "1010", "100", "101"],
        ["010", "11", "00", "1", "0", "", ""],
    )
    .unwrap()
}

/// The §5.2 specification: at zero allowed error its search needs orders
/// of magnitude more candidates than any quick run can finish, so it
/// reliably keeps a worker busy until a budget or a cancellation fires.
fn hard_spec() -> Spec {
    Spec::from_strs(
        [
            "00", "1101", "0001", "0111", "001", "1", "10", "1100", "111", "1010",
        ],
        [
            "", "0", "0000", "0011", "01", "010", "011", "100", "1000", "1001", "11", "1110",
        ],
    )
    .unwrap()
}

#[test]
fn cache_hit_returns_an_equivalent_result_without_a_new_run() {
    let service = SynthService::start(ServiceConfig::new(1)).unwrap();

    let fresh = service.submit(SynthRequest::new(intro_spec())).unwrap();
    assert_eq!(fresh.source(), ResponseSource::Fresh);
    let fresh = fresh.wait();
    let fresh_result = fresh.outcome.expect("intro spec solves");
    assert_eq!(fresh_result.cost, 8);

    // The reordered duplicate is recognised through spec canonicalization
    // and answered from the cache.
    let hit = service
        .submit(SynthRequest::new(intro_spec_reordered()))
        .unwrap();
    assert_eq!(hit.source(), ResponseSource::Cache);
    let hit = hit.wait();
    let hit_result = hit.outcome.expect("cache serves the stored result");
    assert_eq!(hit_result.cost, fresh_result.cost);
    assert!(intro_spec().is_satisfied_by(&hit_result.regex));
    assert_eq!(hit.ran, Duration::ZERO, "a cache hit runs no synthesis");

    let metrics = service.shutdown();
    assert_eq!(metrics.cache_hits, 1);
    assert_eq!(
        metrics.workers.iter().map(|w| w.runs).sum::<u64>(),
        1,
        "exactly one synthesis ran"
    );
}

#[test]
fn coalesced_concurrent_duplicates_perform_exactly_one_synthesis() {
    // One worker with a bounded per-run budget: the hard blocker occupies
    // it while the identical requests pile up behind.
    let synth = SynthConfig::default().with_time_budget(Duration::from_millis(300));
    let service = SynthService::start(ServiceConfig::new(1).with_synth(synth)).unwrap();

    let blocker = service.submit(SynthRequest::new(hard_spec())).unwrap();
    wait_for_empty_queue(&service);
    let duplicates: Vec<JobHandle> = (0..4)
        .map(|_| service.submit(SynthRequest::new(intro_spec())).unwrap())
        .collect();

    let costs: Vec<u64> = duplicates
        .iter()
        .map(|handle| handle.wait().outcome.expect("intro spec solves").cost)
        .collect();
    assert_eq!(costs, vec![8; 4]);
    let fresh = duplicates
        .iter()
        .filter(|h| h.source() == ResponseSource::Fresh)
        .count();
    assert_eq!(fresh, 1, "exactly one duplicate triggered the synthesis");

    assert!(
        blocker.wait().outcome.is_err(),
        "the blocker hit its budget"
    );
    let metrics = service.shutdown();
    assert_eq!(metrics.cache_hits + metrics.coalesced, 3);
    assert_eq!(
        metrics.workers.iter().map(|w| w.runs).sum::<u64>(),
        2,
        "blocker + one shared synthesis, nothing else"
    );
}

#[test]
fn expired_deadline_fails_fast_with_cancelled_on_every_backend() {
    for backend in [
        BackendChoice::Sequential,
        BackendChoice::ThreadParallel { threads: Some(2) },
        BackendChoice::DeviceParallel { threads: Some(2) },
    ] {
        let synth = SynthConfig::default().with_backend(backend);
        let service = SynthService::start(ServiceConfig::new(1).with_synth(synth)).unwrap();
        let handle = service
            .submit(SynthRequest::new(intro_spec()).with_timeout(Duration::ZERO))
            .unwrap();
        let response = handle.wait();
        assert!(
            matches!(response.outcome, Err(SynthesisError::Cancelled { .. })),
            "{backend}: expected Cancelled, got {:?}",
            response.outcome
        );
        assert_eq!(
            response.ran,
            Duration::ZERO,
            "{backend}: an expired job must not occupy the worker"
        );
        let metrics = service.shutdown();
        assert_eq!(metrics.deadline_expired, 1, "{backend}");
        assert_eq!(
            metrics.workers.iter().map(|w| w.runs).sum::<u64>(),
            0,
            "{backend}: no synthesis ran"
        );
    }
}

#[test]
fn coalesced_request_relaxes_the_initiators_deadline() {
    // A deadline belongs to a request, not to the specification: a
    // deadline-free duplicate attached to a job whose initiator's
    // deadline expired in the queue must still be synthesized.
    let synth = SynthConfig::default().with_time_budget(Duration::from_millis(300));
    let service = SynthService::start(ServiceConfig::new(1).with_synth(synth)).unwrap();
    let _blocker = service.submit(SynthRequest::new(hard_spec())).unwrap();
    wait_for_empty_queue(&service);
    let doomed = service
        .submit(SynthRequest::new(intro_spec()).with_timeout(Duration::ZERO))
        .unwrap();
    let rescued = service.submit(SynthRequest::new(intro_spec())).unwrap();
    assert_eq!(rescued.source(), ResponseSource::Coalesced);
    assert_eq!(
        rescued.wait().outcome.expect("relaxed job runs").cost,
        8,
        "the duplicate's lack of a deadline rescues the shared job"
    );
    // The initiator shares the successful run instead of a Cancelled.
    assert!(doomed.wait().outcome.is_ok());
    service.shutdown();
}

#[test]
fn deadline_reached_mid_run_cancels_cooperatively() {
    // Generous backstop budget so the test cannot hang; the 50 ms
    // deadline must fire long before it and cancel — not time out — the
    // run through the worker's CancelToken.
    let synth = SynthConfig::default().with_time_budget(Duration::from_secs(30));
    let service = SynthService::start(ServiceConfig::new(1).with_synth(synth)).unwrap();
    let handle = service
        .submit(SynthRequest::new(hard_spec()).with_timeout(Duration::from_millis(50)))
        .unwrap();
    let response = handle.wait();
    assert!(
        matches!(response.outcome, Err(SynthesisError::Cancelled { .. })),
        "expected cooperative cancellation, got {:?}",
        response.outcome
    );
    assert!(response.ran > Duration::ZERO, "the run had started");

    // The worker's token was reset after the cancellation: the session
    // keeps serving later jobs normally.
    let after = service.submit(SynthRequest::new(intro_spec())).unwrap();
    assert_eq!(after.wait().outcome.expect("worker recovered").cost, 8);
    service.shutdown();
}

#[test]
fn graceful_shutdown_drains_the_queue() {
    let service = SynthService::start(ServiceConfig::new(1)).unwrap();
    let specs = ["0", "1", "00", "11", "01", "010"];
    let handles: Vec<JobHandle> = specs
        .iter()
        .map(|positive| {
            service
                .submit(SynthRequest::new(Spec::from_strs([*positive], []).unwrap()))
                .unwrap()
        })
        .collect();
    // Shut down immediately: every already-accepted job must still be
    // answered before the workers exit.
    let metrics = service.shutdown();
    assert_eq!(metrics.completed, specs.len() as u64);
    for handle in &handles {
        let response = handle
            .try_wait()
            .expect("drained jobs are complete after shutdown");
        assert!(response.outcome.is_ok());
    }
}

/// A second reliably long-running specification — the §5.2 spec with one
/// extra negative — distinct from [`hard_spec`] so the two neither hit
/// the cache nor coalesce onto each other.
fn hard_spec_variant() -> Spec {
    Spec::from_strs(
        [
            "00", "1101", "0001", "0111", "001", "1", "10", "1100", "111", "1010",
        ],
        [
            "", "0", "0000", "0011", "01", "010", "011", "100", "1000", "1001", "11", "1110",
            "110011",
        ],
    )
    .unwrap()
}

#[test]
fn queued_requests_fuse_into_fewer_sweeps_with_correct_per_member_answers() {
    // One worker on a budgeted blocker: four distinct requests pile up
    // behind it and the drain must run them as ONE fused level sweep —
    // 5 jobs, 2 session runs.
    let synth = SynthConfig::default().with_time_budget(Duration::from_millis(1000));
    let service =
        SynthService::start(ServiceConfig::new(1).with_synth(synth).with_fuse_limit(8)).unwrap();

    let blocker = service.submit(SynthRequest::new(hard_spec())).unwrap();
    wait_for_empty_queue(&service);

    // Three distinct easy members (distinct specs: no caching, no
    // coalescing) plus one hard member whose own 1.4 s deadline falls
    // inside the fused sweep: after the blocker's ~1 s budget ends the
    // sweep starts, and the deadline fires mid-sweep, well before the
    // sweep's own 1 s budget would.
    let easy_specs = [
        Spec::from_strs(["0", "00"], ["1", "10"]).unwrap(),
        Spec::from_strs(["1", "11"], ["0", "01"]).unwrap(),
        Spec::from_strs(["01", "0101"], ["", "10"]).unwrap(),
    ];
    let easies: Vec<JobHandle> = easy_specs
        .iter()
        .map(|spec| service.submit(SynthRequest::new(spec.clone())).unwrap())
        .collect();
    let doomed = service
        .submit(SynthRequest::new(hard_spec_variant()).with_timeout(Duration::from_millis(1400)))
        .unwrap();

    // Every easy member gets its own correct answer out of the shared
    // sweep (partial completion: each retired as soon as its winner
    // landed, while the hard member kept sweeping).
    for (handle, spec) in easies.iter().zip(&easy_specs) {
        let result = handle.wait().outcome.expect("easy member solves");
        assert!(spec.is_satisfied_by(&result.regex), "{}", result.regex);
    }
    // The hard member was cancelled mid-sweep by its per-member deadline
    // without poisoning its batch-mates.
    assert!(
        matches!(doomed.wait().outcome, Err(SynthesisError::Cancelled { .. })),
        "expected per-member cancellation"
    );
    assert!(
        blocker.wait().outcome.is_err(),
        "the blocker hit its budget"
    );

    let metrics = service.shutdown();
    assert_eq!(metrics.completed, 5);
    assert_eq!(metrics.fused_batches, 1, "one drain, one fused sweep");
    assert_eq!(metrics.fused_requests, 4, "all four queued jobs fused");
    assert!(metrics.fused_requests > metrics.fused_batches);
    assert_eq!(
        metrics.workers.iter().map(|w| w.runs).sum::<u64>(),
        2,
        "5 jobs took 2 level sweeps: the blocker's and one fused sweep"
    );
}

#[test]
fn priorities_jump_the_queue() {
    // One worker busy on a budgeted blocker; a low- and a high-priority
    // job queued behind it must run high first.
    let synth = SynthConfig::default().with_time_budget(Duration::from_millis(200));
    let service = SynthService::start(ServiceConfig::new(1).with_synth(synth)).unwrap();
    let _blocker = service.submit(SynthRequest::new(hard_spec())).unwrap();
    wait_for_empty_queue(&service);
    let low = service
        .submit(SynthRequest::new(Spec::from_strs(["0", "00"], ["1"]).unwrap()).with_priority(-1))
        .unwrap();
    let high = service
        .submit(SynthRequest::new(Spec::from_strs(["1", "11"], ["0"]).unwrap()).with_priority(9))
        .unwrap();
    let high_response = high.wait();
    let low_response = low.wait();
    assert!(high_response.outcome.is_ok());
    assert!(low_response.outcome.is_ok());
    assert!(
        high_response.waited <= low_response.waited,
        "high priority waited {:?}, low waited {:?}",
        high_response.waited,
        low_response.waited
    );
    service.shutdown();
}
