//! Refinement-session correctness: `refine` must answer every
//! strengthened specification with exactly what a cold run of the same
//! spec would return — same minimal cost, same failure kinds — no matter
//! which reuse tier (unchanged / warm / cold fallback) produced the
//! answer, on all three backends. The non-strengthening edge cases
//! (alphabet change, removed example, budget change) must fall back
//! cold transparently, never serving a stale previous answer.

use proptest::prelude::*;

use paresy::bench::generator::{generate_type2, Type2Params};
use paresy::bench::harness::refinement_chain;
use paresy::lang::Alphabet;
use paresy::prelude::*;

fn small_spec(seed: u64, max_len: usize, examples: usize) -> Option<Spec> {
    let params = Type2Params {
        alphabet: Alphabet::binary(),
        max_len,
        positives: examples,
        negatives: examples,
    };
    generate_type2(&params, seed)
}

fn session(backend: BackendChoice) -> SynthSession {
    SynthSession::new(SynthConfig::new(CostFn::UNIFORM).with_backend(backend)).unwrap()
}

fn backends() -> [BackendChoice; 3] {
    [
        BackendChoice::Sequential,
        BackendChoice::ThreadParallel { threads: Some(3) },
        BackendChoice::DeviceParallel { threads: Some(3) },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On a random strengthening chain (maximal examples first, the
    /// infix examples added one at a time), every `refine` answer equals
    /// a cold run of the same strengthened spec — regardless of whether
    /// the session answered warm or fell back cold, and on every
    /// backend.
    #[test]
    fn refine_equals_cold_runs_on_strengthening_chains(
        seed in 0u64..10_000,
        max_len in 2usize..4,
        examples in 2usize..5,
    ) {
        let Some(spec) = small_spec(seed, max_len, examples) else { return Ok(()) };
        let Some((base, steps)) = refinement_chain(&spec) else { return Ok(()) };
        for backend in backends() {
            let mut warm = session(backend);
            let _ = warm.refine(&base);
            for step in &steps {
                let refined = warm.refine(step);
                let cold = session(backend).run(step);
                match (&refined.outcome, &cold) {
                    (Ok(via_refine), Ok(via_cold)) => {
                        prop_assert_eq!(
                            via_refine.cost, via_cold.cost,
                            "refine ({}) disagrees with cold on {:?} ({:?})",
                            refined.reuse.label(), step, backend
                        );
                        prop_assert!(
                            step.is_satisfied_by(&via_refine.regex),
                            "refine ({}) returned a non-satisfying {} for {:?}",
                            refined.reuse.label(), via_refine.regex, step
                        );
                    }
                    (Err(via_refine), Err(via_cold)) => {
                        prop_assert_eq!(
                            std::mem::discriminant(via_refine),
                            std::mem::discriminant(via_cold),
                            "error kinds differ: {via_refine:?} vs {via_cold:?}"
                        );
                    }
                    (refined, cold) => prop_assert!(
                        false,
                        "refine and cold disagree on success: {refined:?} vs {cold:?} ({backend:?})"
                    ),
                }
            }
        }
    }
}

/// An unchanged spec is answered from the session without re-running
/// admission: the session's fold counter does not move and the replayed
/// result reports zero admission folds of its own.
#[test]
fn unchanged_refine_reruns_no_admission() {
    let spec = Spec::from_strs(["10", "101", "100"], ["", "0", "1"]).unwrap();
    let mut warm = session(BackendChoice::Sequential);
    let first = warm.refine(&spec);
    let first_cost = first.outcome.as_ref().unwrap().cost;
    let folds_after_first = warm.stats().admission_folds;
    assert!(folds_after_first > 0, "the cold run admitted candidates");

    let replayed = warm.refine(&spec);
    assert_eq!(replayed.reuse, ReuseDecision::Unchanged);
    assert_eq!(
        warm.stats().admission_folds,
        folds_after_first,
        "an unchanged refine re-ran admission"
    );
    let result = replayed.outcome.unwrap();
    assert_eq!(result.cost, first_cost);
    assert_eq!(result.stats.admission_folds, 0);
    assert!(spec.is_satisfied_by(&result.regex));

    // Example order and duplication do not change the spec (example
    // sets), so a shuffled, duplicated resubmission is also unchanged —
    // and correct, not stale.
    let shuffled = Spec::from_strs(["100", "10", "101", "10"], ["1", "", "0", "0"]).unwrap();
    let replayed = warm.refine(&shuffled);
    assert_eq!(replayed.reuse, ReuseDecision::Unchanged);
    let result = replayed.outcome.unwrap();
    assert_eq!(result.cost, first_cost);
    assert!(shuffled.is_satisfied_by(&result.regex));
}

/// Each non-strengthening edge case falls back cold with the specific
/// reason — and still answers the *new* spec correctly (equal to a cold
/// run), never a stale previous answer.
#[test]
fn non_strengthening_refines_fall_back_cold_with_reasons() {
    let check_cold = |previous: &Spec, next: &Spec, reason: ColdReason| {
        let mut warm = session(BackendChoice::Sequential);
        let first = warm.refine(previous);
        assert!(first.outcome.is_ok(), "base spec must solve");
        let refined = warm.refine(next);
        assert_eq!(
            refined.reuse,
            ReuseDecision::Cold(reason),
            "{previous:?} -> {next:?}"
        );
        let result = refined.outcome.unwrap();
        let cold = session(BackendChoice::Sequential).run(next).unwrap();
        assert_eq!(result.cost, cold.cost, "{next:?}");
        assert!(
            next.is_satisfied_by(&result.regex),
            "stale answer {} for {next:?}",
            result.regex
        );
    };

    // A new letter: examples are supersets but the alphabet grew.
    check_cold(
        &Spec::from_strs(["0", "00"], ["1"]).unwrap(),
        &Spec::from_strs(["0", "00", "22"], ["1"]).unwrap(),
        ColdReason::AlphabetChanged,
    );
    // A removed example: the example sets are no longer supersets.
    check_cold(
        &Spec::from_strs(["0", "00"], ["1", "10"]).unwrap(),
        &Spec::from_strs(["0", "00"], ["10"]).unwrap(),
        ColdReason::NotStrengthening,
    );

    // A grown error budget: same fraction, more examples, different
    // absolute budget (floor(0.25 * 4) = 1 vs floor(0.25 * 3) = 0).
    let mut lenient = SynthSession::new(
        SynthConfig::new(CostFn::UNIFORM)
            .with_backend(BackendChoice::Sequential)
            .with_allowed_error(0.25),
    )
    .unwrap();
    let three = Spec::from_strs(["0", "00"], ["1"]).unwrap();
    let four = Spec::from_strs(["0", "00", "000"], ["1"]).unwrap();
    assert!(lenient.refine(&three).outcome.is_ok());
    let refined = lenient.refine(&four);
    assert_eq!(
        refined.reuse,
        ReuseDecision::Cold(ColdReason::BudgetChanged)
    );
    assert!(refined.outcome.is_ok());
}

/// The refine tiers surface end to end through the service: a session
/// routed through the shard router answers cold, then warm, and a
/// strengthened spec never routes away from its pinned pool.
#[test]
fn sessions_route_stably_through_the_shard_router() {
    use paresy::service::{RouterConfig, ServiceConfig, ShardRouter, SynthRequest};

    let router = ShardRouter::start(RouterConfig::identical(
        3,
        ServiceConfig::new(1).with_queue_capacity(8),
    ))
    .unwrap();
    let opened = router.open_session("pinned", None).unwrap();
    assert_eq!(opened, "pinned");

    let base = Spec::from_strs(["0", "00"], ["1"]).unwrap();
    let first = router
        .submit(SynthRequest::new(base).with_session("pinned"))
        .unwrap()
        .wait();
    assert_eq!(first.source.as_str(), "session");
    assert_eq!(first.reuse.map(|reuse| reuse.label()), Some("cold"));

    // The strengthened spec has a different fingerprint, but the session
    // name routes it to the same pool — where the warm state lives.
    let stronger = Spec::from_strs(["0", "00"], ["1", "10"]).unwrap();
    let second = router
        .submit(SynthRequest::new(stronger.clone()).with_session("pinned"))
        .unwrap()
        .wait();
    assert_eq!(second.reuse.map(|reuse| reuse.label()), Some("warm"));
    assert!(stronger.is_satisfied_by(&second.outcome.unwrap().regex));

    router.close_session("pinned", None).unwrap();
    assert!(router.close_session("pinned", None).is_err());
    router.shutdown();
}
