//! Crash-recovery integration tests: exhaustive torn-tail truncation,
//! the disk eviction bound through the public service, and — with
//! `--features failpoints` — a simulated kill-9 inside the shutdown
//! fold, all through the public facade.

use std::path::{Path, PathBuf};

use paresy::prelude::*;
use paresy::service::{replay, WalOptions, WalStore};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paresy-crash-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The property behind "a torn tail costs at most the torn record":
/// for EVERY byte offset of the tail segment, a recovery over the
/// truncated file loads exactly the records whose final newline
/// survived — no fewer (intact lines are never dropped) and no more (a
/// partial line never parses into a record).
#[test]
fn recovery_loads_exactly_the_records_whose_final_newline_survived() {
    let root = temp_dir("every-offset");
    {
        let (store, _) = WalStore::open(&root, "cfg", WalOptions::default()).unwrap();
        for i in 0..6 {
            assert!(store.append(&format!("spec-{i}"), "0*", i));
        }
        assert_eq!(store.segment_count(), 1, "one tail holds the workload");
    }
    // The single data segment is the only `NNNNN.jsonl` file.
    let tail = std::fs::read_dir(&root)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".jsonl") && !n.starts_with("checkpoint."))
        })
        .expect("the store has a data segment");
    let full = std::fs::read(&tail).unwrap();
    assert!(full.len() > 100, "six records span the file");

    for offset in 0..=full.len() {
        std::fs::write(&tail, &full[..offset]).unwrap();
        let survived = full[..offset].iter().filter(|b| **b == b'\n').count() as u64;
        let report = replay(&root, "cfg", 1);
        assert_eq!(
            report.loaded, survived,
            "offset {offset}: exactly the complete lines load"
        );
        assert!(
            report.skipped_corrupt <= 1,
            "offset {offset}: at most the one torn line is skipped"
        );
    }
    std::fs::write(&tail, &full).unwrap();
    std::fs::remove_dir_all(&root).ok();
}

fn tiny_specs(n: usize) -> Vec<Spec> {
    (1..=n)
        .map(|i| {
            let positive = format!("{i:b}");
            Spec::from_strs([positive.as_str()], []).unwrap()
        })
        .collect()
}

fn solve_all(service: &SynthService, specs: &[Spec]) {
    let handles: Vec<JobHandle> = specs
        .iter()
        .map(|spec| service.submit(SynthRequest::new(spec.clone())).unwrap())
        .collect();
    for handle in &handles {
        assert!(handle.wait().outcome.is_ok());
    }
}

/// Total bytes of the record-bearing files under a store root.
fn store_bytes(root: &Path) -> u64 {
    std::fs::read_dir(root)
        .unwrap()
        .flatten()
        .filter(|e| {
            e.path()
                .extension()
                .is_some_and(|ext| ext.eq_ignore_ascii_case("jsonl"))
        })
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

#[test]
fn the_disk_cap_bounds_bytes_and_counts_evictions_through_the_service() {
    let dir = temp_dir("evict");
    let cap = 1024;
    let config = || {
        ServiceConfig::new(1)
            .with_cache_dir(&dir)
            .with_wal(WalOptions {
                roll_bytes: 512,
                checkpoint_every: 2,
                disk_cap_bytes: Some(cap),
                recovery_threads: 0,
            })
    };
    let service = SynthService::start(config()).unwrap();
    solve_all(&service, &tiny_specs(40));
    let metrics = service.shutdown();
    assert!(metrics.disk_evicted > 0, "{metrics:?}");
    assert!(
        metrics.disk_bytes <= cap,
        "the fold left {} bytes over the {cap}-byte cap",
        metrics.disk_bytes
    );
    assert!(
        store_bytes(&dir.join("results")) <= cap,
        "the on-disk store honours the cap"
    );

    // The survivors — and only the survivors — warm a restart.
    let service = SynthService::start(config()).unwrap();
    let loaded = service.metrics().disk_loaded;
    assert!(loaded > 0, "some records survive the cap");
    assert!(loaded < 40, "eviction dropped the cold majority");
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Fault-injected kill-9 coverage through the public facade. The unit
/// suite walks every failpoint; here the end-to-end claim is checked:
/// a crash in the middle of the shutdown fold (after the checkpoint tmp
/// file is written, before its rename publishes it) loses no completed
/// result, and the manifest never references a half-written file.
#[cfg(feature = "failpoints")]
#[test]
fn a_crash_during_the_shutdown_fold_loses_no_completed_result() {
    use paresy::service::failpoint;
    use paresy::service::json::Json;

    let dir = temp_dir("fold-crash");
    let config = || ServiceConfig::new(1).with_cache_dir(&dir);
    let specs = tiny_specs(6);
    {
        let service = SynthService::start(config()).unwrap();
        solve_all(&service, &specs);
        // `shutdown` folds on the calling thread, so the thread-local
        // arming reaches it: the fold dies right before the rename.
        failpoint::arm("cache.checkpoint.rename", 1);
        service.shutdown();
        failpoint::clear();
    }

    // The manifest only ever names fully-written files.
    let root = dir.join("results");
    let manifest = Json::parse(&std::fs::read_to_string(root.join("MANIFEST.json")).unwrap())
        .expect("the manifest survives the crash intact");
    let mut referenced: Vec<String> = manifest
        .get("segments")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(Json::as_u64)
        .map(|id| format!("{id:05}.jsonl"))
        .collect();
    // `checkpoint: 0` is the wire encoding of "no checkpoint".
    if let Some(id) = manifest
        .get("checkpoint")
        .and_then(Json::as_u64)
        .filter(|id| *id != 0)
    {
        referenced.push(format!("checkpoint.{id:05}.jsonl"));
    }
    for name in &referenced {
        assert!(!name.ends_with(".tmp"), "{name}");
        assert!(root.join(name).exists(), "{name} is referenced but absent");
    }

    // Every completed result is still recoverable: the crash cost at
    // most the unpublished checkpoint, never the history it folds.
    let service = SynthService::start(config()).unwrap();
    assert_eq!(service.metrics().disk_loaded, 6, "no acknowledged loss");
    let handles: Vec<JobHandle> = specs
        .iter()
        .map(|spec| service.submit(SynthRequest::new(spec.clone())).unwrap())
        .collect();
    for handle in &handles {
        let response = handle.wait();
        assert_eq!(response.source, ResponseSource::Cache);
    }
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
