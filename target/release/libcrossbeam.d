/root/repo/target/release/libcrossbeam.rlib: /root/repo/shims/crossbeam/src/lib.rs
