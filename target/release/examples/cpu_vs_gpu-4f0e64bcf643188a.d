/root/repo/target/release/examples/cpu_vs_gpu-4f0e64bcf643188a.d: examples/cpu_vs_gpu.rs

/root/repo/target/release/examples/cpu_vs_gpu-4f0e64bcf643188a: examples/cpu_vs_gpu.rs

examples/cpu_vs_gpu.rs:
