/root/repo/target/release/examples/error_tolerant-bb47d3b4569a5a1c.d: examples/error_tolerant.rs

/root/repo/target/release/examples/error_tolerant-bb47d3b4569a5a1c: examples/error_tolerant.rs

examples/error_tolerant.rs:
