/root/repo/target/release/examples/quickstart-159b67ba490eeb45.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-159b67ba490eeb45: examples/quickstart.rs

examples/quickstart.rs:
