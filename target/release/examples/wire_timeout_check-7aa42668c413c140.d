/root/repo/target/release/examples/wire_timeout_check-7aa42668c413c140.d: examples/wire_timeout_check.rs

/root/repo/target/release/examples/wire_timeout_check-7aa42668c413c140: examples/wire_timeout_check.rs

examples/wire_timeout_check.rs:
