/root/repo/target/release/examples/cache_levels-374c63e38f5eb392.d: examples/cache_levels.rs

/root/repo/target/release/examples/cache_levels-374c63e38f5eb392: examples/cache_levels.rs

examples/cache_levels.rs:
