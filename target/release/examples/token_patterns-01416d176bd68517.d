/root/repo/target/release/examples/token_patterns-01416d176bd68517.d: examples/token_patterns.rs

/root/repo/target/release/examples/token_patterns-01416d176bd68517: examples/token_patterns.rs

examples/token_patterns.rs:
