/root/repo/target/release/examples/infix_closure-c8fe760d7084304b.d: examples/infix_closure.rs

/root/repo/target/release/examples/infix_closure-c8fe760d7084304b: examples/infix_closure.rs

examples/infix_closure.rs:
