/root/repo/target/release/examples/wire_roundtrip_check-300cfcbe1215fa2e.d: examples/wire_roundtrip_check.rs

/root/repo/target/release/examples/wire_roundtrip_check-300cfcbe1215fa2e: examples/wire_roundtrip_check.rs

examples/wire_roundtrip_check.rs:
