/root/repo/target/release/examples/alpharegex_baseline-052e2ea319858344.d: examples/alpharegex_baseline.rs

/root/repo/target/release/examples/alpharegex_baseline-052e2ea319858344: examples/alpharegex_baseline.rs

examples/alpharegex_baseline.rs:
