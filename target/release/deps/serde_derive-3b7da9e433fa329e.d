/root/repo/target/release/deps/serde_derive-3b7da9e433fa329e.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-3b7da9e433fa329e.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
