/root/repo/target/release/deps/paresy-2185fa2157d0542b.d: src/lib.rs

/root/repo/target/release/deps/paresy-2185fa2157d0542b: src/lib.rs

src/lib.rs:
