/root/repo/target/release/deps/rei_bench-ae365b8a98bdce1e.d: crates/rei-bench/src/lib.rs crates/rei-bench/src/costs.rs crates/rei-bench/src/generator.rs crates/rei-bench/src/harness/mod.rs crates/rei-bench/src/harness/error_table.rs crates/rei-bench/src/harness/figure1.rs crates/rei-bench/src/harness/outliers.rs crates/rei-bench/src/harness/table1.rs crates/rei-bench/src/harness/table2.rs crates/rei-bench/src/report.rs crates/rei-bench/src/suite.rs

/root/repo/target/release/deps/librei_bench-ae365b8a98bdce1e.rlib: crates/rei-bench/src/lib.rs crates/rei-bench/src/costs.rs crates/rei-bench/src/generator.rs crates/rei-bench/src/harness/mod.rs crates/rei-bench/src/harness/error_table.rs crates/rei-bench/src/harness/figure1.rs crates/rei-bench/src/harness/outliers.rs crates/rei-bench/src/harness/table1.rs crates/rei-bench/src/harness/table2.rs crates/rei-bench/src/report.rs crates/rei-bench/src/suite.rs

/root/repo/target/release/deps/librei_bench-ae365b8a98bdce1e.rmeta: crates/rei-bench/src/lib.rs crates/rei-bench/src/costs.rs crates/rei-bench/src/generator.rs crates/rei-bench/src/harness/mod.rs crates/rei-bench/src/harness/error_table.rs crates/rei-bench/src/harness/figure1.rs crates/rei-bench/src/harness/outliers.rs crates/rei-bench/src/harness/table1.rs crates/rei-bench/src/harness/table2.rs crates/rei-bench/src/report.rs crates/rei-bench/src/suite.rs

crates/rei-bench/src/lib.rs:
crates/rei-bench/src/costs.rs:
crates/rei-bench/src/generator.rs:
crates/rei-bench/src/harness/mod.rs:
crates/rei-bench/src/harness/error_table.rs:
crates/rei-bench/src/harness/figure1.rs:
crates/rei-bench/src/harness/outliers.rs:
crates/rei-bench/src/harness/table1.rs:
crates/rei-bench/src/harness/table2.rs:
crates/rei-bench/src/report.rs:
crates/rei-bench/src/suite.rs:
