/root/repo/target/release/deps/reproduce-bb498cece5259733.d: crates/rei-bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-bb498cece5259733: crates/rei-bench/src/bin/reproduce.rs

crates/rei-bench/src/bin/reproduce.rs:
