/root/repo/target/release/deps/paresy-21a1109c1754224a.d: crates/paresy-cli/src/main.rs

/root/repo/target/release/deps/paresy-21a1109c1754224a: crates/paresy-cli/src/main.rs

crates/paresy-cli/src/main.rs:
