/root/repo/target/release/deps/reproduce-e44dbf1bfb1f221e.d: crates/rei-bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-e44dbf1bfb1f221e: crates/rei-bench/src/bin/reproduce.rs

crates/rei-bench/src/bin/reproduce.rs:
