/root/repo/target/release/deps/rei_core-0a38599c2332a857.d: crates/rei-core/src/lib.rs crates/rei-core/src/backend.rs crates/rei-core/src/cache.rs crates/rei-core/src/config.rs crates/rei-core/src/engine.rs crates/rei-core/src/observe.rs crates/rei-core/src/result.rs crates/rei-core/src/search.rs crates/rei-core/src/session.rs crates/rei-core/src/synth.rs

/root/repo/target/release/deps/rei_core-0a38599c2332a857: crates/rei-core/src/lib.rs crates/rei-core/src/backend.rs crates/rei-core/src/cache.rs crates/rei-core/src/config.rs crates/rei-core/src/engine.rs crates/rei-core/src/observe.rs crates/rei-core/src/result.rs crates/rei-core/src/search.rs crates/rei-core/src/session.rs crates/rei-core/src/synth.rs

crates/rei-core/src/lib.rs:
crates/rei-core/src/backend.rs:
crates/rei-core/src/cache.rs:
crates/rei-core/src/config.rs:
crates/rei-core/src/engine.rs:
crates/rei-core/src/observe.rs:
crates/rei-core/src/result.rs:
crates/rei-core/src/search.rs:
crates/rei-core/src/session.rs:
crates/rei-core/src/synth.rs:
