/root/repo/target/release/deps/paresy-37942eddc07c3cc7.d: src/lib.rs

/root/repo/target/release/deps/libparesy-37942eddc07c3cc7.rlib: src/lib.rs

/root/repo/target/release/deps/libparesy-37942eddc07c3cc7.rmeta: src/lib.rs

src/lib.rs:
