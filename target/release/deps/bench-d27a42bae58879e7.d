/root/repo/target/release/deps/bench-d27a42bae58879e7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-d27a42bae58879e7.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-d27a42bae58879e7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
