/root/repo/target/release/deps/bench-b7077040e4abcebe.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/bench-b7077040e4abcebe: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
