/root/repo/target/release/deps/paresy-7b2d13c6a7b44028.d: crates/paresy-cli/src/main.rs

/root/repo/target/release/deps/paresy-7b2d13c6a7b44028: crates/paresy-cli/src/main.rs

crates/paresy-cli/src/main.rs:
