/root/repo/target/release/deps/criterion-e762fdc98e89efd0.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e762fdc98e89efd0.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e762fdc98e89efd0.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
