/root/repo/target/release/deps/rand-10c4b39df4157cd2.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-10c4b39df4157cd2.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-10c4b39df4157cd2.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
