/root/repo/target/release/deps/table2-d58f99932939b64d.d: crates/bench/benches/table2.rs

/root/repo/target/release/deps/table2-d58f99932939b64d: crates/bench/benches/table2.rs

crates/bench/benches/table2.rs:
