/root/repo/target/release/deps/crossbeam-37e9ea6dc4928ff1.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/crossbeam-37e9ea6dc4928ff1: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
