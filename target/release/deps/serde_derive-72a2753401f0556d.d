/root/repo/target/release/deps/serde_derive-72a2753401f0556d.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-72a2753401f0556d: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
