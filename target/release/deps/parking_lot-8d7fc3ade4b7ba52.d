/root/repo/target/release/deps/parking_lot-8d7fc3ade4b7ba52.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-8d7fc3ade4b7ba52: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
