/root/repo/target/release/deps/alpharegex-1ba0b060b9052a06.d: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs

/root/repo/target/release/deps/alpharegex-1ba0b060b9052a06: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs

crates/alpharegex/src/lib.rs:
crates/alpharegex/src/search.rs:
crates/alpharegex/src/state.rs:
