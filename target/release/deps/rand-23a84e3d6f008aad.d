/root/repo/target/release/deps/rand-23a84e3d6f008aad.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/rand-23a84e3d6f008aad: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
