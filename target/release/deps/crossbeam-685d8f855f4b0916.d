/root/repo/target/release/deps/crossbeam-685d8f855f4b0916.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-685d8f855f4b0916.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-685d8f855f4b0916.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
