/root/repo/target/release/deps/micro_ops-7366985924e9b487.d: crates/bench/benches/micro_ops.rs

/root/repo/target/release/deps/micro_ops-7366985924e9b487: crates/bench/benches/micro_ops.rs

crates/bench/benches/micro_ops.rs:
