/root/repo/target/release/deps/serde-6a913fc597f5d95a.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/serde-6a913fc597f5d95a: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
