/root/repo/target/release/deps/alpharegex-597fb67731cda243.d: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs

/root/repo/target/release/deps/libalpharegex-597fb67731cda243.rlib: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs

/root/repo/target/release/deps/libalpharegex-597fb67731cda243.rmeta: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs

crates/alpharegex/src/lib.rs:
crates/alpharegex/src/search.rs:
crates/alpharegex/src/state.rs:
