/root/repo/target/release/deps/rei_core-0c05045d7d05e526.d: crates/rei-core/src/lib.rs crates/rei-core/src/backend.rs crates/rei-core/src/cache.rs crates/rei-core/src/config.rs crates/rei-core/src/engine.rs crates/rei-core/src/observe.rs crates/rei-core/src/result.rs crates/rei-core/src/search.rs crates/rei-core/src/session.rs crates/rei-core/src/synth.rs

/root/repo/target/release/deps/librei_core-0c05045d7d05e526.rlib: crates/rei-core/src/lib.rs crates/rei-core/src/backend.rs crates/rei-core/src/cache.rs crates/rei-core/src/config.rs crates/rei-core/src/engine.rs crates/rei-core/src/observe.rs crates/rei-core/src/result.rs crates/rei-core/src/search.rs crates/rei-core/src/session.rs crates/rei-core/src/synth.rs

/root/repo/target/release/deps/librei_core-0c05045d7d05e526.rmeta: crates/rei-core/src/lib.rs crates/rei-core/src/backend.rs crates/rei-core/src/cache.rs crates/rei-core/src/config.rs crates/rei-core/src/engine.rs crates/rei-core/src/observe.rs crates/rei-core/src/result.rs crates/rei-core/src/search.rs crates/rei-core/src/session.rs crates/rei-core/src/synth.rs

crates/rei-core/src/lib.rs:
crates/rei-core/src/backend.rs:
crates/rei-core/src/cache.rs:
crates/rei-core/src/config.rs:
crates/rei-core/src/engine.rs:
crates/rei-core/src/observe.rs:
crates/rei-core/src/result.rs:
crates/rei-core/src/search.rs:
crates/rei-core/src/session.rs:
crates/rei-core/src/synth.rs:
