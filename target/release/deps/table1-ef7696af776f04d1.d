/root/repo/target/release/deps/table1-ef7696af776f04d1.d: crates/bench/benches/table1.rs

/root/repo/target/release/deps/table1-ef7696af776f04d1: crates/bench/benches/table1.rs

crates/bench/benches/table1.rs:
