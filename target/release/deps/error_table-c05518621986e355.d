/root/repo/target/release/deps/error_table-c05518621986e355.d: crates/bench/benches/error_table.rs

/root/repo/target/release/deps/error_table-c05518621986e355: crates/bench/benches/error_table.rs

crates/bench/benches/error_table.rs:
