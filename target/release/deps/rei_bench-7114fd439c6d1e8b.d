/root/repo/target/release/deps/rei_bench-7114fd439c6d1e8b.d: crates/rei-bench/src/lib.rs crates/rei-bench/src/costs.rs crates/rei-bench/src/generator.rs crates/rei-bench/src/harness/mod.rs crates/rei-bench/src/harness/error_table.rs crates/rei-bench/src/harness/figure1.rs crates/rei-bench/src/harness/outliers.rs crates/rei-bench/src/harness/table1.rs crates/rei-bench/src/harness/table2.rs crates/rei-bench/src/report.rs crates/rei-bench/src/suite.rs

/root/repo/target/release/deps/rei_bench-7114fd439c6d1e8b: crates/rei-bench/src/lib.rs crates/rei-bench/src/costs.rs crates/rei-bench/src/generator.rs crates/rei-bench/src/harness/mod.rs crates/rei-bench/src/harness/error_table.rs crates/rei-bench/src/harness/figure1.rs crates/rei-bench/src/harness/outliers.rs crates/rei-bench/src/harness/table1.rs crates/rei-bench/src/harness/table2.rs crates/rei-bench/src/report.rs crates/rei-bench/src/suite.rs

crates/rei-bench/src/lib.rs:
crates/rei-bench/src/costs.rs:
crates/rei-bench/src/generator.rs:
crates/rei-bench/src/harness/mod.rs:
crates/rei-bench/src/harness/error_table.rs:
crates/rei-bench/src/harness/figure1.rs:
crates/rei-bench/src/harness/outliers.rs:
crates/rei-bench/src/harness/table1.rs:
crates/rei-bench/src/harness/table2.rs:
crates/rei-bench/src/report.rs:
crates/rei-bench/src/suite.rs:
