/root/repo/target/release/deps/gpu_sim-b144446eaec490c4.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/hashset.rs crates/gpu-sim/src/stats.rs

/root/repo/target/release/deps/libgpu_sim-b144446eaec490c4.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/hashset.rs crates/gpu-sim/src/stats.rs

/root/repo/target/release/deps/libgpu_sim-b144446eaec490c4.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/hashset.rs crates/gpu-sim/src/stats.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/buffer.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/hashset.rs:
crates/gpu-sim/src/stats.rs:
