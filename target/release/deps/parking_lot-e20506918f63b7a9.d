/root/repo/target/release/deps/parking_lot-e20506918f63b7a9.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e20506918f63b7a9.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e20506918f63b7a9.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
