/root/repo/target/release/deps/rei_lang-9a43d372a10d9c08.d: crates/rei-lang/src/lib.rs crates/rei-lang/src/alphabet.rs crates/rei-lang/src/cs.rs crates/rei-lang/src/csops.rs crates/rei-lang/src/error.rs crates/rei-lang/src/guide.rs crates/rei-lang/src/infix.rs crates/rei-lang/src/satisfy.rs crates/rei-lang/src/spec.rs crates/rei-lang/src/word.rs

/root/repo/target/release/deps/rei_lang-9a43d372a10d9c08: crates/rei-lang/src/lib.rs crates/rei-lang/src/alphabet.rs crates/rei-lang/src/cs.rs crates/rei-lang/src/csops.rs crates/rei-lang/src/error.rs crates/rei-lang/src/guide.rs crates/rei-lang/src/infix.rs crates/rei-lang/src/satisfy.rs crates/rei-lang/src/spec.rs crates/rei-lang/src/word.rs

crates/rei-lang/src/lib.rs:
crates/rei-lang/src/alphabet.rs:
crates/rei-lang/src/cs.rs:
crates/rei-lang/src/csops.rs:
crates/rei-lang/src/error.rs:
crates/rei-lang/src/guide.rs:
crates/rei-lang/src/infix.rs:
crates/rei-lang/src/satisfy.rs:
crates/rei-lang/src/spec.rs:
crates/rei-lang/src/word.rs:
