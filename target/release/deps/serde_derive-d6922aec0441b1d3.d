/root/repo/target/release/deps/serde_derive-d6922aec0441b1d3.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-d6922aec0441b1d3.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
