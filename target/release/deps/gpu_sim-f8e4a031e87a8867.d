/root/repo/target/release/deps/gpu_sim-f8e4a031e87a8867.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/hashset.rs crates/gpu-sim/src/stats.rs

/root/repo/target/release/deps/gpu_sim-f8e4a031e87a8867: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/hashset.rs crates/gpu-sim/src/stats.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/buffer.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/hashset.rs:
crates/gpu-sim/src/stats.rs:
