/root/repo/target/release/deps/proptest-c18459a23cb1f816.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c18459a23cb1f816.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c18459a23cb1f816.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
