/root/repo/target/release/deps/paresy_cli-053ea09c9fb72139.d: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

/root/repo/target/release/deps/paresy_cli-053ea09c9fb72139: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

crates/paresy-cli/src/lib.rs:
crates/paresy-cli/src/args.rs:
crates/paresy-cli/src/commands.rs:
crates/paresy-cli/src/specfile.rs:
