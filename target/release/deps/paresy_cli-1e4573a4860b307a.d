/root/repo/target/release/deps/paresy_cli-1e4573a4860b307a.d: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

/root/repo/target/release/deps/libparesy_cli-1e4573a4860b307a.rlib: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

/root/repo/target/release/deps/libparesy_cli-1e4573a4860b307a.rmeta: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

crates/paresy-cli/src/lib.rs:
crates/paresy-cli/src/args.rs:
crates/paresy-cli/src/commands.rs:
crates/paresy-cli/src/specfile.rs:
