/root/repo/target/release/deps/ablation-ed09ff0702aadea7.d: crates/bench/benches/ablation.rs

/root/repo/target/release/deps/ablation-ed09ff0702aadea7: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
