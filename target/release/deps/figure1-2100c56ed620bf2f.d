/root/repo/target/release/deps/figure1-2100c56ed620bf2f.d: crates/bench/benches/figure1.rs

/root/repo/target/release/deps/figure1-2100c56ed620bf2f: crates/bench/benches/figure1.rs

crates/bench/benches/figure1.rs:
