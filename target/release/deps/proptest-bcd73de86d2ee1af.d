/root/repo/target/release/deps/proptest-bcd73de86d2ee1af.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-bcd73de86d2ee1af: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
