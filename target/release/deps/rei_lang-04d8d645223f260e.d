/root/repo/target/release/deps/rei_lang-04d8d645223f260e.d: crates/rei-lang/src/lib.rs crates/rei-lang/src/alphabet.rs crates/rei-lang/src/cs.rs crates/rei-lang/src/csops.rs crates/rei-lang/src/error.rs crates/rei-lang/src/guide.rs crates/rei-lang/src/infix.rs crates/rei-lang/src/satisfy.rs crates/rei-lang/src/spec.rs crates/rei-lang/src/word.rs

/root/repo/target/release/deps/librei_lang-04d8d645223f260e.rlib: crates/rei-lang/src/lib.rs crates/rei-lang/src/alphabet.rs crates/rei-lang/src/cs.rs crates/rei-lang/src/csops.rs crates/rei-lang/src/error.rs crates/rei-lang/src/guide.rs crates/rei-lang/src/infix.rs crates/rei-lang/src/satisfy.rs crates/rei-lang/src/spec.rs crates/rei-lang/src/word.rs

/root/repo/target/release/deps/librei_lang-04d8d645223f260e.rmeta: crates/rei-lang/src/lib.rs crates/rei-lang/src/alphabet.rs crates/rei-lang/src/cs.rs crates/rei-lang/src/csops.rs crates/rei-lang/src/error.rs crates/rei-lang/src/guide.rs crates/rei-lang/src/infix.rs crates/rei-lang/src/satisfy.rs crates/rei-lang/src/spec.rs crates/rei-lang/src/word.rs

crates/rei-lang/src/lib.rs:
crates/rei-lang/src/alphabet.rs:
crates/rei-lang/src/cs.rs:
crates/rei-lang/src/csops.rs:
crates/rei-lang/src/error.rs:
crates/rei-lang/src/guide.rs:
crates/rei-lang/src/infix.rs:
crates/rei-lang/src/satisfy.rs:
crates/rei-lang/src/spec.rs:
crates/rei-lang/src/word.rs:
