/root/repo/target/release/deps/criterion-11ffb5828e656160.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-11ffb5828e656160: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
