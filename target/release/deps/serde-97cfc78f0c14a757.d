/root/repo/target/release/deps/serde-97cfc78f0c14a757.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-97cfc78f0c14a757.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-97cfc78f0c14a757.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
