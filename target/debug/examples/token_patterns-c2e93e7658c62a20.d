/root/repo/target/debug/examples/token_patterns-c2e93e7658c62a20.d: examples/token_patterns.rs Cargo.toml

/root/repo/target/debug/examples/libtoken_patterns-c2e93e7658c62a20.rmeta: examples/token_patterns.rs Cargo.toml

examples/token_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
