/root/repo/target/debug/examples/error_tolerant-05484c0c4e7eb335.d: examples/error_tolerant.rs Cargo.toml

/root/repo/target/debug/examples/liberror_tolerant-05484c0c4e7eb335.rmeta: examples/error_tolerant.rs Cargo.toml

examples/error_tolerant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
