/root/repo/target/debug/examples/token_patterns-85d14a50b5c7494b.d: examples/token_patterns.rs

/root/repo/target/debug/examples/libtoken_patterns-85d14a50b5c7494b.rmeta: examples/token_patterns.rs

examples/token_patterns.rs:
