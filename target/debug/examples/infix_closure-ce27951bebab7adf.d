/root/repo/target/debug/examples/infix_closure-ce27951bebab7adf.d: examples/infix_closure.rs

/root/repo/target/debug/examples/infix_closure-ce27951bebab7adf: examples/infix_closure.rs

examples/infix_closure.rs:
