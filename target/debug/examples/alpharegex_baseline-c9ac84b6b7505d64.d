/root/repo/target/debug/examples/alpharegex_baseline-c9ac84b6b7505d64.d: examples/alpharegex_baseline.rs Cargo.toml

/root/repo/target/debug/examples/libalpharegex_baseline-c9ac84b6b7505d64.rmeta: examples/alpharegex_baseline.rs Cargo.toml

examples/alpharegex_baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
