/root/repo/target/debug/examples/cpu_vs_gpu-90ce716ea6ffdd7d.d: examples/cpu_vs_gpu.rs Cargo.toml

/root/repo/target/debug/examples/libcpu_vs_gpu-90ce716ea6ffdd7d.rmeta: examples/cpu_vs_gpu.rs Cargo.toml

examples/cpu_vs_gpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
