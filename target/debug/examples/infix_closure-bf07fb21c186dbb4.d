/root/repo/target/debug/examples/infix_closure-bf07fb21c186dbb4.d: examples/infix_closure.rs

/root/repo/target/debug/examples/infix_closure-bf07fb21c186dbb4: examples/infix_closure.rs

examples/infix_closure.rs:
