/root/repo/target/debug/examples/cpu_vs_gpu-878d595df444110b.d: examples/cpu_vs_gpu.rs

/root/repo/target/debug/examples/cpu_vs_gpu-878d595df444110b: examples/cpu_vs_gpu.rs

examples/cpu_vs_gpu.rs:
