/root/repo/target/debug/examples/__alpha_rt-fc4e6fc53d2c70de.d: examples/__alpha_rt.rs

/root/repo/target/debug/examples/__alpha_rt-fc4e6fc53d2c70de: examples/__alpha_rt.rs

examples/__alpha_rt.rs:
