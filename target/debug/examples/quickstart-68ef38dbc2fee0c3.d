/root/repo/target/debug/examples/quickstart-68ef38dbc2fee0c3.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-68ef38dbc2fee0c3: examples/quickstart.rs

examples/quickstart.rs:
