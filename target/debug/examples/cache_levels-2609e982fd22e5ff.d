/root/repo/target/debug/examples/cache_levels-2609e982fd22e5ff.d: examples/cache_levels.rs

/root/repo/target/debug/examples/cache_levels-2609e982fd22e5ff: examples/cache_levels.rs

examples/cache_levels.rs:
