/root/repo/target/debug/examples/alpharegex_baseline-865ede9aa4fd9669.d: examples/alpharegex_baseline.rs

/root/repo/target/debug/examples/alpharegex_baseline-865ede9aa4fd9669: examples/alpharegex_baseline.rs

examples/alpharegex_baseline.rs:
