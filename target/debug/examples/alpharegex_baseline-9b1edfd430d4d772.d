/root/repo/target/debug/examples/alpharegex_baseline-9b1edfd430d4d772.d: examples/alpharegex_baseline.rs

/root/repo/target/debug/examples/libalpharegex_baseline-9b1edfd430d4d772.rmeta: examples/alpharegex_baseline.rs

examples/alpharegex_baseline.rs:
