/root/repo/target/debug/examples/quickstart-b59fa6c21b7f1311.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-b59fa6c21b7f1311.rmeta: examples/quickstart.rs

examples/quickstart.rs:
