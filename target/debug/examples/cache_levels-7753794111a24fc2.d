/root/repo/target/debug/examples/cache_levels-7753794111a24fc2.d: examples/cache_levels.rs

/root/repo/target/debug/examples/libcache_levels-7753794111a24fc2.rmeta: examples/cache_levels.rs

examples/cache_levels.rs:
