/root/repo/target/debug/examples/error_tolerant-de9dbe0c7b83dab4.d: examples/error_tolerant.rs

/root/repo/target/debug/examples/liberror_tolerant-de9dbe0c7b83dab4.rmeta: examples/error_tolerant.rs

examples/error_tolerant.rs:
