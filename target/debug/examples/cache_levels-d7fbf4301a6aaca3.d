/root/repo/target/debug/examples/cache_levels-d7fbf4301a6aaca3.d: examples/cache_levels.rs

/root/repo/target/debug/examples/cache_levels-d7fbf4301a6aaca3: examples/cache_levels.rs

examples/cache_levels.rs:
