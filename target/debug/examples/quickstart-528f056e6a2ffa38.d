/root/repo/target/debug/examples/quickstart-528f056e6a2ffa38.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-528f056e6a2ffa38: examples/quickstart.rs

examples/quickstart.rs:
