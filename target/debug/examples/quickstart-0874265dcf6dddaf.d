/root/repo/target/debug/examples/quickstart-0874265dcf6dddaf.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-0874265dcf6dddaf.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
