/root/repo/target/debug/examples/cpu_vs_gpu-b82d9c1faa6759db.d: examples/cpu_vs_gpu.rs

/root/repo/target/debug/examples/libcpu_vs_gpu-b82d9c1faa6759db.rmeta: examples/cpu_vs_gpu.rs

examples/cpu_vs_gpu.rs:
