/root/repo/target/debug/examples/cpu_vs_gpu-ba3b44ce2226eb26.d: examples/cpu_vs_gpu.rs

/root/repo/target/debug/examples/cpu_vs_gpu-ba3b44ce2226eb26: examples/cpu_vs_gpu.rs

examples/cpu_vs_gpu.rs:
