/root/repo/target/debug/examples/infix_closure-5700a06dc8ee6440.d: examples/infix_closure.rs

/root/repo/target/debug/examples/libinfix_closure-5700a06dc8ee6440.rmeta: examples/infix_closure.rs

examples/infix_closure.rs:
