/root/repo/target/debug/examples/cache_levels-c83ce418f51075cb.d: examples/cache_levels.rs Cargo.toml

/root/repo/target/debug/examples/libcache_levels-c83ce418f51075cb.rmeta: examples/cache_levels.rs Cargo.toml

examples/cache_levels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
