/root/repo/target/debug/examples/alpharegex_baseline-48fe073b89906a6f.d: examples/alpharegex_baseline.rs

/root/repo/target/debug/examples/alpharegex_baseline-48fe073b89906a6f: examples/alpharegex_baseline.rs

examples/alpharegex_baseline.rs:
