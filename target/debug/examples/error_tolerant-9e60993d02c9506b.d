/root/repo/target/debug/examples/error_tolerant-9e60993d02c9506b.d: examples/error_tolerant.rs

/root/repo/target/debug/examples/error_tolerant-9e60993d02c9506b: examples/error_tolerant.rs

examples/error_tolerant.rs:
