/root/repo/target/debug/examples/token_patterns-8d836fbe2b48c62e.d: examples/token_patterns.rs

/root/repo/target/debug/examples/token_patterns-8d836fbe2b48c62e: examples/token_patterns.rs

examples/token_patterns.rs:
