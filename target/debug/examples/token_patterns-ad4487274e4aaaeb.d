/root/repo/target/debug/examples/token_patterns-ad4487274e4aaaeb.d: examples/token_patterns.rs

/root/repo/target/debug/examples/token_patterns-ad4487274e4aaaeb: examples/token_patterns.rs

examples/token_patterns.rs:
