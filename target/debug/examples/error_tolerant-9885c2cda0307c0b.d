/root/repo/target/debug/examples/error_tolerant-9885c2cda0307c0b.d: examples/error_tolerant.rs

/root/repo/target/debug/examples/error_tolerant-9885c2cda0307c0b: examples/error_tolerant.rs

examples/error_tolerant.rs:
