/root/repo/target/debug/examples/infix_closure-5f81a617b96482b5.d: examples/infix_closure.rs Cargo.toml

/root/repo/target/debug/examples/libinfix_closure-5f81a617b96482b5.rmeta: examples/infix_closure.rs Cargo.toml

examples/infix_closure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
