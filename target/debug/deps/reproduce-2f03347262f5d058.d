/root/repo/target/debug/deps/reproduce-2f03347262f5d058.d: crates/rei-bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/libreproduce-2f03347262f5d058.rmeta: crates/rei-bench/src/bin/reproduce.rs

crates/rei-bench/src/bin/reproduce.rs:
