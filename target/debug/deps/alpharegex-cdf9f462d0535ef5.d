/root/repo/target/debug/deps/alpharegex-cdf9f462d0535ef5.d: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libalpharegex-cdf9f462d0535ef5.rmeta: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs Cargo.toml

crates/alpharegex/src/lib.rs:
crates/alpharegex/src/search.rs:
crates/alpharegex/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
