/root/repo/target/debug/deps/parking_lot-5a592d964785c91e.d: shims/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-5a592d964785c91e.rmeta: shims/parking_lot/src/lib.rs Cargo.toml

shims/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
