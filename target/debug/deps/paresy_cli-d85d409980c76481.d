/root/repo/target/debug/deps/paresy_cli-d85d409980c76481.d: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

/root/repo/target/debug/deps/paresy_cli-d85d409980c76481: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

crates/paresy-cli/src/lib.rs:
crates/paresy-cli/src/args.rs:
crates/paresy-cli/src/commands.rs:
crates/paresy-cli/src/specfile.rs:
