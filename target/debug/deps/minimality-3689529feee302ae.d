/root/repo/target/debug/deps/minimality-3689529feee302ae.d: tests/minimality.rs

/root/repo/target/debug/deps/libminimality-3689529feee302ae.rmeta: tests/minimality.rs

tests/minimality.rs:
