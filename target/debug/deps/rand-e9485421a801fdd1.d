/root/repo/target/debug/deps/rand-e9485421a801fdd1.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e9485421a801fdd1.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
