/root/repo/target/debug/deps/paresy-6fb939dfa764671a.d: crates/paresy-cli/src/main.rs

/root/repo/target/debug/deps/paresy-6fb939dfa764671a: crates/paresy-cli/src/main.rs

crates/paresy-cli/src/main.rs:
