/root/repo/target/debug/deps/criterion-2defbfaf542c7763.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-2defbfaf542c7763.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
