/root/repo/target/debug/deps/engines_agree-3d45d41810caff6b.d: tests/engines_agree.rs

/root/repo/target/debug/deps/engines_agree-3d45d41810caff6b: tests/engines_agree.rs

tests/engines_agree.rs:
