/root/repo/target/debug/deps/rei_lang-1fcffc67fbd66cb1.d: crates/rei-lang/src/lib.rs crates/rei-lang/src/alphabet.rs crates/rei-lang/src/cs.rs crates/rei-lang/src/csops.rs crates/rei-lang/src/error.rs crates/rei-lang/src/guide.rs crates/rei-lang/src/infix.rs crates/rei-lang/src/satisfy.rs crates/rei-lang/src/spec.rs crates/rei-lang/src/word.rs

/root/repo/target/debug/deps/librei_lang-1fcffc67fbd66cb1.rlib: crates/rei-lang/src/lib.rs crates/rei-lang/src/alphabet.rs crates/rei-lang/src/cs.rs crates/rei-lang/src/csops.rs crates/rei-lang/src/error.rs crates/rei-lang/src/guide.rs crates/rei-lang/src/infix.rs crates/rei-lang/src/satisfy.rs crates/rei-lang/src/spec.rs crates/rei-lang/src/word.rs

/root/repo/target/debug/deps/librei_lang-1fcffc67fbd66cb1.rmeta: crates/rei-lang/src/lib.rs crates/rei-lang/src/alphabet.rs crates/rei-lang/src/cs.rs crates/rei-lang/src/csops.rs crates/rei-lang/src/error.rs crates/rei-lang/src/guide.rs crates/rei-lang/src/infix.rs crates/rei-lang/src/satisfy.rs crates/rei-lang/src/spec.rs crates/rei-lang/src/word.rs

crates/rei-lang/src/lib.rs:
crates/rei-lang/src/alphabet.rs:
crates/rei-lang/src/cs.rs:
crates/rei-lang/src/csops.rs:
crates/rei-lang/src/error.rs:
crates/rei-lang/src/guide.rs:
crates/rei-lang/src/infix.rs:
crates/rei-lang/src/satisfy.rs:
crates/rei-lang/src/spec.rs:
crates/rei-lang/src/word.rs:
