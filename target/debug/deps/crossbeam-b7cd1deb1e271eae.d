/root/repo/target/debug/deps/crossbeam-b7cd1deb1e271eae.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-b7cd1deb1e271eae: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
