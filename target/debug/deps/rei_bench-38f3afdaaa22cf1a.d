/root/repo/target/debug/deps/rei_bench-38f3afdaaa22cf1a.d: crates/rei-bench/src/lib.rs crates/rei-bench/src/costs.rs crates/rei-bench/src/generator.rs crates/rei-bench/src/harness/mod.rs crates/rei-bench/src/harness/error_table.rs crates/rei-bench/src/harness/figure1.rs crates/rei-bench/src/harness/outliers.rs crates/rei-bench/src/harness/table1.rs crates/rei-bench/src/harness/table2.rs crates/rei-bench/src/report.rs crates/rei-bench/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/librei_bench-38f3afdaaa22cf1a.rmeta: crates/rei-bench/src/lib.rs crates/rei-bench/src/costs.rs crates/rei-bench/src/generator.rs crates/rei-bench/src/harness/mod.rs crates/rei-bench/src/harness/error_table.rs crates/rei-bench/src/harness/figure1.rs crates/rei-bench/src/harness/outliers.rs crates/rei-bench/src/harness/table1.rs crates/rei-bench/src/harness/table2.rs crates/rei-bench/src/report.rs crates/rei-bench/src/suite.rs Cargo.toml

crates/rei-bench/src/lib.rs:
crates/rei-bench/src/costs.rs:
crates/rei-bench/src/generator.rs:
crates/rei-bench/src/harness/mod.rs:
crates/rei-bench/src/harness/error_table.rs:
crates/rei-bench/src/harness/figure1.rs:
crates/rei-bench/src/harness/outliers.rs:
crates/rei-bench/src/harness/table1.rs:
crates/rei-bench/src/harness/table2.rs:
crates/rei-bench/src/report.rs:
crates/rei-bench/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
