/root/repo/target/debug/deps/paper_examples-358b83fb78668e4c.d: tests/paper_examples.rs

/root/repo/target/debug/deps/libpaper_examples-358b83fb78668e4c.rmeta: tests/paper_examples.rs

tests/paper_examples.rs:
