/root/repo/target/debug/deps/rei_syntax-00e7eded22c323f0.d: crates/rei-syntax/src/lib.rs crates/rei-syntax/src/cost.rs crates/rei-syntax/src/dfa.rs crates/rei-syntax/src/display.rs crates/rei-syntax/src/enumerate.rs crates/rei-syntax/src/error.rs crates/rei-syntax/src/matcher.rs crates/rei-syntax/src/metrics.rs crates/rei-syntax/src/nfa.rs crates/rei-syntax/src/parse.rs crates/rei-syntax/src/regex.rs crates/rei-syntax/src/simplify.rs

/root/repo/target/debug/deps/librei_syntax-00e7eded22c323f0.rmeta: crates/rei-syntax/src/lib.rs crates/rei-syntax/src/cost.rs crates/rei-syntax/src/dfa.rs crates/rei-syntax/src/display.rs crates/rei-syntax/src/enumerate.rs crates/rei-syntax/src/error.rs crates/rei-syntax/src/matcher.rs crates/rei-syntax/src/metrics.rs crates/rei-syntax/src/nfa.rs crates/rei-syntax/src/parse.rs crates/rei-syntax/src/regex.rs crates/rei-syntax/src/simplify.rs

crates/rei-syntax/src/lib.rs:
crates/rei-syntax/src/cost.rs:
crates/rei-syntax/src/dfa.rs:
crates/rei-syntax/src/display.rs:
crates/rei-syntax/src/enumerate.rs:
crates/rei-syntax/src/error.rs:
crates/rei-syntax/src/matcher.rs:
crates/rei-syntax/src/metrics.rs:
crates/rei-syntax/src/nfa.rs:
crates/rei-syntax/src/parse.rs:
crates/rei-syntax/src/regex.rs:
crates/rei-syntax/src/simplify.rs:
