/root/repo/target/debug/deps/parking_lot-d59fc75392b92b73.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d59fc75392b92b73.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
