/root/repo/target/debug/deps/serde-dade9c8da5ccebab.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-dade9c8da5ccebab.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-dade9c8da5ccebab.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
