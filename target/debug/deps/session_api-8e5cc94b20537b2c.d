/root/repo/target/debug/deps/session_api-8e5cc94b20537b2c.d: tests/session_api.rs Cargo.toml

/root/repo/target/debug/deps/libsession_api-8e5cc94b20537b2c.rmeta: tests/session_api.rs Cargo.toml

tests/session_api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
