/root/repo/target/debug/deps/serde_derive-49255c5dce60230a.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-49255c5dce60230a.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
