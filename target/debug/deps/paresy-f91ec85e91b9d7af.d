/root/repo/target/debug/deps/paresy-f91ec85e91b9d7af.d: src/lib.rs

/root/repo/target/debug/deps/libparesy-f91ec85e91b9d7af.rmeta: src/lib.rs

src/lib.rs:
