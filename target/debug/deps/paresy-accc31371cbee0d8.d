/root/repo/target/debug/deps/paresy-accc31371cbee0d8.d: crates/paresy-cli/src/main.rs

/root/repo/target/debug/deps/paresy-accc31371cbee0d8: crates/paresy-cli/src/main.rs

crates/paresy-cli/src/main.rs:
