/root/repo/target/debug/deps/reproduce-521ada1b806dfb23.d: crates/rei-bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-521ada1b806dfb23.rmeta: crates/rei-bench/src/bin/reproduce.rs Cargo.toml

crates/rei-bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
