/root/repo/target/debug/deps/minimality-63e71b55cd915094.d: tests/minimality.rs Cargo.toml

/root/repo/target/debug/deps/libminimality-63e71b55cd915094.rmeta: tests/minimality.rs Cargo.toml

tests/minimality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
