/root/repo/target/debug/deps/figure1-7438474ad3b8a853.d: crates/bench/benches/figure1.rs

/root/repo/target/debug/deps/figure1-7438474ad3b8a853: crates/bench/benches/figure1.rs

crates/bench/benches/figure1.rs:
