/root/repo/target/debug/deps/bench-849ad03147e92c7a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-849ad03147e92c7a.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-849ad03147e92c7a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
