/root/repo/target/debug/deps/paresy-32f3bf459f2d075a.d: src/lib.rs

/root/repo/target/debug/deps/libparesy-32f3bf459f2d075a.rlib: src/lib.rs

/root/repo/target/debug/deps/libparesy-32f3bf459f2d075a.rmeta: src/lib.rs

src/lib.rs:
