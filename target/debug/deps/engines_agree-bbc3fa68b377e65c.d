/root/repo/target/debug/deps/engines_agree-bbc3fa68b377e65c.d: tests/engines_agree.rs Cargo.toml

/root/repo/target/debug/deps/libengines_agree-bbc3fa68b377e65c.rmeta: tests/engines_agree.rs Cargo.toml

tests/engines_agree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
