/root/repo/target/debug/deps/ablation-8175862901aa7d7e.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/ablation-8175862901aa7d7e: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
