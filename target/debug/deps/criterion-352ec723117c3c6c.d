/root/repo/target/debug/deps/criterion-352ec723117c3c6c.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-352ec723117c3c6c: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
