/root/repo/target/debug/deps/table2-a596c61664f936e1.d: crates/bench/benches/table2.rs

/root/repo/target/debug/deps/table2-a596c61664f936e1: crates/bench/benches/table2.rs

crates/bench/benches/table2.rs:
