/root/repo/target/debug/deps/alpharegex-cc8413e096550008.d: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs

/root/repo/target/debug/deps/alpharegex-cc8413e096550008: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs

crates/alpharegex/src/lib.rs:
crates/alpharegex/src/search.rs:
crates/alpharegex/src/state.rs:
