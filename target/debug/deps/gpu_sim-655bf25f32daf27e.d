/root/repo/target/debug/deps/gpu_sim-655bf25f32daf27e.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/hashset.rs crates/gpu-sim/src/stats.rs

/root/repo/target/debug/deps/libgpu_sim-655bf25f32daf27e.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/hashset.rs crates/gpu-sim/src/stats.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/buffer.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/hashset.rs:
crates/gpu-sim/src/stats.rs:
