/root/repo/target/debug/deps/rei_core-c1535660c7fb6e5d.d: crates/rei-core/src/lib.rs crates/rei-core/src/backend.rs crates/rei-core/src/cache.rs crates/rei-core/src/config.rs crates/rei-core/src/engine.rs crates/rei-core/src/observe.rs crates/rei-core/src/result.rs crates/rei-core/src/search.rs crates/rei-core/src/session.rs crates/rei-core/src/synth.rs

/root/repo/target/debug/deps/rei_core-c1535660c7fb6e5d: crates/rei-core/src/lib.rs crates/rei-core/src/backend.rs crates/rei-core/src/cache.rs crates/rei-core/src/config.rs crates/rei-core/src/engine.rs crates/rei-core/src/observe.rs crates/rei-core/src/result.rs crates/rei-core/src/search.rs crates/rei-core/src/session.rs crates/rei-core/src/synth.rs

crates/rei-core/src/lib.rs:
crates/rei-core/src/backend.rs:
crates/rei-core/src/cache.rs:
crates/rei-core/src/config.rs:
crates/rei-core/src/engine.rs:
crates/rei-core/src/observe.rs:
crates/rei-core/src/result.rs:
crates/rei-core/src/search.rs:
crates/rei-core/src/session.rs:
crates/rei-core/src/synth.rs:
