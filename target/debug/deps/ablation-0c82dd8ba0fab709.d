/root/repo/target/debug/deps/ablation-0c82dd8ba0fab709.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/libablation-0c82dd8ba0fab709.rmeta: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
