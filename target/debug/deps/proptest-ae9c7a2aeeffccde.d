/root/repo/target/debug/deps/proptest-ae9c7a2aeeffccde.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-ae9c7a2aeeffccde.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
