/root/repo/target/debug/deps/table2-299dd304b63b71e7.d: crates/bench/benches/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-299dd304b63b71e7.rmeta: crates/bench/benches/table2.rs Cargo.toml

crates/bench/benches/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
