/root/repo/target/debug/deps/gpu_sim-29df0752d2293a7d.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/hashset.rs crates/gpu-sim/src/stats.rs

/root/repo/target/debug/deps/libgpu_sim-29df0752d2293a7d.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/hashset.rs crates/gpu-sim/src/stats.rs

/root/repo/target/debug/deps/libgpu_sim-29df0752d2293a7d.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/hashset.rs crates/gpu-sim/src/stats.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/buffer.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/hashset.rs:
crates/gpu-sim/src/stats.rs:
