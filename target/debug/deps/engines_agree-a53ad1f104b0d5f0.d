/root/repo/target/debug/deps/engines_agree-a53ad1f104b0d5f0.d: tests/engines_agree.rs

/root/repo/target/debug/deps/engines_agree-a53ad1f104b0d5f0: tests/engines_agree.rs

tests/engines_agree.rs:
