/root/repo/target/debug/deps/suite_tasks-057c1701673aefdd.d: tests/suite_tasks.rs

/root/repo/target/debug/deps/suite_tasks-057c1701673aefdd: tests/suite_tasks.rs

tests/suite_tasks.rs:
