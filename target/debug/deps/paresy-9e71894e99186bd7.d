/root/repo/target/debug/deps/paresy-9e71894e99186bd7.d: src/lib.rs

/root/repo/target/debug/deps/paresy-9e71894e99186bd7: src/lib.rs

src/lib.rs:
