/root/repo/target/debug/deps/parking_lot-5f74d57de1e77bdd.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-5f74d57de1e77bdd.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-5f74d57de1e77bdd.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
