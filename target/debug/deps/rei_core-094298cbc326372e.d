/root/repo/target/debug/deps/rei_core-094298cbc326372e.d: crates/rei-core/src/lib.rs crates/rei-core/src/backend.rs crates/rei-core/src/cache.rs crates/rei-core/src/config.rs crates/rei-core/src/engine.rs crates/rei-core/src/observe.rs crates/rei-core/src/result.rs crates/rei-core/src/search.rs crates/rei-core/src/session.rs crates/rei-core/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/librei_core-094298cbc326372e.rmeta: crates/rei-core/src/lib.rs crates/rei-core/src/backend.rs crates/rei-core/src/cache.rs crates/rei-core/src/config.rs crates/rei-core/src/engine.rs crates/rei-core/src/observe.rs crates/rei-core/src/result.rs crates/rei-core/src/search.rs crates/rei-core/src/session.rs crates/rei-core/src/synth.rs Cargo.toml

crates/rei-core/src/lib.rs:
crates/rei-core/src/backend.rs:
crates/rei-core/src/cache.rs:
crates/rei-core/src/config.rs:
crates/rei-core/src/engine.rs:
crates/rei-core/src/observe.rs:
crates/rei-core/src/result.rs:
crates/rei-core/src/search.rs:
crates/rei-core/src/session.rs:
crates/rei-core/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
