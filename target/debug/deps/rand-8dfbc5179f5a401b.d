/root/repo/target/debug/deps/rand-8dfbc5179f5a401b.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-8dfbc5179f5a401b.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
