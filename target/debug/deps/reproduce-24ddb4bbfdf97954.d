/root/repo/target/debug/deps/reproduce-24ddb4bbfdf97954.d: crates/rei-bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-24ddb4bbfdf97954: crates/rei-bench/src/bin/reproduce.rs

crates/rei-bench/src/bin/reproduce.rs:
