/root/repo/target/debug/deps/paresy-ac046d67311f1301.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparesy-ac046d67311f1301.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
