/root/repo/target/debug/deps/alpharegex-f50603c64741ec2d.d: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs

/root/repo/target/debug/deps/libalpharegex-f50603c64741ec2d.rmeta: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs

crates/alpharegex/src/lib.rs:
crates/alpharegex/src/search.rs:
crates/alpharegex/src/state.rs:
