/root/repo/target/debug/deps/brute_force_minimality-0f24c1527404f7fe.d: tests/brute_force_minimality.rs Cargo.toml

/root/repo/target/debug/deps/libbrute_force_minimality-0f24c1527404f7fe.rmeta: tests/brute_force_minimality.rs Cargo.toml

tests/brute_force_minimality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
