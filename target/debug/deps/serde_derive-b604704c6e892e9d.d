/root/repo/target/debug/deps/serde_derive-b604704c6e892e9d.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-b604704c6e892e9d.rmeta: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
