/root/repo/target/debug/deps/rand-d720a14e0157d2d4.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-d720a14e0157d2d4: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
