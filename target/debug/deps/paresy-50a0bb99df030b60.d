/root/repo/target/debug/deps/paresy-50a0bb99df030b60.d: crates/paresy-cli/src/main.rs

/root/repo/target/debug/deps/paresy-50a0bb99df030b60: crates/paresy-cli/src/main.rs

crates/paresy-cli/src/main.rs:
