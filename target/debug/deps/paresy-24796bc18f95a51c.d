/root/repo/target/debug/deps/paresy-24796bc18f95a51c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparesy-24796bc18f95a51c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
