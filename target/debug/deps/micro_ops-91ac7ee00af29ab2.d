/root/repo/target/debug/deps/micro_ops-91ac7ee00af29ab2.d: crates/bench/benches/micro_ops.rs

/root/repo/target/debug/deps/micro_ops-91ac7ee00af29ab2: crates/bench/benches/micro_ops.rs

crates/bench/benches/micro_ops.rs:
