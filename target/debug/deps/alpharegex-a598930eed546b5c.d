/root/repo/target/debug/deps/alpharegex-a598930eed546b5c.d: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs Cargo.toml

/root/repo/target/debug/deps/libalpharegex-a598930eed546b5c.rmeta: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs Cargo.toml

crates/alpharegex/src/lib.rs:
crates/alpharegex/src/search.rs:
crates/alpharegex/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
