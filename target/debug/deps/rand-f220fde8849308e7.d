/root/repo/target/debug/deps/rand-f220fde8849308e7.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-f220fde8849308e7.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-f220fde8849308e7.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
