/root/repo/target/debug/deps/rand-2b4aac72ddc5905d.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2b4aac72ddc5905d.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
