/root/repo/target/debug/deps/paper_examples-2cd57ee9c6715376.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-2cd57ee9c6715376: tests/paper_examples.rs

tests/paper_examples.rs:
