/root/repo/target/debug/deps/ablation-d7e3bdad97b8e967.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-d7e3bdad97b8e967.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
