/root/repo/target/debug/deps/minimality-bf667d041e6740a1.d: tests/minimality.rs

/root/repo/target/debug/deps/minimality-bf667d041e6740a1: tests/minimality.rs

tests/minimality.rs:
