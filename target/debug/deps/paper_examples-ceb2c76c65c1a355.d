/root/repo/target/debug/deps/paper_examples-ceb2c76c65c1a355.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-ceb2c76c65c1a355: tests/paper_examples.rs

tests/paper_examples.rs:
