/root/repo/target/debug/deps/table1-fcbeaa73a166e6ce.d: crates/bench/benches/table1.rs

/root/repo/target/debug/deps/table1-fcbeaa73a166e6ce: crates/bench/benches/table1.rs

crates/bench/benches/table1.rs:
