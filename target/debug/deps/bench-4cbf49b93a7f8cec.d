/root/repo/target/debug/deps/bench-4cbf49b93a7f8cec.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-4cbf49b93a7f8cec.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
