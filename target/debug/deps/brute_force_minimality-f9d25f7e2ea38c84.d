/root/repo/target/debug/deps/brute_force_minimality-f9d25f7e2ea38c84.d: tests/brute_force_minimality.rs

/root/repo/target/debug/deps/brute_force_minimality-f9d25f7e2ea38c84: tests/brute_force_minimality.rs

tests/brute_force_minimality.rs:
