/root/repo/target/debug/deps/parking_lot-c3d5eedb3dcf86c1.d: shims/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-c3d5eedb3dcf86c1.rmeta: shims/parking_lot/src/lib.rs Cargo.toml

shims/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
