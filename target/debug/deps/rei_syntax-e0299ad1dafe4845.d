/root/repo/target/debug/deps/rei_syntax-e0299ad1dafe4845.d: crates/rei-syntax/src/lib.rs crates/rei-syntax/src/cost.rs crates/rei-syntax/src/dfa.rs crates/rei-syntax/src/display.rs crates/rei-syntax/src/enumerate.rs crates/rei-syntax/src/error.rs crates/rei-syntax/src/matcher.rs crates/rei-syntax/src/metrics.rs crates/rei-syntax/src/nfa.rs crates/rei-syntax/src/parse.rs crates/rei-syntax/src/regex.rs crates/rei-syntax/src/simplify.rs Cargo.toml

/root/repo/target/debug/deps/librei_syntax-e0299ad1dafe4845.rmeta: crates/rei-syntax/src/lib.rs crates/rei-syntax/src/cost.rs crates/rei-syntax/src/dfa.rs crates/rei-syntax/src/display.rs crates/rei-syntax/src/enumerate.rs crates/rei-syntax/src/error.rs crates/rei-syntax/src/matcher.rs crates/rei-syntax/src/metrics.rs crates/rei-syntax/src/nfa.rs crates/rei-syntax/src/parse.rs crates/rei-syntax/src/regex.rs crates/rei-syntax/src/simplify.rs Cargo.toml

crates/rei-syntax/src/lib.rs:
crates/rei-syntax/src/cost.rs:
crates/rei-syntax/src/dfa.rs:
crates/rei-syntax/src/display.rs:
crates/rei-syntax/src/enumerate.rs:
crates/rei-syntax/src/error.rs:
crates/rei-syntax/src/matcher.rs:
crates/rei-syntax/src/metrics.rs:
crates/rei-syntax/src/nfa.rs:
crates/rei-syntax/src/parse.rs:
crates/rei-syntax/src/regex.rs:
crates/rei-syntax/src/simplify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
