/root/repo/target/debug/deps/criterion-8a929eb8d5851346.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-8a929eb8d5851346.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
