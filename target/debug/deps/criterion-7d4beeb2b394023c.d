/root/repo/target/debug/deps/criterion-7d4beeb2b394023c.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-7d4beeb2b394023c.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
