/root/repo/target/debug/deps/serde_derive-ca900d0893111fd1.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-ca900d0893111fd1.rmeta: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
