/root/repo/target/debug/deps/bench-606a38cee42cff23.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-606a38cee42cff23: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
