/root/repo/target/debug/deps/brute_force_minimality-e20fb86da4ae0a38.d: tests/brute_force_minimality.rs

/root/repo/target/debug/deps/libbrute_force_minimality-e20fb86da4ae0a38.rmeta: tests/brute_force_minimality.rs

tests/brute_force_minimality.rs:
