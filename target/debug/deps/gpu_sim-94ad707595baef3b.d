/root/repo/target/debug/deps/gpu_sim-94ad707595baef3b.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/hashset.rs crates/gpu-sim/src/stats.rs

/root/repo/target/debug/deps/libgpu_sim-94ad707595baef3b.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/hashset.rs crates/gpu-sim/src/stats.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/buffer.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/hashset.rs:
crates/gpu-sim/src/stats.rs:
