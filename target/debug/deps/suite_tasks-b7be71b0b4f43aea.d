/root/repo/target/debug/deps/suite_tasks-b7be71b0b4f43aea.d: tests/suite_tasks.rs

/root/repo/target/debug/deps/suite_tasks-b7be71b0b4f43aea: tests/suite_tasks.rs

tests/suite_tasks.rs:
