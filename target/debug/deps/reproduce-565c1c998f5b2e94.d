/root/repo/target/debug/deps/reproduce-565c1c998f5b2e94.d: crates/rei-bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-565c1c998f5b2e94: crates/rei-bench/src/bin/reproduce.rs

crates/rei-bench/src/bin/reproduce.rs:
