/root/repo/target/debug/deps/paresy_cli-065618adb3a4166f.d: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

/root/repo/target/debug/deps/libparesy_cli-065618adb3a4166f.rmeta: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

crates/paresy-cli/src/lib.rs:
crates/paresy-cli/src/args.rs:
crates/paresy-cli/src/commands.rs:
crates/paresy-cli/src/specfile.rs:
