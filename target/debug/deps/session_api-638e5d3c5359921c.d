/root/repo/target/debug/deps/session_api-638e5d3c5359921c.d: tests/session_api.rs

/root/repo/target/debug/deps/libsession_api-638e5d3c5359921c.rmeta: tests/session_api.rs

tests/session_api.rs:
