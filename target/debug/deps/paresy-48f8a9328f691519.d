/root/repo/target/debug/deps/paresy-48f8a9328f691519.d: crates/paresy-cli/src/main.rs

/root/repo/target/debug/deps/libparesy-48f8a9328f691519.rmeta: crates/paresy-cli/src/main.rs

crates/paresy-cli/src/main.rs:
