/root/repo/target/debug/deps/micro_ops-aa10a8601e9f1f65.d: crates/bench/benches/micro_ops.rs

/root/repo/target/debug/deps/libmicro_ops-aa10a8601e9f1f65.rmeta: crates/bench/benches/micro_ops.rs

crates/bench/benches/micro_ops.rs:
