/root/repo/target/debug/deps/figure1-5220851a864046b1.d: crates/bench/benches/figure1.rs Cargo.toml

/root/repo/target/debug/deps/libfigure1-5220851a864046b1.rmeta: crates/bench/benches/figure1.rs Cargo.toml

crates/bench/benches/figure1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
