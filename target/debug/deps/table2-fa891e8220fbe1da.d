/root/repo/target/debug/deps/table2-fa891e8220fbe1da.d: crates/bench/benches/table2.rs

/root/repo/target/debug/deps/libtable2-fa891e8220fbe1da.rmeta: crates/bench/benches/table2.rs

crates/bench/benches/table2.rs:
