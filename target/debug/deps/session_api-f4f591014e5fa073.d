/root/repo/target/debug/deps/session_api-f4f591014e5fa073.d: tests/session_api.rs

/root/repo/target/debug/deps/session_api-f4f591014e5fa073: tests/session_api.rs

tests/session_api.rs:
