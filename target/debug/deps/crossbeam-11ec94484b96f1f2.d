/root/repo/target/debug/deps/crossbeam-11ec94484b96f1f2.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-11ec94484b96f1f2.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
