/root/repo/target/debug/deps/bench-4349750681ee17c2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-4349750681ee17c2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
