/root/repo/target/debug/deps/gpu_sim-9031ebc03441acfe.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/hashset.rs crates/gpu-sim/src/stats.rs

/root/repo/target/debug/deps/gpu_sim-9031ebc03441acfe: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/hashset.rs crates/gpu-sim/src/stats.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/buffer.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/hashset.rs:
crates/gpu-sim/src/stats.rs:
