/root/repo/target/debug/deps/rei_bench-aa4b2e63021c68b6.d: crates/rei-bench/src/lib.rs crates/rei-bench/src/costs.rs crates/rei-bench/src/generator.rs crates/rei-bench/src/harness/mod.rs crates/rei-bench/src/harness/error_table.rs crates/rei-bench/src/harness/figure1.rs crates/rei-bench/src/harness/outliers.rs crates/rei-bench/src/harness/table1.rs crates/rei-bench/src/harness/table2.rs crates/rei-bench/src/report.rs crates/rei-bench/src/suite.rs

/root/repo/target/debug/deps/rei_bench-aa4b2e63021c68b6: crates/rei-bench/src/lib.rs crates/rei-bench/src/costs.rs crates/rei-bench/src/generator.rs crates/rei-bench/src/harness/mod.rs crates/rei-bench/src/harness/error_table.rs crates/rei-bench/src/harness/figure1.rs crates/rei-bench/src/harness/outliers.rs crates/rei-bench/src/harness/table1.rs crates/rei-bench/src/harness/table2.rs crates/rei-bench/src/report.rs crates/rei-bench/src/suite.rs

crates/rei-bench/src/lib.rs:
crates/rei-bench/src/costs.rs:
crates/rei-bench/src/generator.rs:
crates/rei-bench/src/harness/mod.rs:
crates/rei-bench/src/harness/error_table.rs:
crates/rei-bench/src/harness/figure1.rs:
crates/rei-bench/src/harness/outliers.rs:
crates/rei-bench/src/harness/table1.rs:
crates/rei-bench/src/harness/table2.rs:
crates/rei-bench/src/report.rs:
crates/rei-bench/src/suite.rs:
