/root/repo/target/debug/deps/alpharegex-016b29df69612bb5.d: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs

/root/repo/target/debug/deps/libalpharegex-016b29df69612bb5.rmeta: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs

crates/alpharegex/src/lib.rs:
crates/alpharegex/src/search.rs:
crates/alpharegex/src/state.rs:
