/root/repo/target/debug/deps/paresy-d0cc091bf72142af.d: src/lib.rs

/root/repo/target/debug/deps/paresy-d0cc091bf72142af: src/lib.rs

src/lib.rs:
