/root/repo/target/debug/deps/rei_lang-cc4bb906439b9dae.d: crates/rei-lang/src/lib.rs crates/rei-lang/src/alphabet.rs crates/rei-lang/src/cs.rs crates/rei-lang/src/csops.rs crates/rei-lang/src/error.rs crates/rei-lang/src/guide.rs crates/rei-lang/src/infix.rs crates/rei-lang/src/satisfy.rs crates/rei-lang/src/spec.rs crates/rei-lang/src/word.rs

/root/repo/target/debug/deps/librei_lang-cc4bb906439b9dae.rmeta: crates/rei-lang/src/lib.rs crates/rei-lang/src/alphabet.rs crates/rei-lang/src/cs.rs crates/rei-lang/src/csops.rs crates/rei-lang/src/error.rs crates/rei-lang/src/guide.rs crates/rei-lang/src/infix.rs crates/rei-lang/src/satisfy.rs crates/rei-lang/src/spec.rs crates/rei-lang/src/word.rs

crates/rei-lang/src/lib.rs:
crates/rei-lang/src/alphabet.rs:
crates/rei-lang/src/cs.rs:
crates/rei-lang/src/csops.rs:
crates/rei-lang/src/error.rs:
crates/rei-lang/src/guide.rs:
crates/rei-lang/src/infix.rs:
crates/rei-lang/src/satisfy.rs:
crates/rei-lang/src/spec.rs:
crates/rei-lang/src/word.rs:
