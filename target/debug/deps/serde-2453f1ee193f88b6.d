/root/repo/target/debug/deps/serde-2453f1ee193f88b6.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-2453f1ee193f88b6.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
