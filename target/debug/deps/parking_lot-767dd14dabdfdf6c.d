/root/repo/target/debug/deps/parking_lot-767dd14dabdfdf6c.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-767dd14dabdfdf6c: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
