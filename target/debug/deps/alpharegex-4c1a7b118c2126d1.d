/root/repo/target/debug/deps/alpharegex-4c1a7b118c2126d1.d: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs

/root/repo/target/debug/deps/libalpharegex-4c1a7b118c2126d1.rlib: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs

/root/repo/target/debug/deps/libalpharegex-4c1a7b118c2126d1.rmeta: crates/alpharegex/src/lib.rs crates/alpharegex/src/search.rs crates/alpharegex/src/state.rs

crates/alpharegex/src/lib.rs:
crates/alpharegex/src/search.rs:
crates/alpharegex/src/state.rs:
