/root/repo/target/debug/deps/figure1-c6045d0caf8e5610.d: crates/bench/benches/figure1.rs

/root/repo/target/debug/deps/libfigure1-c6045d0caf8e5610.rmeta: crates/bench/benches/figure1.rs

crates/bench/benches/figure1.rs:
