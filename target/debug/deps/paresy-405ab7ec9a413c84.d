/root/repo/target/debug/deps/paresy-405ab7ec9a413c84.d: crates/paresy-cli/src/main.rs

/root/repo/target/debug/deps/libparesy-405ab7ec9a413c84.rmeta: crates/paresy-cli/src/main.rs

crates/paresy-cli/src/main.rs:
