/root/repo/target/debug/deps/crossbeam-e90242bbcb9c6f58.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-e90242bbcb9c6f58.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
