/root/repo/target/debug/deps/micro_ops-c1df91f9563cde15.d: crates/bench/benches/micro_ops.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_ops-c1df91f9563cde15.rmeta: crates/bench/benches/micro_ops.rs Cargo.toml

crates/bench/benches/micro_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
