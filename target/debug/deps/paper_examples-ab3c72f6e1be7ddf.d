/root/repo/target/debug/deps/paper_examples-ab3c72f6e1be7ddf.d: tests/paper_examples.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_examples-ab3c72f6e1be7ddf.rmeta: tests/paper_examples.rs Cargo.toml

tests/paper_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
