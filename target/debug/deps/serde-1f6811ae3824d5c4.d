/root/repo/target/debug/deps/serde-1f6811ae3824d5c4.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-1f6811ae3824d5c4.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
