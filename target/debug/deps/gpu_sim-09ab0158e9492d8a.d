/root/repo/target/debug/deps/gpu_sim-09ab0158e9492d8a.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/hashset.rs crates/gpu-sim/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_sim-09ab0158e9492d8a.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/hashset.rs crates/gpu-sim/src/stats.rs Cargo.toml

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/buffer.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/hashset.rs:
crates/gpu-sim/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
