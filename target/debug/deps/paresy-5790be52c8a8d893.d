/root/repo/target/debug/deps/paresy-5790be52c8a8d893.d: src/lib.rs

/root/repo/target/debug/deps/libparesy-5790be52c8a8d893.rlib: src/lib.rs

/root/repo/target/debug/deps/libparesy-5790be52c8a8d893.rmeta: src/lib.rs

src/lib.rs:
