/root/repo/target/debug/deps/suite_tasks-e01e8669ec99fb3e.d: tests/suite_tasks.rs

/root/repo/target/debug/deps/libsuite_tasks-e01e8669ec99fb3e.rmeta: tests/suite_tasks.rs

tests/suite_tasks.rs:
