/root/repo/target/debug/deps/proptest-49089ce28a7e3816.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-49089ce28a7e3816.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
