/root/repo/target/debug/deps/session_api-1ea4ea7c91f88f32.d: tests/session_api.rs

/root/repo/target/debug/deps/session_api-1ea4ea7c91f88f32: tests/session_api.rs

tests/session_api.rs:
