/root/repo/target/debug/deps/paresy-a88ad0931f296692.d: crates/paresy-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libparesy-a88ad0931f296692.rmeta: crates/paresy-cli/src/main.rs Cargo.toml

crates/paresy-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
