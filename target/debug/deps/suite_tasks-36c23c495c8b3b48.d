/root/repo/target/debug/deps/suite_tasks-36c23c495c8b3b48.d: tests/suite_tasks.rs Cargo.toml

/root/repo/target/debug/deps/libsuite_tasks-36c23c495c8b3b48.rmeta: tests/suite_tasks.rs Cargo.toml

tests/suite_tasks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
