/root/repo/target/debug/deps/table1-6b2ba239cab954e0.d: crates/bench/benches/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-6b2ba239cab954e0.rmeta: crates/bench/benches/table1.rs Cargo.toml

crates/bench/benches/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
