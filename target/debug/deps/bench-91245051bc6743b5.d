/root/repo/target/debug/deps/bench-91245051bc6743b5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-91245051bc6743b5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
