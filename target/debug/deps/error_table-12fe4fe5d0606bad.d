/root/repo/target/debug/deps/error_table-12fe4fe5d0606bad.d: crates/bench/benches/error_table.rs

/root/repo/target/debug/deps/liberror_table-12fe4fe5d0606bad.rmeta: crates/bench/benches/error_table.rs

crates/bench/benches/error_table.rs:
