/root/repo/target/debug/deps/serde-a081148dfdfd822c.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a081148dfdfd822c.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a081148dfdfd822c.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
