/root/repo/target/debug/deps/rei_syntax-6b56bdf2099d3cbe.d: crates/rei-syntax/src/lib.rs crates/rei-syntax/src/cost.rs crates/rei-syntax/src/dfa.rs crates/rei-syntax/src/display.rs crates/rei-syntax/src/enumerate.rs crates/rei-syntax/src/error.rs crates/rei-syntax/src/matcher.rs crates/rei-syntax/src/metrics.rs crates/rei-syntax/src/nfa.rs crates/rei-syntax/src/parse.rs crates/rei-syntax/src/regex.rs crates/rei-syntax/src/simplify.rs

/root/repo/target/debug/deps/librei_syntax-6b56bdf2099d3cbe.rlib: crates/rei-syntax/src/lib.rs crates/rei-syntax/src/cost.rs crates/rei-syntax/src/dfa.rs crates/rei-syntax/src/display.rs crates/rei-syntax/src/enumerate.rs crates/rei-syntax/src/error.rs crates/rei-syntax/src/matcher.rs crates/rei-syntax/src/metrics.rs crates/rei-syntax/src/nfa.rs crates/rei-syntax/src/parse.rs crates/rei-syntax/src/regex.rs crates/rei-syntax/src/simplify.rs

/root/repo/target/debug/deps/librei_syntax-6b56bdf2099d3cbe.rmeta: crates/rei-syntax/src/lib.rs crates/rei-syntax/src/cost.rs crates/rei-syntax/src/dfa.rs crates/rei-syntax/src/display.rs crates/rei-syntax/src/enumerate.rs crates/rei-syntax/src/error.rs crates/rei-syntax/src/matcher.rs crates/rei-syntax/src/metrics.rs crates/rei-syntax/src/nfa.rs crates/rei-syntax/src/parse.rs crates/rei-syntax/src/regex.rs crates/rei-syntax/src/simplify.rs

crates/rei-syntax/src/lib.rs:
crates/rei-syntax/src/cost.rs:
crates/rei-syntax/src/dfa.rs:
crates/rei-syntax/src/display.rs:
crates/rei-syntax/src/enumerate.rs:
crates/rei-syntax/src/error.rs:
crates/rei-syntax/src/matcher.rs:
crates/rei-syntax/src/metrics.rs:
crates/rei-syntax/src/nfa.rs:
crates/rei-syntax/src/parse.rs:
crates/rei-syntax/src/regex.rs:
crates/rei-syntax/src/simplify.rs:
