/root/repo/target/debug/deps/paresy_cli-b0515610f68f42ef.d: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

/root/repo/target/debug/deps/libparesy_cli-b0515610f68f42ef.rlib: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

/root/repo/target/debug/deps/libparesy_cli-b0515610f68f42ef.rmeta: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

crates/paresy-cli/src/lib.rs:
crates/paresy-cli/src/args.rs:
crates/paresy-cli/src/commands.rs:
crates/paresy-cli/src/specfile.rs:
