/root/repo/target/debug/deps/paresy_cli-9792260daec7bbee.d: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

/root/repo/target/debug/deps/paresy_cli-9792260daec7bbee: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

crates/paresy-cli/src/lib.rs:
crates/paresy-cli/src/args.rs:
crates/paresy-cli/src/commands.rs:
crates/paresy-cli/src/specfile.rs:
