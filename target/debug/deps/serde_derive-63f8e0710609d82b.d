/root/repo/target/debug/deps/serde_derive-63f8e0710609d82b.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-63f8e0710609d82b.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
