/root/repo/target/debug/deps/proptest-7a03e61a0c3a23aa.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-7a03e61a0c3a23aa: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
