/root/repo/target/debug/deps/table1-b987f5144c3449a8.d: crates/bench/benches/table1.rs

/root/repo/target/debug/deps/libtable1-b987f5144c3449a8.rmeta: crates/bench/benches/table1.rs

crates/bench/benches/table1.rs:
