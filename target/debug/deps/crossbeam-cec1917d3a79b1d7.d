/root/repo/target/debug/deps/crossbeam-cec1917d3a79b1d7.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-cec1917d3a79b1d7.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-cec1917d3a79b1d7.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
