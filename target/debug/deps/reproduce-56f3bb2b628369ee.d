/root/repo/target/debug/deps/reproduce-56f3bb2b628369ee.d: crates/rei-bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-56f3bb2b628369ee.rmeta: crates/rei-bench/src/bin/reproduce.rs Cargo.toml

crates/rei-bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
