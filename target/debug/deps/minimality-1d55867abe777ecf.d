/root/repo/target/debug/deps/minimality-1d55867abe777ecf.d: tests/minimality.rs

/root/repo/target/debug/deps/minimality-1d55867abe777ecf: tests/minimality.rs

tests/minimality.rs:
