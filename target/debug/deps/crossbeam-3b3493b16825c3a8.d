/root/repo/target/debug/deps/crossbeam-3b3493b16825c3a8.d: shims/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-3b3493b16825c3a8.rmeta: shims/crossbeam/src/lib.rs Cargo.toml

shims/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
