/root/repo/target/debug/deps/paresy_cli-77419cca51f20191.d: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

/root/repo/target/debug/deps/libparesy_cli-77419cca51f20191.rlib: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

/root/repo/target/debug/deps/libparesy_cli-77419cca51f20191.rmeta: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

crates/paresy-cli/src/lib.rs:
crates/paresy-cli/src/args.rs:
crates/paresy-cli/src/commands.rs:
crates/paresy-cli/src/specfile.rs:
