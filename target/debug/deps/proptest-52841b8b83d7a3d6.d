/root/repo/target/debug/deps/proptest-52841b8b83d7a3d6.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-52841b8b83d7a3d6.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
