/root/repo/target/debug/deps/paresy-0934d0a8a018bc0d.d: crates/paresy-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libparesy-0934d0a8a018bc0d.rmeta: crates/paresy-cli/src/main.rs Cargo.toml

crates/paresy-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
