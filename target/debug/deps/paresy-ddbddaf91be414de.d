/root/repo/target/debug/deps/paresy-ddbddaf91be414de.d: src/lib.rs

/root/repo/target/debug/deps/libparesy-ddbddaf91be414de.rmeta: src/lib.rs

src/lib.rs:
