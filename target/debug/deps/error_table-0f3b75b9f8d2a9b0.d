/root/repo/target/debug/deps/error_table-0f3b75b9f8d2a9b0.d: crates/bench/benches/error_table.rs

/root/repo/target/debug/deps/error_table-0f3b75b9f8d2a9b0: crates/bench/benches/error_table.rs

crates/bench/benches/error_table.rs:
