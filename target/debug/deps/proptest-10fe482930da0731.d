/root/repo/target/debug/deps/proptest-10fe482930da0731.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-10fe482930da0731.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
