/root/repo/target/debug/deps/brute_force_minimality-f76b1ea6cdf6b1fb.d: tests/brute_force_minimality.rs

/root/repo/target/debug/deps/brute_force_minimality-f76b1ea6cdf6b1fb: tests/brute_force_minimality.rs

tests/brute_force_minimality.rs:
