/root/repo/target/debug/deps/bench-233c80a32e92fbc9.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-233c80a32e92fbc9.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
