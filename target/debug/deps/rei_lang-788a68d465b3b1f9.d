/root/repo/target/debug/deps/rei_lang-788a68d465b3b1f9.d: crates/rei-lang/src/lib.rs crates/rei-lang/src/alphabet.rs crates/rei-lang/src/cs.rs crates/rei-lang/src/csops.rs crates/rei-lang/src/error.rs crates/rei-lang/src/guide.rs crates/rei-lang/src/infix.rs crates/rei-lang/src/satisfy.rs crates/rei-lang/src/spec.rs crates/rei-lang/src/word.rs Cargo.toml

/root/repo/target/debug/deps/librei_lang-788a68d465b3b1f9.rmeta: crates/rei-lang/src/lib.rs crates/rei-lang/src/alphabet.rs crates/rei-lang/src/cs.rs crates/rei-lang/src/csops.rs crates/rei-lang/src/error.rs crates/rei-lang/src/guide.rs crates/rei-lang/src/infix.rs crates/rei-lang/src/satisfy.rs crates/rei-lang/src/spec.rs crates/rei-lang/src/word.rs Cargo.toml

crates/rei-lang/src/lib.rs:
crates/rei-lang/src/alphabet.rs:
crates/rei-lang/src/cs.rs:
crates/rei-lang/src/csops.rs:
crates/rei-lang/src/error.rs:
crates/rei-lang/src/guide.rs:
crates/rei-lang/src/infix.rs:
crates/rei-lang/src/satisfy.rs:
crates/rei-lang/src/spec.rs:
crates/rei-lang/src/word.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
