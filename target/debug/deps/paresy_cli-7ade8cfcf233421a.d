/root/repo/target/debug/deps/paresy_cli-7ade8cfcf233421a.d: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs Cargo.toml

/root/repo/target/debug/deps/libparesy_cli-7ade8cfcf233421a.rmeta: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs Cargo.toml

crates/paresy-cli/src/lib.rs:
crates/paresy-cli/src/args.rs:
crates/paresy-cli/src/commands.rs:
crates/paresy-cli/src/specfile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
