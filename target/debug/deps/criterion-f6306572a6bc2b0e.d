/root/repo/target/debug/deps/criterion-f6306572a6bc2b0e.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f6306572a6bc2b0e.rlib: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f6306572a6bc2b0e.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
