/root/repo/target/debug/deps/bench-9506d9bcd00fa5a4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-9506d9bcd00fa5a4.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-9506d9bcd00fa5a4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
