/root/repo/target/debug/deps/rei_core-ad12cd87aa4cc12f.d: crates/rei-core/src/lib.rs crates/rei-core/src/backend.rs crates/rei-core/src/cache.rs crates/rei-core/src/config.rs crates/rei-core/src/engine.rs crates/rei-core/src/observe.rs crates/rei-core/src/result.rs crates/rei-core/src/search.rs crates/rei-core/src/session.rs crates/rei-core/src/synth.rs

/root/repo/target/debug/deps/librei_core-ad12cd87aa4cc12f.rmeta: crates/rei-core/src/lib.rs crates/rei-core/src/backend.rs crates/rei-core/src/cache.rs crates/rei-core/src/config.rs crates/rei-core/src/engine.rs crates/rei-core/src/observe.rs crates/rei-core/src/result.rs crates/rei-core/src/search.rs crates/rei-core/src/session.rs crates/rei-core/src/synth.rs

crates/rei-core/src/lib.rs:
crates/rei-core/src/backend.rs:
crates/rei-core/src/cache.rs:
crates/rei-core/src/config.rs:
crates/rei-core/src/engine.rs:
crates/rei-core/src/observe.rs:
crates/rei-core/src/result.rs:
crates/rei-core/src/search.rs:
crates/rei-core/src/session.rs:
crates/rei-core/src/synth.rs:
