/root/repo/target/debug/deps/crossbeam-2c27d517e0b543c6.d: shims/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-2c27d517e0b543c6.rmeta: shims/crossbeam/src/lib.rs Cargo.toml

shims/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
