/root/repo/target/debug/deps/rand-cf8625baa9aa79f1.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-cf8625baa9aa79f1.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
