/root/repo/target/debug/deps/bench-51c9dbfebb4ea1ec.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-51c9dbfebb4ea1ec.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
