/root/repo/target/debug/deps/parking_lot-ea67a3a11c6923e9.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-ea67a3a11c6923e9.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
