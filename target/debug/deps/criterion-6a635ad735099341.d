/root/repo/target/debug/deps/criterion-6a635ad735099341.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-6a635ad735099341.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
