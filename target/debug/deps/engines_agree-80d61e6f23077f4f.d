/root/repo/target/debug/deps/engines_agree-80d61e6f23077f4f.d: tests/engines_agree.rs

/root/repo/target/debug/deps/libengines_agree-80d61e6f23077f4f.rmeta: tests/engines_agree.rs

tests/engines_agree.rs:
