/root/repo/target/debug/deps/reproduce-930a41e31bd00998.d: crates/rei-bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-930a41e31bd00998: crates/rei-bench/src/bin/reproduce.rs

crates/rei-bench/src/bin/reproduce.rs:
