/root/repo/target/debug/deps/proptest-3953102c35cc4b86.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3953102c35cc4b86.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3953102c35cc4b86.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
