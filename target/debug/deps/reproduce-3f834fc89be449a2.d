/root/repo/target/debug/deps/reproduce-3f834fc89be449a2.d: crates/rei-bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/libreproduce-3f834fc89be449a2.rmeta: crates/rei-bench/src/bin/reproduce.rs

crates/rei-bench/src/bin/reproduce.rs:
