/root/repo/target/debug/deps/error_table-ee67ba1622a80104.d: crates/bench/benches/error_table.rs Cargo.toml

/root/repo/target/debug/deps/liberror_table-ee67ba1622a80104.rmeta: crates/bench/benches/error_table.rs Cargo.toml

crates/bench/benches/error_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
