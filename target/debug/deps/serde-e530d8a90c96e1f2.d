/root/repo/target/debug/deps/serde-e530d8a90c96e1f2.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-e530d8a90c96e1f2: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
