/root/repo/target/debug/deps/paresy_cli-5337f8b7db2e51cd.d: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

/root/repo/target/debug/deps/libparesy_cli-5337f8b7db2e51cd.rmeta: crates/paresy-cli/src/lib.rs crates/paresy-cli/src/args.rs crates/paresy-cli/src/commands.rs crates/paresy-cli/src/specfile.rs

crates/paresy-cli/src/lib.rs:
crates/paresy-cli/src/args.rs:
crates/paresy-cli/src/commands.rs:
crates/paresy-cli/src/specfile.rs:
