/root/repo/target/debug/libserde.rlib: /root/repo/shims/serde/src/lib.rs /root/repo/shims/serde_derive/src/lib.rs
