#!/usr/bin/env python3
"""Validate `paresy serve` JSONL output.

The committed, versioned form of CI's serve smoke checks (and the one to
run locally):

    paresy serve --workers 2 < requests.jsonl | python3 ci/check_serve.py \
        --ids intro,zeros,intro-again --ordered --all-solved

Reads result lines from a file argument or stdin. Ids are compared as
strings (numeric ids are rendered compactly, matching what a client would
correlate on).

Flags:
  --ids a,b,c          the expected id set (exact, duplicates included)
  --ordered            additionally require exactly that order (buffered
                       serve answers in request order; --stream does not)
  --all-solved         every result line has "status": "solved"
  --all-source S[,S]   every result line's "source" is one of S
  --cost ID=N          the given id's "cost" (repeatable)
  --source ID=S[,S]    the given id's "source" is one of S (repeatable)
  --reuse ID=L[,L]     the given id's "reuse" label is one of L — refine
                       answers report unchanged/warm/cold (repeatable)
  --proto N            every line (results, verb acks, metrics) carries
                       "proto": N — the wire protocol version stamp
  --ops a,b,c          the control-verb ack lines (hello, session.open,
                       session.close, …) are exactly these ops in this
                       order, every one with "status": "ok"
  --metrics            the last line is a rei-service/router-metrics-v1
                       snapshot (required by the three flags below)
  --pools N            the snapshot reports exactly N pools
  --max-enqueued N     rollup jobs.enqueued <= N (e.g. 0 proves a
                       disk-warm restart executed zero syntheses)
  --min-disk-loaded N  rollup cache.disk_loaded >= N
  --min-fused N        rollup jobs.fused_requests >= N, and strictly more
                       fused requests than fused batches (cross-request
                       batch fusion genuinely shared a level sweep)
  --min-restart-hit-rate R
                       at least fraction R of the result lines carry
                       "source": "cache" (a restarted — or kill-9'd and
                       recovered — server answers repeats from its
                       persistent cache store)
  --bench FILE         also validate the `service.refine` section of a
                       BENCH_core.json: the interactive-refinement pass
                       ran, reused warm state, and beat cold re-solves
  --min-refine-speedup R
                       the bench refine section's speedup (cold seconds /
                       refine seconds) is at least R (needs --bench)

With --bench the result-line checks are optional: piping /dev/null lets
the script validate just the bench section.
"""

import argparse
import json
import sys


def render_id(value):
    return value if isinstance(value, str) else json.dumps(value)


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", nargs="?", help="JSONL results (default stdin)")
    parser.add_argument("--ids")
    parser.add_argument("--ordered", action="store_true")
    parser.add_argument("--all-solved", action="store_true")
    parser.add_argument("--all-source")
    parser.add_argument("--cost", action="append", default=[])
    parser.add_argument("--source", action="append", default=[])
    parser.add_argument("--reuse", action="append", default=[])
    parser.add_argument("--proto", type=int)
    parser.add_argument("--ops")
    parser.add_argument("--metrics", action="store_true")
    parser.add_argument("--pools", type=int)
    parser.add_argument("--max-enqueued", type=int)
    parser.add_argument("--min-disk-loaded", type=int)
    parser.add_argument("--min-fused", type=int)
    parser.add_argument("--min-restart-hit-rate", type=float)
    parser.add_argument("--bench")
    parser.add_argument("--min-refine-speedup", type=float)
    return parser.parse_args()


def split_pair(raw, flag):
    key, sep, value = raw.partition("=")
    assert sep, f"{flag} expects ID=VALUE, got '{raw}'"
    return key, value


def check_refine_bench(args):
    """Validates the `service.refine` section of a BENCH_core.json: the
    interactive-refinement pass genuinely reused warm session state and
    answered each added example faster than a cold re-solve."""
    with open(args.bench) as handle:
        report = json.load(handle)
    refine = report["service"]["refine"]
    assert refine["chains"] > 0, refine
    assert refine["steps"] > 0, refine
    assert 1 <= refine["warm"] <= refine["steps"], refine
    assert refine["refine_seconds_total"] < refine["cold_seconds_total"], (
        f"refine lost to cold re-solve: {refine['refine_seconds_total']:.6f}s "
        f"vs {refine['cold_seconds_total']:.6f}s"
    )
    if args.min_refine_speedup is not None:
        assert refine["speedup"] >= args.min_refine_speedup, (
            f"refine speedup {refine['speedup']:.2f} < {args.min_refine_speedup}"
        )
    print(
        f"bench refine: {refine['chains']} chains / {refine['steps']} steps "
        f"({refine['warm']} warm), {refine['refine_seconds_total'] * 1e3:.1f}ms "
        f"vs cold {refine['cold_seconds_total'] * 1e3:.1f}ms "
        f"({refine['speedup']:.2f}x)"
    )


def main():
    args = parse_args()
    if args.min_refine_speedup is not None:
        assert args.bench, "--min-refine-speedup needs --bench"
    if args.bench:
        check_refine_bench(args)

    text = open(args.file).read() if args.file else sys.stdin.read()
    all_lines = [json.loads(line) for line in text.splitlines() if line.strip()]
    assert all_lines or args.bench, "no result lines"
    if not all_lines:
        return

    metrics = None
    if args.metrics:
        metrics = all_lines.pop()
        assert metrics.get("schema") == "rei-service/router-metrics-v1", metrics

    if args.proto is not None:
        stamped = all_lines + ([metrics] if metrics is not None else [])
        bad = [l for l in stamped if l.get("proto") != args.proto]
        assert not bad, f"lines without proto {args.proto}: {bad}"

    # Control-verb acknowledgements (hello, session.open/close, …) carry
    # an "op" instead of an "id" and interleave with the result lines.
    ops = [line for line in all_lines if "op" in line]
    lines = [line for line in all_lines if "op" not in line]
    if args.ops is not None:
        expected = args.ops.split(",")
        actual = [op.get("op") for op in ops]
        assert actual == expected, f"verb acks {actual} != {expected}"
        bad = [op for op in ops if op.get("status") != "ok"]
        assert not bad, f"failed verb acks: {bad}"

    by_id = {}
    ids = []
    for line in lines:
        assert "id" in line, f"result line without id: {line}"
        assert "status" in line, f"result line without status: {line}"
        rendered = render_id(line["id"])
        ids.append(rendered)
        by_id[rendered] = line

    if args.ids is not None:
        expected = args.ids.split(",")
        assert sorted(ids) == sorted(expected), f"ids {sorted(ids)} != {sorted(expected)}"
        if args.ordered:
            assert ids == expected, f"order {ids} != {expected}"
    if args.all_solved:
        bad = [l for l in lines if l["status"] != "solved"]
        assert not bad, f"unsolved results: {bad}"
    if args.all_source:
        allowed = set(args.all_source.split(","))
        bad = [l for l in lines if l.get("source") not in allowed]
        assert not bad, f"sources outside {sorted(allowed)}: {bad}"
    for raw in args.cost:
        key, value = split_pair(raw, "--cost")
        actual = by_id[key].get("cost")
        assert actual == int(value), f"id {key}: cost {actual} != {value}"
    for raw in args.source:
        key, value = split_pair(raw, "--source")
        allowed = set(value.split(","))
        actual = by_id[key].get("source")
        assert actual in allowed, f"id {key}: source {actual} not in {sorted(allowed)}"
    for raw in args.reuse:
        key, value = split_pair(raw, "--reuse")
        allowed = set(value.split(","))
        actual = by_id[key].get("reuse")
        assert actual in allowed, f"id {key}: reuse {actual} not in {sorted(allowed)}"

    if args.pools is not None:
        assert metrics is not None, "--pools needs --metrics"
        assert metrics["pools"] == args.pools, metrics["pools"]
    if args.max_enqueued is not None:
        assert metrics is not None, "--max-enqueued needs --metrics"
        enqueued = metrics["rollup"]["jobs"]["enqueued"]
        assert enqueued <= args.max_enqueued, (
            f"{enqueued} syntheses enqueued, expected <= {args.max_enqueued}"
        )
    if args.min_disk_loaded is not None:
        assert metrics is not None, "--min-disk-loaded needs --metrics"
        loaded = metrics["rollup"]["cache"]["disk_loaded"]
        assert loaded >= args.min_disk_loaded, (
            f"{loaded} records disk-loaded, expected >= {args.min_disk_loaded}"
        )
    if args.min_fused is not None:
        assert metrics is not None, "--min-fused needs --metrics"
        jobs = metrics["rollup"]["jobs"]
        fused_requests = jobs["fused_requests"]
        fused_batches = jobs["fused_batches"]
        assert fused_requests >= args.min_fused, (
            f"{fused_requests} fused requests, expected >= {args.min_fused}"
        )
        assert fused_requests > fused_batches, (
            f"fusion never shared a sweep: {fused_requests} requests "
            f"in {fused_batches} batches"
        )
    if args.min_restart_hit_rate is not None:
        hits = sum(1 for l in lines if l.get("source") == "cache")
        rate = hits / len(lines)
        assert rate >= args.min_restart_hit_rate, (
            f"restart hit rate {rate:.2f} ({hits}/{len(lines)} cache-served), "
            f"expected >= {args.min_restart_hit_rate}"
        )

    print(f"{len(lines)} result lines ok ({', '.join(ids)})")


if __name__ == "__main__":
    main()
