#!/usr/bin/env python3
"""Pipe a JSONL request file through a live `paresy serve --listen` server.

The TCP analogue of `paresy serve < requests.jsonl`: opens one ordered
connection, submits every request line, reads exactly one answer per
request and prints the answers as JSONL on stdout — ready for
`ci/check_serve.py`. CI's kill-9 crash-recovery pass uses it twice over
one cache directory:

    ./target/release/paresy serve --listen 127.0.0.1:0 \
        --cache-dir cache --cache-roll-bytes 4096 > serve.log &
    addr=$(sed -n 's/^listening on //p' serve.log)
    python3 ci/drive_tcp.py "$addr" requests.jsonl > out1.jsonl
    kill -9 %1                      # no graceful fold, tail segment only
    # ... restart, replay, then:
    python3 ci/drive_tcp.py "$addr" requests.jsonl --metrics --shutdown \
        | python3 ci/check_serve.py --metrics --min-restart-hit-rate 0.9

Flags:
  --metrics    append the server's router-metrics snapshot as a final
               line (the `metrics` verb)
  --shutdown   send the `shutdown` verb after the answers and wait for
               the server's graceful-drain EOF
"""

import argparse
import json
import socket
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("addr", help="HOST:PORT from the server's 'listening on' line")
    parser.add_argument("file", nargs="?", help="JSONL requests (default stdin)")
    parser.add_argument("--metrics", action="store_true")
    parser.add_argument("--shutdown", action="store_true")
    parser.add_argument("--timeout", type=float, default=120.0, help="per-socket seconds")
    args = parser.parse_args()

    text = open(args.file).read() if args.file else sys.stdin.read()
    requests = [line for line in text.splitlines() if line.strip()]
    assert requests, "no request lines"

    host, port = args.addr.rsplit(":", 1)
    sock = socket.create_connection((host, int(port)), timeout=args.timeout)
    reader = sock.makefile("r", encoding="utf-8")
    for line in requests:
        json.loads(line)  # refuse to send malformed input
        sock.sendall((line + "\n").encode("utf-8"))
    for _ in requests:
        answer = reader.readline()
        assert answer, "connection closed before every answer arrived"
        print(answer, end="")

    if args.metrics:
        sock.sendall(b'{"op": "metrics"}\n')
        snapshot = reader.readline()
        assert snapshot, "connection closed before the metrics snapshot"
        assert json.loads(snapshot).get("schema") == "rei-service/router-metrics-v1", snapshot
        print(snapshot, end="")
    if args.shutdown:
        sock.sendall(b'{"op": "shutdown"}\n')
        ack = json.loads(reader.readline())
        assert ack.get("op") == "shutdown" and ack.get("status") == "ok", ack
        assert reader.readline() == "", "expected EOF after shutdown drain"
    sock.close()


if __name__ == "__main__":
    main()
