#!/usr/bin/env python3
"""Drive a live `paresy serve --listen` server over TCP.

Opens four concurrent connections — an ordered one, a streaming one, a
refinement session and a deliberately over-limit tenant — and asserts
the front-end contract: every response line is stamped with the wire
protocol version (`"proto"`), the `hello` handshake advertises the
server's version, verbs and capabilities, ordered answers arrive in
submission order, streaming answers arrive per id, an
open→refine×3→close session flow answers cold, then warm, then
unchanged (and a refine against the closed session is rejected with
`unknown_session`), the flooding tenant is rejected explicitly with
`rate_limited` (never silently stalled), and the `shutdown` verb drains
the server cleanly.  The caller then asserts the server process
exits 0:

    ./target/release/paresy serve --listen 127.0.0.1:0 \
        --metrics-addr 127.0.0.1:0 \
        --tenant flood=1,0.000000001,1,4 > serve.log &
    addr=$(sed -n 's/^listening on //p' serve.log)
    maddr=$(sed -n 's/^metrics on //p' serve.log)
    python3 ci/check_net.py "$addr" --metrics-addr "$maddr"
    wait %1

With `--metrics-addr` the script also scrapes the Prometheus text
endpoint and asserts the exposition contract: an HTTP 200 with the
text-format content type, the expected metric families, histogram
`le` buckets that are cumulative (monotone non-decreasing, ending in
`+Inf` == `_count`), and counters that agree with the JSON `metrics`
verb.

The flood tenant's name defaults to `flood` and must be configured on
the server with a near-zero refill rate and a burst of 1 so that exactly
one of its requests is admitted.
"""

import argparse
import json
import socket
import sys
import threading

# Every JSONL response line carries this protocol version stamp.
PROTO_VERSION = 2


def connect(addr, timeout):
    host, port = addr.rsplit(":", 1)
    sock = socket.create_connection((host, int(port)), timeout=timeout)
    return sock, sock.makefile("r", encoding="utf-8")


def send(sock, obj):
    sock.sendall((json.dumps(obj) + "\n").encode("utf-8"))


def read_json(reader):
    line = reader.readline()
    assert line, "connection closed early"
    obj = json.loads(line)
    assert obj.get("proto") == PROTO_VERSION, f"missing/wrong proto stamp: {obj}"
    return obj


def request(rid, pos, neg, tenant):
    return {"id": rid, "pos": pos, "neg": neg, "tenant": tenant}


def drive_ordered(addr, timeout, results):
    """Default (ordered) mode: answers come back in submission order."""
    sock, reader = connect(addr, timeout)
    # Control verbs are acknowledged immediately, ahead of any answers.
    send(sock, {"op": "ping"})
    ack = read_json(reader)
    assert ack.get("op") == "ping" and ack.get("status") == "ok", ack
    requests = [
        request("o1", ["10", "100", "1000"], ["", "0", "1"], "ci-ordered"),
        request("o2", ["0", "00", "000"], ["1", "10"], "ci-ordered"),
        request("o3", ["11", "1111"], ["1", "111"], "ci-ordered"),
    ]
    for line in requests:
        send(sock, line)
    answers = [read_json(reader) for _ in requests]
    assert [a["id"] for a in answers] == ["o1", "o2", "o3"], answers
    for answer in answers:
        assert answer["status"] == "solved", answer
        assert "regex" in answer and "cost" in answer, answer
    sock.close()
    results["ordered"] = len(answers)


def drive_streaming(addr, timeout, results):
    """Stream mode: every id is answered, order not guaranteed."""
    sock, reader = connect(addr, timeout)
    send(sock, {"op": "mode", "value": "stream"})
    ack = read_json(reader)
    assert ack.get("op") == "mode" and ack.get("status") == "ok", ack
    ids = {"s1": ["0", "01"], "s2": ["111"], "s3": ["0101", "01"]}
    for rid, pos in ids.items():
        send(sock, request(rid, pos, [], "ci-stream"))
    seen = set()
    for _ in ids:
        answer = read_json(reader)
        assert answer["id"] in ids and answer["id"] not in seen, answer
        assert answer["status"] == "solved", answer
        seen.add(answer["id"])
    assert seen == set(ids), seen
    sock.close()
    results["streamed"] = len(seen)


def drive_sessions(addr, timeout, results):
    """Refinement session: hello, open, refine cold→warm→unchanged,
    close — then a refine against the closed session is rejected."""
    sock, reader = connect(addr, timeout)
    send(sock, {"op": "hello"})
    hello = read_json(reader)
    assert hello.get("op") == "hello" and hello.get("status") == "ok", hello
    assert hello.get("version"), hello
    for verb in ("hello", "refine", "session.open", "session.close"):
        assert verb in hello.get("verbs", []), hello
    for capability in ("sessions", "refine"):
        assert capability in hello.get("capabilities", []), hello

    send(sock, {"op": "session.open", "name": "ci-refine"})
    ack = read_json(reader)
    assert ack.get("op") == "session.open" and ack.get("status") == "ok", ack
    assert ack.get("session") == "ci-refine", ack

    def refine(rid, pos, neg):
        send(sock, {"id": rid, "verb": "refine", "session": "ci-refine", "pos": pos, "neg": neg})
        return read_json(reader)

    # A strengthening chain: each step only adds examples, so the session
    # answers the first cold, the second from warm retained state, and
    # the resubmission without re-running anything at all.
    first = refine("n1", ["0", "00"], ["1"])
    assert first["status"] == "solved" and first["source"] == "session", first
    assert first.get("reuse") == "cold" and first.get("reason") == "no_previous", first
    second = refine("n2", ["0", "00"], ["1", "10"])
    assert second["status"] == "solved" and second.get("reuse") == "warm", second
    third = refine("n3", ["0", "00"], ["1", "10"])
    assert third["status"] == "solved" and third.get("reuse") == "unchanged", third

    send(sock, {"op": "session.close", "name": "ci-refine"})
    ack = read_json(reader)
    assert ack.get("op") == "session.close" and ack.get("status") == "ok", ack
    ghost = refine("n4", ["0", "00"], ["1", "10"])
    assert ghost.get("status") == "rejected", ghost
    assert ghost.get("reason") == "unknown_session", ghost
    sock.close()
    results["refined"] = 3


def drive_flood(addr, timeout, results, tenant, count):
    """Over-limit tenant: one admission, explicit rejections after."""
    sock, reader = connect(addr, timeout)
    send(sock, {"op": "mode", "value": "stream"})
    assert read_json(reader).get("status") == "ok"
    for index in range(count):
        # Distinct specs so nothing coalesces or cache-serves.
        send(sock, request(f"f{index}", ["0" * (index + 1)], [], tenant))
    answered = rejected = 0
    for _ in range(count):
        answer = read_json(reader)
        if answer.get("status") == "rejected":
            assert answer.get("reason") == "rate_limited", answer
            rejected += 1
        else:
            assert answer.get("status") == "solved", answer
            answered += 1
    sock.close()
    assert answered == 1, f"flood bucket should admit exactly 1, got {answered}"
    assert rejected == count - 1, f"expected {count - 1} rejections, got {rejected}"
    results["flood_answered"] = answered
    results["flood_rejected"] = rejected


EXPECTED_FAMILIES = (
    "rei_requests_submitted_total",
    "rei_requests_completed_total",
    "rei_requests_solved_total",
    "rei_cache_hits_total",
    "rei_queue_depth",
    "rei_cache_entries",
    "rei_queue_wait_seconds",
    "rei_run_seconds",
    "rei_request_seconds",
    "rei_admission_admitted_total",
    "rei_admission_rate_limited_total",
)


def parse_prometheus(body):
    """Parses text-format samples into {(name, labels-tuple): value}."""
    samples = {}
    for line in body.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        metric, value = line.rsplit(" ", 1)
        if "{" in metric:
            name, raw = metric.split("{", 1)
            labels = []
            for pair in raw.rstrip("}").split(","):
                if not pair:
                    continue
                key, label_value = pair.split("=", 1)
                labels.append((key, label_value.strip('"')))
            labels = tuple(sorted(labels))
        else:
            name, labels = metric, ()
        samples[(name, labels)] = float(value)
    return samples


def scrape(addr, timeout):
    host, port = addr.rsplit(":", 1)
    sock = socket.create_connection((host, int(port)), timeout=timeout)
    sock.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
    raw = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        raw += chunk
    sock.close()
    head, _, body = raw.decode("utf-8").partition("\r\n\r\n")
    status = head.splitlines()[0]
    assert " 200 " in status, status
    assert "text/plain" in head and "version=0.0.4" in head, head
    return body


def check_scrape(metrics_addr, timeout, snapshot):
    """Scrapes the Prometheus endpoint and checks it against the JSON
    `metrics` verb snapshot taken over the request connection."""
    body = scrape(metrics_addr, timeout)
    samples = parse_prometheus(body)
    names = {name for name, _ in samples}
    for family in EXPECTED_FAMILIES:
        suffix = "_bucket" if family.endswith("_seconds") else ""
        assert family + suffix in names, f"missing family {family}: {sorted(names)}"

    # Histogram buckets are cumulative per (family, pool): values are
    # monotone non-decreasing in `le` order and the +Inf bucket equals
    # the family's _count.
    histograms = {}
    for (name, labels), value in samples.items():
        if not name.endswith("_bucket"):
            continue
        family = name[: -len("_bucket")]
        labels = dict(labels)
        le = labels.pop("le")
        key = (family, tuple(sorted(labels.items())))
        histograms.setdefault(key, []).append((float("inf") if le == "+Inf" else float(le), value))
    assert histograms, body
    for (family, labels), buckets in histograms.items():
        buckets.sort()
        values = [value for _, value in buckets]
        assert values == sorted(values), f"{family}{dict(labels)}: non-monotone {buckets}"
        assert buckets[-1][0] == float("inf"), f"{family}{dict(labels)}: no +Inf bucket"
        count = samples[(family + "_count", labels)]
        assert buckets[-1][1] == count, f"{family}{dict(labels)}: +Inf != _count"

    # The scrape agrees with the JSON metrics verb: per-pool counters sum
    # to at least the rollup the snapshot reported (the scrape is later,
    # so monotone counters may only have grown).
    requests = snapshot["rollup"]["requests"]
    for family, key in (
        ("rei_requests_submitted_total", "submitted"),
        ("rei_admission_rate_limited_total", "rate_limited"),
    ):
        total = sum(value for (name, _), value in samples.items() if name == family)
        assert total >= requests[key], f"{family} {total} < JSON {requests[key]}"
    completed = sum(
        value for (name, _), value in samples.items() if name == "rei_requests_completed_total"
    )
    e2e_count = sum(
        value for (name, _), value in samples.items() if name == "rei_request_seconds_count"
    )
    assert e2e_count > 0, "no end-to-end latency samples recorded"
    assert completed > 0, "no completions recorded"
    return len(names)


def main():
    parser = argparse.ArgumentParser(
        description="drive concurrent TCP clients against paresy serve --listen"
    )
    parser.add_argument("addr", help="HOST:PORT printed by the server's 'listening on' line")
    parser.add_argument(
        "--metrics-addr",
        default=None,
        help="HOST:PORT printed by the server's 'metrics on' line; enables the scrape checks",
    )
    parser.add_argument("--flood-tenant", default="flood")
    parser.add_argument("--flood-requests", type=int, default=8)
    parser.add_argument("--timeout", type=float, default=120.0, help="per-socket seconds")
    args = parser.parse_args()

    results = {}
    errors = []

    def guarded(fn, *fn_args):
        def run():
            try:
                fn(*fn_args)
            except BaseException as exc:  # asserts must fail the process
                errors.append(f"{fn.__name__}: {exc!r}")

        return threading.Thread(target=run, name=fn.__name__)

    threads = [
        guarded(drive_ordered, args.addr, args.timeout, results),
        guarded(drive_streaming, args.addr, args.timeout, results),
        guarded(drive_sessions, args.addr, args.timeout, results),
        guarded(
            drive_flood,
            args.addr,
            args.timeout,
            results,
            args.flood_tenant,
            args.flood_requests,
        ),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=args.timeout)
        assert not thread.is_alive(), f"{thread.name} hung"
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        sys.exit(1)

    # The server-side counters agree with what the clients observed.
    sock, reader = connect(args.addr, args.timeout)
    send(sock, {"op": "metrics"})
    snapshot = read_json(reader)
    assert snapshot.get("schema") == "rei-service/router-metrics-v1", snapshot
    counters = snapshot["rollup"]["requests"]
    assert counters["rate_limited"] >= results["flood_rejected"], counters
    admitted = (
        results["ordered"] + results["streamed"] + results["refined"] + results["flood_answered"]
    )
    assert counters["admitted"] >= admitted, counters
    # Admission rejections are split from queue-full ones: the flood was
    # turned away at the door, not by queue churn.
    assert "rejected_queue_full" in counters, counters

    # The Prometheus scrape serves the same truth in text format.
    families = 0
    if args.metrics_addr:
        families = check_scrape(args.metrics_addr, args.timeout, snapshot)

    # Graceful drain: the verb is acked, then the server closes the
    # connection once every pending answer has been delivered.
    send(sock, {"op": "shutdown"})
    ack = read_json(reader)
    assert ack.get("op") == "shutdown" and ack.get("status") == "ok", ack
    assert reader.readline() == "", "expected EOF after shutdown drain"
    sock.close()

    scraped = f", {families} scraped metric families" if families else ""
    print(
        f"net contract ok: {results['ordered']} ordered + "
        f"{results['streamed']} streamed + "
        f"{results['refined']} refined answers (proto {PROTO_VERSION}), "
        f"{results['flood_rejected']} rate-limited rejections, "
        f"clean shutdown{scraped}"
    )


if __name__ == "__main__":
    main()
