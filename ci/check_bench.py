#!/usr/bin/env python3
"""Validate BENCH_core.json against the repository's baseline contract.

This is the committed, versioned form of the perf-baseline checks CI
runs (and the one to run locally after regenerating the file):

    cargo run --release -p rei-bench --bin reproduce -- perf --out BENCH_core.json
    cargo run --release -p rei-bench --bin reproduce -- serve --workers 4 --out BENCH_core.json
    python3 ci/check_bench.py BENCH_core.json

It asserts the `rei-bench/perf-v4` schema: kernel speedup tripwires, the
per-backend level-execution counters, and the `service` section's
(`rei-bench/service-v2`) cold / cache-warm / disk-warm-restart passes
with their sharded per-pool breakdown.
"""

import json
import sys

BACKENDS = ("cpu-sequential", "cpu-thread-parallel", "gpu-sim-parallel")
LEVEL_COUNTERS = (
    "chunks_claimed",
    "chunks_stolen",
    "prefilter_rejects",
    "prefilter_reject_rate",
    "dedup_overflowed",
)


def check_backends(report):
    backends = {b["backend"]: b for b in report["backends"]}
    for name in BACKENDS:
        row = backends[name]
        assert row["solved"] == row["total"], f"{name} failed runs: {row}"
        # The level-execution counters must be present and sane on every
        # backend (perf-v3 contract, unchanged in v4).
        for key in LEVEL_COUNTERS:
            assert key in row, f"{name} missing {key}: {row}"
        assert row["chunks_claimed"] > 0, f"{name}: no chunks claimed: {row}"
        assert 0.0 <= row["prefilter_reject_rate"] <= 1.0, row
        assert row["prefilter_rejects"] <= row["candidates"], row
    # Only the work-stealing backend can steal.
    assert backends["cpu-sequential"]["chunks_stolen"] == 0
    assert backends["gpu-sim-parallel"]["chunks_stolen"] == 0
    seq = backends["cpu-sequential"]["wall_seconds"]
    mt = backends["cpu-thread-parallel"]["wall_seconds"]
    print(
        f"sequential {seq:.4f}s vs thread-parallel {mt:.4f}s "
        f"on {report['available_cores']} cores "
        f"({backends['cpu-thread-parallel']['chunks_stolen']} chunks stolen, "
        f"prefilter reject rate "
        f"{backends['cpu-thread-parallel']['prefilter_reject_rate']:.2f})"
    )


def check_kernels(report):
    # Regression tripwire for the mask/squaring kernels (the committed
    # baseline shows ~2.7x; 1.5x allows runner noise).
    kernels = report["kernels"]
    assert kernels["geomean_concat_speedup"] >= 1.5, kernels
    assert kernels["geomean_star_speedup"] >= 1.5, kernels


def check_service(report):
    service = report["service"]
    assert service["schema"] == "rei-bench/service-v2", service["schema"]
    # CI (and the documented regeneration recipe) runs `reproduce serve
    # --workers 4`; fewer workers here means the flag plumbing broke.
    assert service["workers"] >= 4, service
    # Cold pass: every duplicated submission reused the original's work.
    cold = service["cold"]
    assert cold["cache_hits"] + cold["coalesced"] == service["pool"], cold
    # Cache-warm replay: >=90% cache-served and strictly faster than cold.
    warm = service["warm"]
    assert warm["cache_hit_rate"] >= 0.9, warm
    assert warm["wall_seconds"] < cold["wall_seconds"], service
    # Disk-warm restart: a fresh router (fresh process, as far as the
    # caches can tell) answers the replay from the compacted files.
    restart = service["restart"]
    assert restart["cache_hit_rate"] >= 0.9, restart
    assert service["restart_disk_loaded"] >= restart["cache_hits"], service
    assert service["restart_disk_loaded"] > 0, service
    # Sharded pools: a breakdown exists and accounts for all the cold and
    # warm traffic.
    pools = service["pools"]
    assert len(pools) >= 1, service
    submitted = sum(p["submitted"] for p in pools)
    assert submitted == cold["submitted"] + warm["submitted"], pools
    for pool in pools:
        for key in ("pool", "submitted", "cache_hits", "coalesced", "completed", "workers"):
            assert key in pool, pool
    print(
        f"service: cold {cold['wall_seconds']:.4f}s vs "
        f"warm {warm['wall_seconds']:.4f}s "
        f"(hit rate {warm['cache_hit_rate']:.2f}); "
        f"restart hit rate {restart['cache_hit_rate']:.2f} from "
        f"{service['restart_disk_loaded']} disk records across "
        f"{len(pools)} pools"
    )


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_core.json"
    with open(path) as handle:
        report = json.load(handle)
    assert report["schema"] == "rei-bench/perf-v4", report["schema"]
    check_backends(report)
    check_kernels(report)
    check_service(report)
    print(f"{path}: baseline contract ok")


if __name__ == "__main__":
    main()
