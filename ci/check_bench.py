#!/usr/bin/env python3
"""Validate BENCH_core.json against the repository's baseline contract.

This is the committed, versioned form of the perf-baseline checks CI
runs (and the one to run locally after regenerating the file):

    cargo run --release -p rei-bench --bin reproduce -- perf --out BENCH_core.json
    cargo run --release -p rei-bench --bin reproduce -- serve --listen --workers 4 --out BENCH_core.json
    python3 ci/check_bench.py BENCH_core.json

It asserts the `rei-bench/perf-v5` schema: kernel speedup tripwires, the
SIMD kernel-tier section (`kernels.simd`: probe result recorded, scalar
parity proven, dispatched-vs-scalar speedups floored at 1.0), the
per-backend level-execution counters, the `service` section's
(`rei-bench/service-v6`) cold / cache-warm / disk-warm-restart / fused
passes with their sharded per-pool breakdown, client-side end-to-end
latency percentiles (`service.latency`), the crash-recovery timings
of `service.recovery` (serial vs parallel replay of a multi-segment
write-ahead log), the interactive-refinement pass of `service.refine`
(per-added-example refines through warm sessions strictly beating cold
re-solves of the same strengthened specs), and the TCP front-end passes
of `service.net`
(`rei-bench/service-net-v1`): concurrent connections, a cache-warm
replay over the wire, and the rate-limited flood tenant.
"""

import json
import sys

BACKENDS = ("cpu-sequential", "cpu-thread-parallel", "gpu-sim-parallel")
LEVEL_COUNTERS = (
    "chunks_claimed",
    "chunks_stolen",
    "prefilter_rejects",
    "prefilter_reject_rate",
    "dedup_overflowed",
)


def check_backends(report):
    backends = {b["backend"]: b for b in report["backends"]}
    for name in BACKENDS:
        row = backends[name]
        assert row["solved"] == row["total"], f"{name} failed runs: {row}"
        # The level-execution counters must be present and sane on every
        # backend (perf-v3 contract, unchanged in v4).
        for key in LEVEL_COUNTERS:
            assert key in row, f"{name} missing {key}: {row}"
        assert row["chunks_claimed"] > 0, f"{name}: no chunks claimed: {row}"
        assert 0.0 <= row["prefilter_reject_rate"] <= 1.0, row
        assert row["prefilter_rejects"] <= row["candidates"], row
    # Only the work-stealing backend can steal.
    assert backends["cpu-sequential"]["chunks_stolen"] == 0
    assert backends["gpu-sim-parallel"]["chunks_stolen"] == 0
    seq = backends["cpu-sequential"]["wall_seconds"]
    mt = backends["cpu-thread-parallel"]["wall_seconds"]
    print(
        f"sequential {seq:.4f}s vs thread-parallel {mt:.4f}s "
        f"on {report['available_cores']} cores "
        f"({backends['cpu-thread-parallel']['chunks_stolen']} chunks stolen, "
        f"prefilter reject rate "
        f"{backends['cpu-thread-parallel']['prefilter_reject_rate']:.2f})"
    )


def check_kernels(report):
    # Regression tripwire for the mask/squaring kernels (the committed
    # baseline shows ~2.7x; 1.5x allows runner noise).
    kernels = report["kernels"]
    assert kernels["geomean_concat_speedup"] >= 1.5, kernels
    assert kernels["geomean_star_speedup"] >= 1.5, kernels


def check_simd(report):
    # The SIMD kernel tier: the runtime probe result is recorded, every
    # dispatched kernel matched its pinned-scalar reference bit for bit,
    # and the dispatched entry points never lose to scalar. Disengaged
    # rows (scalar-tier hosts, or closures where funnel staging found
    # nothing profitable) are pinned to exactly 1.0 by the harness, so
    # the floor is a real never-slower tripwire; 0.95 allows runner
    # noise on the measured rows.
    simd = report["kernels"]["simd"]
    assert simd["tier"] in ("scalar", "avx2", "neon"), simd["tier"]
    assert simd["accelerated"] == (simd["tier"] != "scalar"), simd
    assert simd["scalar_parity"] is True, simd
    for key in (
        "geomean_concat_speedup",
        "geomean_star_speedup",
        "geomean_satisfy_speedup",
    ):
        assert simd[key] >= 0.95, f"{key} regressed below scalar: {simd[key]}"
    rows = simd["per_benchmark"]
    assert len(rows) >= 3, simd
    for row in rows:
        assert row["blocks"] >= 8, row
        if not simd["accelerated"]:
            assert row["satisfy_speedup"] == 1.0, row
        if not row["concat_lanes"]:
            assert row["concat_speedup"] == 1.0, row
            assert row["star_speedup"] == 1.0, row
    # An accelerated host must genuinely engage the lane concat kernel on
    # at least one wide closure.
    if simd["accelerated"]:
        assert any(row["concat_lanes"] for row in rows), rows
    print(
        f"kernels.simd: tier {simd['tier']}, parity ok, geomeans "
        f"concat {simd['geomean_concat_speedup']:.2f} / "
        f"star {simd['geomean_star_speedup']:.2f} / "
        f"satisfy {simd['geomean_satisfy_speedup']:.2f}"
    )


def check_recovery(service):
    # Crash-recovery timings (service-v5): a fabricated multi-segment
    # write-ahead log replayed with one thread versus one per core. Every
    # record must survive the replay (the keys are unique), the workload
    # must genuinely span segments, and on a multi-core runner the
    # parallel replay must beat the serial one — that is the point of
    # sharding recovery across threads.
    recovery = service["recovery"]
    assert recovery["records"] > 0, recovery
    assert recovery["loaded"] == recovery["records"], recovery
    assert recovery["segments"] >= 4, recovery
    assert recovery["serial_seconds"] > 0.0, recovery
    assert recovery["parallel_seconds"] > 0.0, recovery
    assert recovery["rounds"] >= 3, recovery
    assert 1 <= recovery["threads"] <= recovery["available_cores"], recovery
    if recovery["available_cores"] >= 2:
        assert recovery["threads"] >= 2, recovery
        assert recovery["parallel_seconds"] < recovery["serial_seconds"], (
            "parallel recovery lost to serial: "
            f"{recovery['parallel_seconds']:.6f}s vs "
            f"{recovery['serial_seconds']:.6f}s over "
            f"{recovery['segments']} segments"
        )
    print(
        f"service.recovery: {recovery['records']} records / "
        f"{recovery['segments']} segments; serial "
        f"{recovery['serial_seconds'] * 1e3:.2f}ms vs parallel "
        f"{recovery['parallel_seconds'] * 1e3:.2f}ms on "
        f"{recovery['threads']} threads ({recovery['speedup']:.2f}x)"
    )


def check_refine(service):
    # Interactive refinement (service-v6): strengthening chains replayed
    # one added example at a time through a warm session versus a cold
    # re-solve of each strengthened spec. The pass must have found real
    # chains, the session must have answered at least one step from warm
    # state (the whole point of `refine`), every chain must account for
    # its steps, and the warm path must beat the cold one outright.
    refine = service["refine"]
    assert refine["chains"] > 0, refine
    assert refine["steps"] > 0, refine
    assert 1 <= refine["warm"] <= refine["steps"], refine
    chains = refine["per_chain"]
    assert len(chains) == refine["chains"], refine
    assert sum(chain["steps"] for chain in chains) == refine["steps"], refine
    for chain in chains:
        assert chain["base_examples"] > 0, chain
        assert chain["steps"] > 0, chain
        assert chain["refine_seconds"] > 0.0, chain
        assert chain["cold_seconds"] > 0.0, chain
    assert refine["refine_seconds_total"] < refine["cold_seconds_total"], (
        "refinement lost to cold re-solves: "
        f"{refine['refine_seconds_total']:.6f}s vs "
        f"{refine['cold_seconds_total']:.6f}s over {refine['steps']} steps"
    )
    assert refine["speedup"] > 1.0, refine
    print(
        f"service.refine: {refine['chains']} chains / {refine['steps']} "
        f"steps ({refine['warm']} warm); per-example refine "
        f"{refine['refine_seconds_total'] * 1e3:.2f}ms vs cold re-solve "
        f"{refine['cold_seconds_total'] * 1e3:.2f}ms "
        f"({refine['speedup']:.2f}x)"
    )


def check_service(report):
    service = report["service"]
    assert service["schema"] == "rei-bench/service-v6", service["schema"]
    # CI (and the documented regeneration recipe) runs `reproduce serve
    # --workers 4`; fewer workers here means the flag plumbing broke.
    assert service["workers"] >= 4, service
    # Cold pass: every duplicated submission reused the original's work.
    cold = service["cold"]
    assert cold["cache_hits"] + cold["coalesced"] == service["pool"], cold
    # Cache-warm replay: >=90% cache-served and strictly faster than cold.
    warm = service["warm"]
    assert warm["cache_hit_rate"] >= 0.9, warm
    assert warm["wall_seconds"] < cold["wall_seconds"], service
    # Disk-warm restart: a fresh router (fresh process, as far as the
    # caches can tell) answers the replay from the compacted files.
    restart = service["restart"]
    assert restart["cache_hit_rate"] >= 0.9, restart
    assert service["restart_disk_loaded"] >= restart["cache_hits"], service
    assert service["restart_disk_loaded"] > 0, service
    # Fused pass: the single-worker burst drains genuinely fused batches
    # — strictly more requests than sweeps proves cross-request fusion
    # shared at least one level sweep.
    fused = service["fused"]
    assert fused["fused_batches"] > 0, fused
    assert fused["fused_requests"] > fused["fused_batches"], fused
    assert fused["fuse_limit"] >= 2, fused
    assert fused["solved"] + fused["failed"] == fused["submitted"], fused
    # Latency percentiles (service-v4): exact client-side end-to-end
    # p50/p95/p99 per pass, ordered within a pass, with the cache-served
    # warm tail strictly beating the cold tail.
    latency = service["latency"]
    for pass_name in ("cold", "warm"):
        quantiles = latency[pass_name]
        assert quantiles["count"] == service[pass_name]["submitted"], latency
        assert 0.0 <= quantiles["p50_ms"] <= quantiles["p95_ms"] <= quantiles["p99_ms"], quantiles
    assert latency["warm"]["p99_ms"] < latency["cold"]["p99_ms"], latency
    # Sharded pools: a breakdown exists and accounts for all the cold and
    # warm traffic.
    pools = service["pools"]
    assert len(pools) >= 1, service
    submitted = sum(p["submitted"] for p in pools)
    assert submitted == cold["submitted"] + warm["submitted"], pools
    for pool in pools:
        for key in ("pool", "submitted", "cache_hits", "coalesced", "completed", "workers"):
            assert key in pool, pool
    check_recovery(service)
    check_refine(service)
    print(
        f"service: cold {cold['wall_seconds']:.4f}s vs "
        f"warm {warm['wall_seconds']:.4f}s "
        f"(hit rate {warm['cache_hit_rate']:.2f}); "
        f"restart hit rate {restart['cache_hit_rate']:.2f} from "
        f"{service['restart_disk_loaded']} disk records across "
        f"{len(pools)} pools; fused {fused['fused_requests']} requests "
        f"in {fused['fused_batches']} sweeps; latency cold p99 "
        f"{latency['cold']['p99_ms']:.2f}ms vs warm p99 "
        f"{latency['warm']['p99_ms']:.2f}ms"
    )


def check_net(report):
    net = report["service"]["net"]
    assert net["schema"] == "rei-bench/service-net-v1", net["schema"]
    # The harness drives several genuinely concurrent TCP connections.
    assert net["connections"] >= 2, net
    for pass_name in ("cold", "warm"):
        tcp_pass = net[pass_name]
        assert len(tcp_pass["connections"]) == net["connections"], tcp_pass
        assert tcp_pass["submitted"] == net["pool"], tcp_pass
        # Well-behaved tenants are never rate-limited; every request is
        # answered over the wire.
        for connection in tcp_pass["connections"]:
            assert connection["rejected_rate_limited"] == 0, connection
            assert connection["answered"] == connection["submitted"], connection
    # The warm replay is served from the result cache end to end.
    assert net["warm"]["cache_hit_rate"] >= 0.9, net["warm"]
    # The flood tenant exhausts its burst and is rejected explicitly.
    flood = net["flood"]
    assert flood["rejected_rate_limited"] > 0, flood
    assert flood["answered"] + flood["rejected_rate_limited"] == flood["submitted"], flood
    assert net["rate_limited"] == flood["rejected_rate_limited"], net
    assert net["admitted"] >= 2 * net["pool"] + flood["answered"], net
    print(
        f"service.net: {net['connections']} connections over "
        f"{net['net_threads']} handler threads; warm TCP hit rate "
        f"{net['warm']['cache_hit_rate']:.2f}; flood {flood['answered']} "
        f"answered / {flood['rejected_rate_limited']} rate-limited"
    )


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_core.json"
    with open(path) as handle:
        report = json.load(handle)
    assert report["schema"] == "rei-bench/perf-v5", report["schema"]
    check_backends(report)
    check_kernels(report)
    check_simd(report)
    check_service(report)
    check_net(report)
    print(f"{path}: baseline contract ok")


if __name__ == "__main__":
    main()
