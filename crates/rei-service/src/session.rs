//! Named refinement sessions of one pool.
//!
//! A session is the service-side home of a [`RefineState`]: the retained
//! search state of a client's previous run, which
//! [`SynthSession::refine_with_state`](rei_core::SynthSession::refine_with_state)
//! reuses when the client strengthens its specification. The table is a
//! bounded LRU — opening a session beyond capacity evicts the least
//! recently *used* one — with lazy idle expiry: every table access first
//! drops sessions that have not been touched for the configured idle
//! duration, so an abandoned client cannot pin retained caches forever.
//!
//! Entries are handed to workers as `Arc`s: eviction or expiry while a
//! refine is running merely unlinks the entry from the table (the running
//! job keeps its clone alive); the *next* refine on that name reports
//! [`ServiceError::UnknownSession`](crate::ServiceError::UnknownSession).

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rei_core::RefineState;

/// One live session: its refine state behind a mutex (successive refines
/// of one session may land on different workers) and the tenant key it
/// was opened under, which the shard router also routes its refines by.
pub(crate) struct SessionEntry {
    pub name: String,
    pub tenant: Option<String>,
    pub state: Mutex<RefineState>,
}

/// What an [`open`](SessionTable::open) or lookup did to the table, so the
/// caller can bump the pool metrics without the table knowing about them.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct TableEffects {
    /// Sessions dropped because their idle time exceeded the limit.
    pub expired: u64,
    /// Sessions evicted to make room for a newly opened one.
    pub evicted: u64,
}

struct Slot {
    entry: Arc<SessionEntry>,
    last_used: Instant,
}

/// The bounded LRU session table of one pool (see the module docs).
pub(crate) struct SessionTable {
    capacity: usize,
    idle: Duration,
    /// LRU order: index 0 is the least recently used slot.
    slots: Mutex<Vec<Slot>>,
    next_id: Mutex<u64>,
}

impl SessionTable {
    pub fn new(capacity: usize, idle: Duration) -> Self {
        SessionTable {
            capacity: capacity.max(1),
            idle,
            slots: Mutex::new(Vec::new()),
            next_id: Mutex::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Slot>> {
        self.slots.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn purge_expired(&self, slots: &mut Vec<Slot>, effects: &mut TableEffects) {
        let now = Instant::now();
        let before = slots.len();
        slots.retain(|slot| now.saturating_duration_since(slot.last_used) < self.idle);
        effects.expired += (before - slots.len()) as u64;
    }

    /// Opens a session under `name` (a fresh generated `s-N` name when
    /// `None`). Re-opening a live name resets its refine state — an open
    /// always starts from a blank session.
    pub fn open(
        &self,
        name: Option<&str>,
        tenant: Option<&str>,
    ) -> (Arc<SessionEntry>, TableEffects) {
        let name = match name {
            Some(name) => name.to_string(),
            None => {
                let mut next = self.next_id.lock().unwrap_or_else(|e| e.into_inner());
                let id = *next;
                *next += 1;
                format!("s-{id}")
            }
        };
        let entry = Arc::new(SessionEntry {
            name: name.clone(),
            tenant: tenant.map(str::to_string),
            state: Mutex::new(RefineState::new()),
        });
        let mut effects = TableEffects::default();
        let mut slots = self.lock();
        self.purge_expired(&mut slots, &mut effects);
        slots.retain(|slot| slot.entry.name != name);
        while slots.len() >= self.capacity {
            slots.remove(0);
            effects.evicted += 1;
        }
        slots.push(Slot {
            entry: Arc::clone(&entry),
            last_used: Instant::now(),
        });
        (entry, effects)
    }

    /// Looks `name` up, marking it most recently used.
    pub fn get(&self, name: &str) -> (Option<Arc<SessionEntry>>, TableEffects) {
        let mut effects = TableEffects::default();
        let mut slots = self.lock();
        self.purge_expired(&mut slots, &mut effects);
        let found = slots
            .iter()
            .position(|slot| slot.entry.name == name)
            .map(|index| {
                let mut slot = slots.remove(index);
                slot.last_used = Instant::now();
                let entry = Arc::clone(&slot.entry);
                slots.push(slot);
                entry
            });
        (found, effects)
    }

    /// Closes `name`; `false` when no such session is live.
    pub fn close(&self, name: &str) -> (bool, TableEffects) {
        let mut effects = TableEffects::default();
        let mut slots = self.lock();
        self.purge_expired(&mut slots, &mut effects);
        let before = slots.len();
        slots.retain(|slot| slot.entry.name != name);
        (slots.len() < before, effects)
    }

    /// Number of live sessions (after purging expired ones).
    pub fn live(&self) -> usize {
        let mut effects = TableEffects::default();
        let mut slots = self.lock();
        self.purge_expired(&mut slots, &mut effects);
        slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(capacity: usize) -> SessionTable {
        SessionTable::new(capacity, Duration::from_secs(600))
    }

    #[test]
    fn generated_names_are_unique_and_client_names_stick() {
        let table = table(8);
        let (a, _) = table.open(None, None);
        let (b, _) = table.open(None, Some("acme"));
        assert_ne!(a.name, b.name);
        assert_eq!(b.tenant.as_deref(), Some("acme"));
        let (named, _) = table.open(Some("mine"), None);
        assert_eq!(named.name, "mine");
        assert!(table.get("mine").0.is_some());
        assert!(table.get("missing").0.is_none());
        assert_eq!(table.live(), 3);
    }

    #[test]
    fn reopening_a_name_resets_to_a_fresh_entry() {
        let table = table(8);
        let (first, _) = table.open(Some("s"), None);
        let (second, effects) = table.open(Some("s"), None);
        assert_eq!(effects.evicted, 0, "replacement is not an eviction");
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(table.live(), 1);
    }

    #[test]
    fn lru_eviction_drops_the_least_recently_used() {
        let table = table(2);
        table.open(Some("a"), None);
        table.open(Some("b"), None);
        // Touch "a" so "b" becomes the LRU victim.
        assert!(table.get("a").0.is_some());
        let (_, effects) = table.open(Some("c"), None);
        assert_eq!(effects.evicted, 1);
        assert!(table.get("b").0.is_none(), "b was evicted");
        assert!(table.get("a").0.is_some());
        assert!(table.get("c").0.is_some());
    }

    #[test]
    fn idle_sessions_expire_lazily() {
        let table = SessionTable::new(4, Duration::ZERO);
        table.open(Some("gone"), None);
        let (found, effects) = table.get("gone");
        assert!(found.is_none());
        assert_eq!(effects.expired, 1);
        assert_eq!(table.live(), 0);
    }

    #[test]
    fn close_reports_whether_the_session_existed() {
        let table = table(4);
        table.open(Some("s"), None);
        assert!(table.close("s").0);
        assert!(!table.close("s").0);
    }
}
