//! The bounded, priority-ordered job queue workers drain.
//!
//! A mutex-and-condvar monitor around a binary heap: producers block while
//! the queue is at capacity (backpressure), consumers block while it is
//! empty. Jobs pop highest-priority first; within a priority, submission
//! order (FIFO). [`close`](JobQueue::close) starts a graceful drain — no
//! new pushes are accepted, pops keep succeeding until the queue is empty
//! and then return `None`, which is the workers' signal to exit.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// The scheduling key of a queued item: priority first (higher pops
/// earlier), then submission sequence (earlier pops earlier).
#[derive(Debug)]
struct Entry<T> {
    priority: i32,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: higher priority wins, then *lower*
        // sequence number (earlier submission).
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct QueueState<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    closed: bool,
}

/// A bounded MPMC priority queue (see the module docs).
#[derive(Debug)]
pub(crate) struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be positive");
        JobQueue {
            state: Mutex::new(QueueState {
                heap: BinaryHeap::new(),
                next_seq: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues `item`, blocking while the queue is at capacity. Returns
    /// the item back when the queue has been closed.
    pub fn push(&self, priority: i32, item: T) -> Result<(), T> {
        let mut state = self.lock();
        while !state.closed && state.heap.len() >= self.capacity {
            state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        self.push_locked(state, priority, item)
    }

    /// Enqueues `item` if there is room right now. `Err(item)` when the
    /// queue is full or closed (distinguish with [`is_closed`]).
    ///
    /// [`is_closed`]: JobQueue::is_closed
    pub fn try_push(&self, priority: i32, item: T) -> Result<(), T> {
        let state = self.lock();
        if !state.closed && state.heap.len() >= self.capacity {
            return Err(item);
        }
        self.push_locked(state, priority, item)
    }

    fn push_locked(
        &self,
        mut state: std::sync::MutexGuard<'_, QueueState<T>>,
        priority: i32,
        item: T,
    ) -> Result<(), T> {
        if state.closed {
            return Err(item);
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(Entry {
            priority,
            seq,
            item,
        });
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the highest-priority item, blocking while the queue is
    /// empty. `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(entry) = state.heap.pop() {
                drop(state);
                self.not_full.notify_one();
                return Some(entry.item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues the highest-priority item if one is queued right now,
    /// without ever blocking. `None` when the queue is momentarily empty
    /// (closed or not) — the batch-fusion drain uses this to pick up
    /// whatever accumulated behind the job it is already holding.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.lock();
        let entry = state.heap.pop()?;
        drop(state);
        self.not_full.notify_one();
        Some(entry.item)
    }

    /// Number of currently queued (not yet dequeued) items.
    pub fn len(&self) -> usize {
        self.lock().heap.len()
    }

    /// Closes the queue: subsequent pushes fail, pops drain the remaining
    /// items and then return `None`.
    pub fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`close`](JobQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn pops_by_priority_then_submission_order() {
        let queue = JobQueue::new(16);
        queue.push(0, "low-a").unwrap();
        queue.push(5, "high-a").unwrap();
        queue.push(0, "low-b").unwrap();
        queue.push(5, "high-b").unwrap();
        assert_eq!(queue.len(), 4);
        let order: Vec<_> = (0..4).map(|_| queue.pop().unwrap()).collect();
        assert_eq!(order, ["high-a", "high-b", "low-a", "low-b"]);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let queue = JobQueue::new(4);
        queue.push(0, 1).unwrap();
        queue.push(0, 2).unwrap();
        queue.close();
        assert!(queue.is_closed());
        assert_eq!(queue.push(0, 3), Err(3));
        assert_eq!(queue.try_push(0, 4), Err(4));
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), None);
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn try_pop_never_blocks() {
        let queue = JobQueue::new(4);
        assert_eq!(queue.try_pop(), None::<&str>);
        queue.push(0, "low").unwrap();
        queue.push(5, "high").unwrap();
        assert_eq!(queue.try_pop(), Some("high"));
        assert_eq!(queue.try_pop(), Some("low"));
        assert_eq!(queue.try_pop(), None);
        queue.close();
        assert_eq!(queue.try_pop(), None);
    }

    #[test]
    fn try_push_reports_a_full_queue() {
        let queue = JobQueue::new(1);
        assert_eq!(queue.capacity(), 1);
        queue.try_push(0, "a").unwrap();
        assert_eq!(queue.try_push(0, "b"), Err("b"));
        assert_eq!(queue.pop(), Some("a"));
        queue.try_push(0, "c").unwrap();
    }

    #[test]
    fn push_blocks_until_room_and_pop_blocks_until_items() {
        let queue = Arc::new(JobQueue::new(1));
        queue.push(0, 0u32).unwrap();
        let producer = std::thread::spawn({
            let queue = Arc::clone(&queue);
            move || queue.push(0, 1u32)
        });
        // Give the producer a moment to block on the full queue.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.len(), 1);
        assert_eq!(queue.pop(), Some(0));
        producer.join().unwrap().unwrap();
        assert_eq!(queue.pop(), Some(1));

        let consumer = std::thread::spawn({
            let queue = Arc::clone(&queue);
            move || queue.pop()
        });
        std::thread::sleep(Duration::from_millis(20));
        queue.push(3, 9u32).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(9));
    }

    #[test]
    fn close_wakes_blocked_producers() {
        let queue = Arc::new(JobQueue::new(1));
        queue.push(0, 0u32).unwrap();
        let producer = std::thread::spawn({
            let queue = Arc::clone(&queue);
            move || queue.push(0, 1u32)
        });
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert_eq!(producer.join().unwrap(), Err(1));
    }
}
