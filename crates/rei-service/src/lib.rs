//! A multi-tenant synthesis service on top of [`rei_core`]'s session API:
//! job scheduling, result caching and request coalescing, built entirely
//! from threads, mutexes and condvars (no async runtime).
//!
//! # Architecture
//!
//! ```text
//!                       submit / try_submit
//!  clients ──────────────────────┬──────────────────────────────────┐
//!                                ▼                                  │
//!                       ┌─────────────────┐   hit                   │
//!                       │  result cache   ├────────► JobHandle (done)│
//!                       │  + coalescing   │   in-flight             │
//!                       └───────┬─────────┘────────► JobHandle (shared)
//!                          miss │ reserve
//!                               ▼
//!                   ┌───────────────────────┐     deadline reached
//!                   │  bounded job queue    │   ┌──────────────────┐
//!                   │  priority ▸ FIFO      │   │ deadline watchdog│
//!                   └───┬───────┬───────┬───┘   └────────┬─────────┘
//!                       ▼       ▼       ▼                │ CancelToken
//!                   worker 0 worker 1 … worker N ◄───────┘
//!                   (one warm SynthSession — and one
//!                    gpu_sim::Device on the device-parallel
//!                    backend — per worker)
//! ```
//!
//! **Scheduling.** Jobs queue with a per-request priority (higher first,
//! FIFO within a priority) and an optional deadline. A job whose deadline
//! passes while it is still queued fails fast with
//! [`SynthesisError::Cancelled`](rei_core::SynthesisError::Cancelled)
//! instead of occupying a worker; a job already running when its deadline
//! fires is cancelled *cooperatively* — the watchdog trips the worker
//! session's [`CancelToken`](rei_core::CancelToken), and the search stops
//! at its next poll point, exactly as a caller-side cancellation would.
//!
//! **Backpressure.** The queue is bounded. [`SynthService::submit`]
//! blocks while the queue is at capacity — producers slow down to the
//! pool's pace — and [`SynthService::try_submit`] returns
//! [`ServiceError::QueueFull`] for callers that prefer load shedding.
//! Cache hits and coalesced requests consume no queue slot and never
//! block.
//!
//! **Caching & coalescing.** Results are keyed by the canonical request
//! identity — [`Spec::canonicalize`](rei_lang::Spec::canonicalize) plus
//! the pool's [`SynthConfig`](rei_core::SynthConfig) wire string — so
//! requests that differ only in example order or duplication share one
//! entry. A request identical to an *in-flight* job attaches to that
//! job's completion instead of enqueuing duplicate work: N concurrent
//! identical requests trigger exactly one synthesis and N responses.
//! Successful results are cached (FIFO-evicted beyond capacity);
//! failures are not — a timeout belongs to a request's budget, not to
//! the specification.
//!
//! **Persistence.** A pool configured with
//! [`ServiceConfig::with_cache_dir`] spills every completed result into
//! a crash-safe segmented write-ahead log — one record of `(canonical
//! spec encoding, config wire string) → (regex, cost)` per JSONL line,
//! appended to the newest segment, rolled and fsync-sealed at a size
//! threshold, with a tmp+rename `MANIFEST.json` naming the live files.
//! On start, recovery replays the checkpoint plus all segments on
//! multiple threads (last record wins; corrupt or torn records are
//! skipped with a warning, records written under a different
//! configuration are misses) and warms the in-memory cache. A janitor
//! thread folds sealed history into checkpoints *while serving* and
//! enforces an optional least-recently-hit disk byte cap
//! ([`WalOptions`]); graceful shutdown runs one final fold. A kill-9
//! costs at most the records after the last completed append — the
//! spilled identity is the same canonical form the in-memory cache
//! compares, so a *restarted* service answers repeats from disk without
//! re-running a synthesis. See DESIGN.md "Durability".
//!
//! **Sharding.** The [`ShardRouter`] puts N pools — each a full
//! `SynthService` with its own workers, queue, cache and cache file —
//! behind one submission front-end and routes each request by its tenant
//! key ([`SynthRequest::with_tenant`]), falling back to the
//! specification's stable fingerprint. The key picks a pool through a
//! consistent-hash [`HashRing`], so pools can
//! [join](ShardRouter::add_pool) and [leave](ShardRouter::remove_pool)
//! at runtime while only ~1/N of keys remap. Per-pool metrics roll up
//! into one cross-pool [`RouterSnapshot`].
//!
//! **Admission.** A [`FairShare`] stage in front of the router enforces
//! per-tenant token-bucket rate limits and in-flight caps
//! ([`TenantPolicy`]), and drains backlogged submissions through
//! weighted deficit-round-robin lanes — one hot tenant cannot starve the
//! rest, and over-limit requests are refused immediately
//! ([`AdmissionError::RateLimited`]) instead of hanging.
//!
//! **Shutdown.** [`SynthService::close`] stops intake;
//! [`SynthService::shutdown`] (and `Drop`) additionally drains — every
//! already-accepted job completes and every waiter is answered — then
//! joins the workers, compacts the persistent cache and returns the
//! final [`MetricsSnapshot`].
//!
//! # Example
//!
//! ```
//! use rei_service::{ServiceConfig, SynthRequest, SynthService};
//! use rei_lang::Spec;
//!
//! let service = SynthService::start(ServiceConfig::new(2)).unwrap();
//! let spec = Spec::from_strs(["10", "101"], ["", "0"]).unwrap();
//! // Three identical tenants: one synthesis, three answers.
//! let handles: Vec<_> = (0..3)
//!     .map(|_| service.submit(SynthRequest::new(spec.clone())).unwrap())
//!     .collect();
//! for handle in &handles {
//!     let response = handle.wait();
//!     assert!(spec.is_satisfied_by(&response.outcome.unwrap().regex));
//! }
//! let metrics = service.shutdown();
//! assert_eq!(metrics.submitted, 3);
//! assert_eq!(metrics.cache_hits + metrics.coalesced, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod cache;
pub mod failpoint;
pub mod json;
mod metrics;
mod queue;
mod request;
mod ring;
mod router;
mod service;
mod session;

pub use admission::{
    AdmissionConfig, AdmissionCounters, AdmissionError, FairShare, InflightGuard, TenantCounters,
    TenantPolicy,
};
pub use cache::{replay, CacheKey, RecoveryReport, WalOptions, WalStore};
pub use metrics::MetricsSnapshot;
pub use request::{JobHandle, ResponseSource, SynthRequest, SynthResponse};
pub use ring::{HashRing, VNODES};
pub use router::{PoolConfig, RouterConfig, RouterSnapshot, ShardRouter};
pub use service::{
    ServiceConfig, ServiceError, SynthService, DEFAULT_FUSE_LIMIT, DEFAULT_SESSION_CAPACITY,
    DEFAULT_SESSION_IDLE,
};
