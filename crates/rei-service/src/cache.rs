//! The result cache with in-flight request coalescing.
//!
//! Keyed by the canonical identity of a request: the specification's
//! canonical encoding ([`Spec::canonicalize`]) plus the service
//! configuration's wire string — two requests with the same key are
//! guaranteed to produce interchangeable results (same minimal cost under
//! the same cost function, backend and budgets). The 64-bit
//! [`Spec::fingerprint`] rides along for logs and metrics, but lookups
//! compare the full canonical form, so hash collisions can never serve a
//! wrong result.
//!
//! Each slot is either `Done` (a completed, successful synthesis — served
//! to later requests without a new run) or `InFlight` (a queued or running
//! job — later identical requests attach to its [`JobState`] instead of
//! enqueuing duplicate work: N concurrent identical requests trigger one
//! synthesis and N responses). Failed runs are *not* cached: a timeout or
//! deadline expiry is a property of that request's budget, not of the
//! specification.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use rei_core::{SynthConfig, SynthesisResult};
use rei_lang::Spec;

use crate::request::JobState;

/// The canonical identity of a request (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    canonical: String,
    fingerprint: u64,
}

impl CacheKey {
    /// Builds the key for `spec` under a service configuration.
    pub fn new(spec: &Spec, config: &SynthConfig) -> Self {
        CacheKey {
            canonical: format!("{}|{}", spec.canonicalize(), config),
            fingerprint: spec.fingerprint(),
        }
    }

    /// The specification's stable 64-bit fingerprint (for logs/metrics).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// What the cache knows about a key.
#[derive(Debug)]
pub(crate) enum Slot {
    /// A job for this key is queued or running; identical requests attach
    /// to its completion state.
    InFlight(Arc<JobState>),
    /// A successful synthesis completed; the result is served directly.
    Done(SynthesisResult),
}

/// The outcome of a cache lookup performed at submission time.
#[derive(Debug)]
pub(crate) enum Lookup {
    /// No entry: the caller owns the miss and must enqueue a fresh job
    /// (an `InFlight` slot with the returned state was installed).
    Miss,
    /// An identical job is in flight; share its state.
    Coalesce(Arc<JobState>),
    /// A completed result was found.
    Hit(SynthesisResult),
}

#[derive(Debug, Default)]
struct CacheState {
    map: HashMap<CacheKey, Slot>,
    /// Completion order of `Done` keys, for FIFO eviction.
    done_order: VecDeque<CacheKey>,
}

/// The concurrent result cache (see the module docs).
#[derive(Debug)]
pub(crate) struct ResultCache {
    state: Mutex<CacheState>,
    capacity: usize,
}

impl ResultCache {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be positive");
        ResultCache {
            state: Mutex::new(CacheState::default()),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Submission-time lookup. On a miss, atomically installs an
    /// `InFlight` slot with `state` so concurrent identical submissions
    /// coalesce onto it.
    pub fn lookup_or_reserve(&self, key: &CacheKey, state: &Arc<JobState>) -> Lookup {
        let mut cache = self.lock();
        match cache.map.get(key) {
            Some(Slot::Done(result)) => Lookup::Hit(result.clone()),
            Some(Slot::InFlight(in_flight)) => Lookup::Coalesce(Arc::clone(in_flight)),
            None => {
                cache
                    .map
                    .insert(key.clone(), Slot::InFlight(Arc::clone(state)));
                Lookup::Miss
            }
        }
    }

    /// Records a successful synthesis for `key`, replacing its `InFlight`
    /// slot and evicting the oldest completed entry beyond capacity.
    pub fn complete(&self, key: &CacheKey, result: &SynthesisResult) {
        let mut cache = self.lock();
        cache.map.insert(key.clone(), Slot::Done(result.clone()));
        cache.done_order.push_back(key.clone());
        while cache.done_order.len() > self.capacity {
            let oldest = cache.done_order.pop_front().expect("len checked");
            // Only evict if the slot still belongs to that completion: a
            // key can re-enter in-flight after an eviction of its own.
            if matches!(cache.map.get(&oldest), Some(Slot::Done(_))) {
                cache.map.remove(&oldest);
            }
        }
    }

    /// Drops the reservation of a failed job so later identical requests
    /// run fresh. Only removes the slot if it is still the in-flight
    /// reservation of `state` (a later fresh job may have re-reserved).
    pub fn forget(&self, key: &CacheKey, state: &Arc<JobState>) {
        let mut cache = self.lock();
        if let Some(Slot::InFlight(in_flight)) = cache.map.get(key) {
            if Arc::ptr_eq(in_flight, state) {
                cache.map.remove(key);
            }
        }
    }

    /// Number of completed results currently cached. `done_order` keys
    /// are 1:1 with `Done` slots (completion pushes both, eviction pops
    /// both, `forget` touches neither), so this is O(1).
    pub fn entries(&self) -> usize {
        let cache = self.lock();
        debug_assert_eq!(
            cache.done_order.len(),
            cache
                .map
                .values()
                .filter(|slot| matches!(slot, Slot::Done(_)))
                .count()
        );
        cache.done_order.len()
    }

    /// Maximum number of completed results kept.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rei_syntax::{CostFn, Regex};

    fn key(positive: &str) -> CacheKey {
        let spec = Spec::from_strs([positive], []).unwrap();
        CacheKey::new(&spec, &SynthConfig::default())
    }

    fn result(cost: u64) -> SynthesisResult {
        SynthesisResult {
            regex: Regex::Epsilon,
            cost,
            stats: Default::default(),
        }
    }

    #[test]
    fn key_depends_on_spec_and_config() {
        let spec = Spec::from_strs(["10", "1"], ["0"]).unwrap();
        let reordered = Spec::from_strs(["1", "10"], ["0"]).unwrap();
        let config = SynthConfig::default();
        assert_eq!(
            CacheKey::new(&spec, &config),
            CacheKey::new(&reordered, &config)
        );
        assert_eq!(
            CacheKey::new(&spec, &config).fingerprint(),
            spec.fingerprint()
        );
        let other_config = SynthConfig::new(CostFn::new(1, 2, 3, 4, 5));
        assert_ne!(
            CacheKey::new(&spec, &config),
            CacheKey::new(&spec, &other_config)
        );
        let other_spec = Spec::from_strs(["10"], ["0"]).unwrap();
        assert_ne!(
            CacheKey::new(&spec, &config),
            CacheKey::new(&other_spec, &config)
        );
    }

    #[test]
    fn miss_reserves_then_coalesces_then_hits() {
        let cache = ResultCache::new(8);
        let state = JobState::new(None);
        let k = key("0");
        assert!(matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss));
        // A second identical submission coalesces onto the first state.
        let other = JobState::new(None);
        match cache.lookup_or_reserve(&k, &other) {
            Lookup::Coalesce(shared) => assert!(Arc::ptr_eq(&shared, &state)),
            other => panic!("expected coalesce, got {other:?}"),
        }
        cache.complete(&k, &result(3));
        match cache.lookup_or_reserve(&k, &other) {
            Lookup::Hit(hit) => assert_eq!(hit.cost, 3),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn failures_are_forgotten_not_cached() {
        let cache = ResultCache::new(8);
        let state = JobState::new(None);
        let k = key("0");
        assert!(matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss));
        cache.forget(&k, &state);
        // The next identical request misses again (fresh run).
        let retry = JobState::new(None);
        assert!(matches!(cache.lookup_or_reserve(&k, &retry), Lookup::Miss));
        // A stale forget (old state) must not drop the new reservation.
        cache.forget(&k, &state);
        let third = JobState::new(None);
        assert!(matches!(
            cache.lookup_or_reserve(&k, &third),
            Lookup::Coalesce(_)
        ));
    }

    #[test]
    fn eviction_is_fifo_over_completed_entries() {
        let cache = ResultCache::new(2);
        assert_eq!(cache.capacity(), 2);
        for (i, positive) in ["0", "1", "00"].iter().enumerate() {
            let k = key(positive);
            let state = JobState::new(None);
            assert!(matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss));
            cache.complete(&k, &result(i as u64));
        }
        assert_eq!(cache.entries(), 2);
        // The first completion was evicted, the later two survive.
        let state = JobState::new(None);
        assert!(matches!(
            cache.lookup_or_reserve(&key("0"), &state),
            Lookup::Miss
        ));
        assert!(matches!(
            cache.lookup_or_reserve(&key("1"), &JobState::new(None)),
            Lookup::Hit(_)
        ));
        assert!(matches!(
            cache.lookup_or_reserve(&key("00"), &JobState::new(None)),
            Lookup::Hit(_)
        ));
    }
}
