//! The result cache: in-flight request coalescing plus optional
//! persistence to disk.
//!
//! Keyed by the canonical identity of a request: the specification's
//! canonical encoding ([`Spec::canonicalize`]) plus the service
//! configuration's wire string — two requests with the same key are
//! guaranteed to produce interchangeable results (same minimal cost under
//! the same cost function, backend and budgets). The 64-bit
//! [`Spec::fingerprint`] rides along for logs and metrics, but lookups
//! compare the full canonical form, so hash collisions can never serve a
//! wrong result.
//!
//! Each slot is either `Done` (a completed, successful synthesis — served
//! to later requests without a new run) or `InFlight` (a queued or running
//! job — later identical requests attach to its [`JobState`] instead of
//! enqueuing duplicate work: N concurrent identical requests trigger one
//! synthesis and N responses). Failed runs are *not* cached: a timeout or
//! deadline expiry is a property of that request's budget, not of the
//! specification.
//!
//! # Persistence
//!
//! A cache built with [`ResultCache::persistent`] additionally spills
//! every completed result to an append-only JSONL file, one record per
//! line in the shared [`crate::json`] house style:
//!
//! ```json
//! {"spec": "P2;1:0;2:00N1;1:1", "config": "costs=1,1,1,1,1 backend=…",
//!  "regex": "0*", "cost": 3}
//! ```
//!
//! On start the file warms the in-memory cache: records whose `config`
//! wire string differs from the pool's are skipped (a different cost
//! function or backend must be a miss), a corrupt or truncated record —
//! the tail of a file cut mid-write, say — is skipped with a warning
//! instead of failing the start, and when the same key appears more than
//! once (an entry re-computed after eviction in an earlier process) the
//! *last* record wins. On graceful shutdown the file is compacted: it is
//! rewritten with exactly the live entries, dropping superseded
//! duplicates and unparsable junk.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use rei_core::{SynthConfig, SynthesisResult};
use rei_lang::Spec;

use crate::json::Json;
use crate::request::JobState;

/// The canonical identity of a request (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    spec: String,
    config: String,
    fingerprint: u64,
}

impl CacheKey {
    /// Builds the key for `spec` under a service configuration.
    pub fn new(spec: &Spec, config: &SynthConfig) -> Self {
        CacheKey {
            spec: spec.canonicalize(),
            config: config.to_string(),
            fingerprint: spec.fingerprint(),
        }
    }

    /// Rebuilds a key from a *stored* canonical encoding and config wire
    /// string (a persisted cache record); the fingerprint is recomputed
    /// with the same stable hash a live [`Spec`] would produce.
    pub(crate) fn from_parts(spec: String, config: String) -> Self {
        let fingerprint = rei_lang::fnv1a(spec.as_bytes());
        CacheKey {
            spec,
            config,
            fingerprint,
        }
    }

    /// The specification's canonical encoding.
    pub(crate) fn spec(&self) -> &str {
        &self.spec
    }

    /// The configuration wire string the key was built under.
    pub(crate) fn config(&self) -> &str {
        &self.config
    }

    /// The specification's stable 64-bit fingerprint (for logs/metrics).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// What the cache knows about a key.
#[derive(Debug)]
pub(crate) enum Slot {
    /// A job for this key is queued or running; identical requests attach
    /// to its completion state.
    InFlight(Arc<JobState>),
    /// A successful synthesis completed; the result is served directly.
    Done(SynthesisResult),
}

/// The outcome of a cache lookup performed at submission time.
#[derive(Debug)]
pub(crate) enum Lookup {
    /// No entry: the caller owns the miss and must enqueue a fresh job
    /// (an `InFlight` slot with the returned state was installed).
    Miss,
    /// An identical job is in flight; share its state.
    Coalesce(Arc<JobState>),
    /// A completed result was found.
    Hit(SynthesisResult),
}

#[derive(Debug, Default)]
struct CacheState {
    map: HashMap<CacheKey, Slot>,
    /// Completion order of `Done` keys, for FIFO eviction.
    done_order: VecDeque<CacheKey>,
}

/// What warming the in-memory cache from disk found (see the module
/// docs); surfaced through the service metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct LoadStats {
    /// Records that warmed the cache.
    pub loaded: u64,
    /// Unparsable (corrupt or truncated) records skipped with a warning.
    pub skipped_corrupt: u64,
    /// Well-formed records skipped because their `config` wire string is
    /// not this pool's (a different configuration must be a miss).
    pub skipped_config: u64,
}

/// One persisted cache record, ready to write or just read.
struct Record {
    key: CacheKey,
    result: SynthesisResult,
}

impl Record {
    fn to_line(&self) -> String {
        Json::object([
            ("spec", Json::str(self.key.spec())),
            ("config", Json::str(self.key.config())),
            ("regex", Json::str(self.result.regex.to_string())),
            ("cost", Json::uint(self.result.cost)),
        ])
        .to_compact()
    }

    /// Parses one JSONL line. `Err` carries the reason for the warning.
    fn parse(line: &str) -> Result<Record, String> {
        let value = Json::parse(line).map_err(|err| err.to_string())?;
        let field = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let spec = field("spec")?.to_string();
        let config = field("config")?.to_string();
        let regex = rei_syntax::parse(field("regex")?).map_err(|err| err.to_string())?;
        let cost = value
            .get("cost")
            .and_then(Json::as_u64)
            .ok_or("missing integer field 'cost'")?;
        Ok(Record {
            key: CacheKey::from_parts(spec, config),
            result: SynthesisResult {
                regex,
                cost,
                stats: Default::default(),
            },
        })
    }
}

/// The disk side of a persistent cache: an append handle onto the JSONL
/// file plus the path for compaction.
#[derive(Debug)]
struct CacheStore {
    path: PathBuf,
    appender: Mutex<fs::File>,
}

impl CacheStore {
    fn open(path: &Path) -> Result<CacheStore, String> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)
                .map_err(|err| format!("cannot create cache directory {}: {err}", dir.display()))?;
        }
        let fail =
            |err: std::io::Error| format!("cannot open cache file {}: {err}", path.display());
        let mut appender = fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)
            .map_err(fail)?;
        // A crash mid-append can leave the file without a trailing
        // newline; appending straight after that partial tail would fuse
        // the next record onto it and lose both. Terminate the tail
        // first (the loader already skips the partial record itself).
        let len = appender.metadata().map_err(fail)?.len();
        if len > 0 {
            use std::io::{Read as _, Seek as _, SeekFrom};
            let mut last = [0u8];
            appender.seek(SeekFrom::End(-1)).map_err(fail)?;
            appender.read_exact(&mut last).map_err(fail)?;
            if last != [b'\n'] {
                // Append mode: the write lands at the end of the file.
                appender.write_all(b"\n").map_err(fail)?;
            }
        }
        Ok(CacheStore {
            path: path.to_path_buf(),
            appender: Mutex::new(appender),
        })
    }

    /// Reads every valid record currently on disk, last-record-wins for
    /// duplicated keys, keeping only records matching `config_wire`.
    fn load(path: &Path, config_wire: &str) -> (Vec<Record>, LoadStats) {
        let mut stats = LoadStats::default();
        let bytes = match fs::read(path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                // A missing file is simply an empty (cold) cache.
                return (Vec::new(), stats);
            }
            Err(err) => {
                // Any other read failure degrades to a cold start, but
                // loudly: the operator should know the cache was lost.
                stats.skipped_corrupt += 1;
                rei_obs::log::warn(
                    "cache",
                    "cannot read cache file",
                    &[
                        ("path", path.display().to_string()),
                        ("error", err.to_string()),
                    ],
                );
                return (Vec::new(), stats);
            }
        };
        // Lossy decoding keeps intact records loadable even when a crash
        // left garbage bytes elsewhere in the file; the mangled lines
        // fail to parse and are counted as corrupt below.
        let text = String::from_utf8_lossy(&bytes);
        let mut records: Vec<Record> = Vec::new();
        for (number, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match Record::parse(line) {
                Ok(record) if record.key.config() == config_wire => records.push(record),
                Ok(_) => stats.skipped_config += 1,
                Err(reason) => {
                    stats.skipped_corrupt += 1;
                    rei_obs::log::warn(
                        "cache",
                        "skipping cache record",
                        &[
                            ("path", path.display().to_string()),
                            ("line", (number + 1).to_string()),
                            ("reason", reason.to_string()),
                        ],
                    );
                }
            }
        }
        // Later records supersede earlier ones: keep the last per key.
        // `loaded` is finalised by the caller, which knows how many of
        // these survive the capacity bound.
        let mut seen: HashSet<CacheKey> = HashSet::new();
        let mut latest: Vec<Record> = Vec::new();
        for record in records.into_iter().rev() {
            if seen.insert(record.key.clone()) {
                latest.push(record);
            }
        }
        latest.reverse();
        (latest, stats)
    }

    fn append(&self, record: &Record) {
        let mut file = self.appender.lock().unwrap_or_else(|e| e.into_inner());
        let mut line = record.to_line();
        line.push('\n');
        if let Err(err) = file.write_all(line.as_bytes()).and_then(|()| file.flush()) {
            rei_obs::log::warn(
                "cache",
                "cannot append to cache file",
                &[
                    ("path", self.path.display().to_string()),
                    ("error", err.to_string()),
                ],
            );
        }
    }

    /// Atomically rewrites the file with exactly `records` (the live
    /// entries), dropping superseded duplicates and unparsable junk.
    fn compact(&self, records: impl Iterator<Item = Record>) {
        let mut text = String::new();
        for record in records {
            text.push_str(&record.to_line());
            text.push('\n');
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        let written = fs::write(&tmp, text).and_then(|()| fs::rename(&tmp, &self.path));
        if let Err(err) = written {
            rei_obs::log::warn(
                "cache",
                "cannot compact cache file",
                &[
                    ("path", self.path.display().to_string()),
                    ("error", err.to_string()),
                ],
            );
        }
    }
}

/// The concurrent result cache (see the module docs).
#[derive(Debug)]
pub(crate) struct ResultCache {
    state: Mutex<CacheState>,
    capacity: usize,
    store: Option<CacheStore>,
}

impl ResultCache {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be positive");
        ResultCache {
            state: Mutex::new(CacheState::default()),
            capacity,
            store: None,
        }
    }

    /// A cache backed by the JSONL file at `path`: existing records warm
    /// the in-memory cache (up to `capacity`, FIFO beyond it), completed
    /// results are appended, and [`compact`](ResultCache::compact)
    /// rewrites the file with the live entries.
    ///
    /// Content problems (corrupt records, foreign configs) degrade to a
    /// colder start with a warning; only an unopenable file or
    /// uncreatable directory is an error.
    pub fn persistent(
        capacity: usize,
        path: &Path,
        config: &SynthConfig,
    ) -> Result<(Self, LoadStats), String> {
        let (records, mut stats) = CacheStore::load(path, &config.to_string());
        let store = CacheStore::open(path)?;
        let cache = ResultCache {
            state: Mutex::new(CacheState::default()),
            capacity,
            store: Some(store),
        };
        {
            let mut state = cache.lock();
            for record in records {
                insert_done(&mut state, capacity, &record.key, &record.result);
            }
            // Count what is actually resident: records beyond capacity
            // were FIFO-evicted during the warm-up and did not warm
            // anything.
            stats.loaded = state.done_order.len() as u64;
        }
        Ok((cache, stats))
    }

    /// Rewrites the backing file (if any) with exactly the live completed
    /// entries, in completion order. A no-op for in-memory caches.
    pub fn compact(&self) {
        let Some(store) = &self.store else {
            return;
        };
        let state = self.lock();
        let records = state
            .done_order
            .iter()
            .filter_map(|key| match state.map.get(key) {
                Some(Slot::Done(result)) => Some(Record {
                    key: key.clone(),
                    result: result.clone(),
                }),
                _ => None,
            });
        store.compact(records);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Submission-time lookup. On a miss, atomically installs an
    /// `InFlight` slot with `state` so concurrent identical submissions
    /// coalesce onto it.
    pub fn lookup_or_reserve(&self, key: &CacheKey, state: &Arc<JobState>) -> Lookup {
        let mut cache = self.lock();
        match cache.map.get(key) {
            Some(Slot::Done(result)) => Lookup::Hit(result.clone()),
            Some(Slot::InFlight(in_flight)) => Lookup::Coalesce(Arc::clone(in_flight)),
            None => {
                cache
                    .map
                    .insert(key.clone(), Slot::InFlight(Arc::clone(state)));
                Lookup::Miss
            }
        }
    }

    /// Records a successful synthesis for `key`, replacing its `InFlight`
    /// slot and evicting the oldest completed entry beyond capacity. A
    /// persistent cache also appends the result to its backing file.
    pub fn complete(&self, key: &CacheKey, result: &SynthesisResult) {
        {
            let mut cache = self.lock();
            insert_done(&mut cache, self.capacity, key, result);
        }
        if let Some(store) = &self.store {
            store.append(&Record {
                key: key.clone(),
                result: result.clone(),
            });
        }
    }

    /// Drops the reservation of a failed job so later identical requests
    /// run fresh. Only removes the slot if it is still the in-flight
    /// reservation of `state` (a later fresh job may have re-reserved).
    pub fn forget(&self, key: &CacheKey, state: &Arc<JobState>) {
        let mut cache = self.lock();
        if let Some(Slot::InFlight(in_flight)) = cache.map.get(key) {
            if Arc::ptr_eq(in_flight, state) {
                cache.map.remove(key);
            }
        }
    }

    /// Number of completed results currently cached. `done_order` keys
    /// are 1:1 with `Done` slots (completion pushes both, eviction pops
    /// both, `forget` touches neither), so this is O(1).
    pub fn entries(&self) -> usize {
        let cache = self.lock();
        debug_assert_eq!(
            cache.done_order.len(),
            cache
                .map
                .values()
                .filter(|slot| matches!(slot, Slot::Done(_)))
                .count()
        );
        cache.done_order.len()
    }

    /// Maximum number of completed results kept.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Installs a `Done` slot, evicting the oldest completed entry beyond
/// `capacity` (shared by completion and the disk warm-up).
fn insert_done(state: &mut CacheState, capacity: usize, key: &CacheKey, result: &SynthesisResult) {
    state.map.insert(key.clone(), Slot::Done(result.clone()));
    state.done_order.push_back(key.clone());
    while state.done_order.len() > capacity {
        let oldest = state.done_order.pop_front().expect("len checked");
        // Only evict if the slot still belongs to that completion: a
        // key can re-enter in-flight after an eviction of its own.
        if matches!(state.map.get(&oldest), Some(Slot::Done(_))) {
            state.map.remove(&oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rei_syntax::{CostFn, Regex};

    fn key(positive: &str) -> CacheKey {
        let spec = Spec::from_strs([positive], []).unwrap();
        CacheKey::new(&spec, &SynthConfig::default())
    }

    fn result(cost: u64) -> SynthesisResult {
        SynthesisResult {
            regex: Regex::Epsilon,
            cost,
            stats: Default::default(),
        }
    }

    #[test]
    fn key_depends_on_spec_and_config() {
        let spec = Spec::from_strs(["10", "1"], ["0"]).unwrap();
        let reordered = Spec::from_strs(["1", "10"], ["0"]).unwrap();
        let config = SynthConfig::default();
        assert_eq!(
            CacheKey::new(&spec, &config),
            CacheKey::new(&reordered, &config)
        );
        assert_eq!(
            CacheKey::new(&spec, &config).fingerprint(),
            spec.fingerprint()
        );
        let other_config = SynthConfig::new(CostFn::new(1, 2, 3, 4, 5));
        assert_ne!(
            CacheKey::new(&spec, &config),
            CacheKey::new(&spec, &other_config)
        );
        let other_spec = Spec::from_strs(["10"], ["0"]).unwrap();
        assert_ne!(
            CacheKey::new(&spec, &config),
            CacheKey::new(&other_spec, &config)
        );
    }

    #[test]
    fn miss_reserves_then_coalesces_then_hits() {
        let cache = ResultCache::new(8);
        let state = JobState::new(None);
        let k = key("0");
        assert!(matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss));
        // A second identical submission coalesces onto the first state.
        let other = JobState::new(None);
        match cache.lookup_or_reserve(&k, &other) {
            Lookup::Coalesce(shared) => assert!(Arc::ptr_eq(&shared, &state)),
            other => panic!("expected coalesce, got {other:?}"),
        }
        cache.complete(&k, &result(3));
        match cache.lookup_or_reserve(&k, &other) {
            Lookup::Hit(hit) => assert_eq!(hit.cost, 3),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn failures_are_forgotten_not_cached() {
        let cache = ResultCache::new(8);
        let state = JobState::new(None);
        let k = key("0");
        assert!(matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss));
        cache.forget(&k, &state);
        // The next identical request misses again (fresh run).
        let retry = JobState::new(None);
        assert!(matches!(cache.lookup_or_reserve(&k, &retry), Lookup::Miss));
        // A stale forget (old state) must not drop the new reservation.
        cache.forget(&k, &state);
        let third = JobState::new(None);
        assert!(matches!(
            cache.lookup_or_reserve(&k, &third),
            Lookup::Coalesce(_)
        ));
    }

    fn temp_cache_file(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir()
            .join(format!("rei-cache-test-{}-{tag}", std::process::id()))
            .join("results.jsonl")
    }

    fn cleanup(path: &std::path::Path) {
        if let Some(dir) = path.parent() {
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn persistent_cache_round_trips_across_instances() {
        let path = temp_cache_file("roundtrip");
        let config = SynthConfig::default();
        let spec = Spec::from_strs(["0", "00"], ["1"]).unwrap();
        let k = CacheKey::new(&spec, &config);
        {
            let (cache, stats) = ResultCache::persistent(8, &path, &config).unwrap();
            assert_eq!(stats, LoadStats::default());
            let state = JobState::new(None);
            assert!(matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss));
            cache.complete(&k, &result(7));
            cache.compact();
        }
        // A fresh instance (a "new process") is warm from disk.
        let (cache, stats) = ResultCache::persistent(8, &path, &config).unwrap();
        assert_eq!(stats.loaded, 1);
        assert_eq!(stats.skipped_corrupt + stats.skipped_config, 0);
        match cache.lookup_or_reserve(&k, &JobState::new(None)) {
            Lookup::Hit(hit) => assert_eq!(hit.cost, 7),
            other => panic!("expected disk-warm hit, got {other:?}"),
        }
        // The reloaded key equals a freshly computed one bit for bit
        // (including the recomputed fingerprint).
        assert_eq!(
            CacheKey::from_parts(spec.canonicalize(), config.to_string()),
            k
        );
        cleanup(&path);
    }

    #[test]
    fn corrupt_tail_records_are_skipped_with_a_warning() {
        let path = temp_cache_file("corrupt");
        let config = SynthConfig::default();
        let k = key("0");
        {
            let (cache, _) = ResultCache::persistent(8, &path, &config).unwrap();
            let state = JobState::new(None);
            assert!(matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss));
            cache.complete(&k, &result(3));
        }
        // Simulate a crash mid-append: a truncated record on the tail.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"spec\": \"P1;1:1N0\", \"config\"");
        std::fs::write(&path, text).unwrap();
        let (cache, stats) = ResultCache::persistent(8, &path, &config).unwrap();
        assert_eq!(stats.loaded, 1, "the intact record still warms");
        assert_eq!(stats.skipped_corrupt, 1);
        assert!(matches!(
            cache.lookup_or_reserve(&k, &JobState::new(None)),
            Lookup::Hit(_)
        ));
        // A well-formed record whose regex does not parse is corrupt too.
        std::fs::write(
            &path,
            "{\"spec\": \"s\", \"config\": \"c\", \"regex\": \"+++\", \"cost\": 1}\n",
        )
        .unwrap();
        let (_, stats) = ResultCache::persistent(8, &path, &config).unwrap();
        assert_eq!(stats.loaded, 0);
        assert_eq!(stats.skipped_corrupt, 1);
        cleanup(&path);
    }

    #[test]
    fn appends_after_a_truncated_tail_do_not_fuse_records() {
        let path = temp_cache_file("fuse");
        let config = SynthConfig::default();
        let k = key("0");
        {
            let (cache, _) = ResultCache::persistent(8, &path, &config).unwrap();
            let state = JobState::new(None);
            assert!(matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss));
            cache.complete(&k, &result(3));
        }
        // A crash mid-append leaves a partial record with no newline.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"spec\": \"P1;1:1N0\", \"config\"");
        std::fs::write(&path, text).unwrap();
        // The next process appends a fresh completion; it must land on
        // its own line, not be fused onto the partial tail.
        let other = key("1");
        {
            let (cache, _) = ResultCache::persistent(8, &path, &config).unwrap();
            let state = JobState::new(None);
            assert!(matches!(
                cache.lookup_or_reserve(&other, &state),
                Lookup::Miss
            ));
            cache.complete(&other, &result(5));
        }
        let (cache, stats) = ResultCache::persistent(8, &path, &config).unwrap();
        assert_eq!(stats.loaded, 2, "both completions survive");
        assert_eq!(stats.skipped_corrupt, 1, "only the partial tail is lost");
        assert!(matches!(
            cache.lookup_or_reserve(&other, &JobState::new(None)),
            Lookup::Hit(_)
        ));
        cleanup(&path);
    }

    #[test]
    fn non_utf8_garbage_is_counted_and_does_not_hide_intact_records() {
        let path = temp_cache_file("utf8");
        let config = SynthConfig::default();
        let k = key("0");
        {
            let (cache, _) = ResultCache::persistent(8, &path, &config).unwrap();
            let state = JobState::new(None);
            assert!(matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss));
            cache.complete(&k, &result(3));
        }
        // Prepend a line of invalid UTF-8, as a torn page write might.
        let mut bytes = vec![0xFF, 0xFE, 0x80, b'\n'];
        bytes.extend(std::fs::read(&path).unwrap());
        std::fs::write(&path, bytes).unwrap();
        let (cache, stats) = ResultCache::persistent(8, &path, &config).unwrap();
        assert_eq!(stats.loaded, 1, "the intact record still warms");
        assert_eq!(stats.skipped_corrupt, 1, "the garbage is counted");
        assert!(matches!(
            cache.lookup_or_reserve(&k, &JobState::new(None)),
            Lookup::Hit(_)
        ));
        cleanup(&path);
    }

    #[test]
    fn disk_loaded_counts_resident_entries_not_parsed_records() {
        let path = temp_cache_file("capacity");
        let config = SynthConfig::default();
        {
            let (cache, _) = ResultCache::persistent(8, &path, &config).unwrap();
            for positive in ["0", "1", "00"] {
                let k = key(positive);
                let state = JobState::new(None);
                assert!(matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss));
                cache.complete(&k, &result(1));
            }
        }
        // Three records on disk, but a capacity-2 cache keeps (and
        // therefore reports) only the two newest.
        let (cache, stats) = ResultCache::persistent(2, &path, &config).unwrap();
        assert_eq!(stats.loaded, 2);
        assert!(matches!(
            cache.lookup_or_reserve(&key("0"), &JobState::new(None)),
            Lookup::Miss
        ));
        assert!(matches!(
            cache.lookup_or_reserve(&key("00"), &JobState::new(None)),
            Lookup::Hit(_)
        ));
        cleanup(&path);
    }

    #[test]
    fn foreign_config_records_are_misses() {
        let path = temp_cache_file("config");
        let config = SynthConfig::default();
        let k = key("0");
        {
            let (cache, _) = ResultCache::persistent(8, &path, &config).unwrap();
            let state = JobState::new(None);
            assert!(matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss));
            cache.complete(&k, &result(3));
        }
        // The same file under a different cost function: every record is
        // a mismatch, so the start is cold.
        let other = SynthConfig::new(CostFn::new(1, 2, 3, 4, 5));
        let (cache, stats) = ResultCache::persistent(8, &path, &other).unwrap();
        assert_eq!(stats.loaded, 0);
        assert_eq!(stats.skipped_config, 1);
        let spec = Spec::from_strs(["0"], []).unwrap();
        assert!(matches!(
            cache.lookup_or_reserve(&CacheKey::new(&spec, &other), &JobState::new(None)),
            Lookup::Miss
        ));
        cleanup(&path);
    }

    #[test]
    fn duplicated_keys_load_last_record_and_compact_to_one() {
        let path = temp_cache_file("supersede");
        let config = SynthConfig::default();
        let spec = Spec::from_strs(["0"], []).unwrap();
        let k = CacheKey::new(&spec, &config);
        // Hand-write an append-only history where the key was recorded
        // twice (recomputed after an eviction in some earlier process).
        let record = |cost: u64| {
            format!(
                "{{\"spec\": \"{}\", \"config\": \"{}\", \"regex\": \"0\", \"cost\": {cost}}}\n",
                k.spec(),
                k.config()
            )
        };
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, format!("{}{}", record(9), record(1))).unwrap();
        let (cache, stats) = ResultCache::persistent(8, &path, &config).unwrap();
        assert_eq!(stats.loaded, 1, "duplicates collapse to the last record");
        match cache.lookup_or_reserve(&k, &JobState::new(None)) {
            Lookup::Hit(hit) => assert_eq!(hit.cost, 1, "the last record wins"),
            other => panic!("expected hit, got {other:?}"),
        }
        cache.compact();
        let compacted = std::fs::read_to_string(&path).unwrap();
        assert_eq!(compacted.lines().count(), 1, "{compacted}");
        assert!(compacted.contains("\"cost\":1"), "{compacted}");
        cleanup(&path);
    }

    #[test]
    fn eviction_is_fifo_over_completed_entries() {
        let cache = ResultCache::new(2);
        assert_eq!(cache.capacity(), 2);
        for (i, positive) in ["0", "1", "00"].iter().enumerate() {
            let k = key(positive);
            let state = JobState::new(None);
            assert!(matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss));
            cache.complete(&k, &result(i as u64));
        }
        assert_eq!(cache.entries(), 2);
        // The first completion was evicted, the later two survive.
        let state = JobState::new(None);
        assert!(matches!(
            cache.lookup_or_reserve(&key("0"), &state),
            Lookup::Miss
        ));
        assert!(matches!(
            cache.lookup_or_reserve(&key("1"), &JobState::new(None)),
            Lookup::Hit(_)
        ));
        assert!(matches!(
            cache.lookup_or_reserve(&key("00"), &JobState::new(None)),
            Lookup::Hit(_)
        ));
    }
}
