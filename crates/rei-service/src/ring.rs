//! The consistent-hash ring behind the shard router.
//!
//! `key % N` routing remaps *every* key when a pool joins or leaves: a
//! topology change cold-starts every shard's persistent cache at once.
//! The ring instead places `VNODES` virtual points per pool on a 64-bit
//! circle — each point is the [`rei_lang::fnv1a`] hash of
//! `"<pool>#<replica>"` — and routes a key to the first point clockwise
//! of it. Adding a pool to an N-pool ring captures only the key ranges
//! its own points carve out, ~1/(N+1) of the circle; every other key
//! keeps its pool, and with it its warm cache. Removing the pool restores
//! the exact previous assignment (its points leave, nothing else moves).
//!
//! Points are derived purely from pool names via FNV-1a, so the
//! assignment is deterministic across processes — a restarted router
//! with the same pool list finds each shard's entries in its own cache
//! file, exactly as the old modulo rule guaranteed.

use rei_lang::fnv1a;

/// Virtual points each pool contributes to the ring. More points smooth
/// the load split (the share of a pool is the sum of its arc lengths);
/// 64 keeps every pool within roughly a factor two of its fair share
/// for small N while a lookup stays one binary search over `64 * N`
/// points.
pub const VNODES: usize = 64;

/// Finalizing bit mixer (the splitmix64 constants) applied on top of
/// FNV-1a for both virtual points and lookup keys. FNV-1a of short,
/// similar strings clusters in the high bits, and the ring's arithmetic
/// compares full 64-bit values — without the mixer, one pool's arcs can
/// bunch together and carry far more or less than its fair share. The
/// mixer is a fixed bijection, so determinism across processes is
/// untouched.
fn spread(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A consistent-hash ring over named pools (see the module docs).
///
/// # Example
///
/// ```
/// use rei_service::HashRing;
///
/// let mut ring = HashRing::new();
/// ring.add("pool-0");
/// ring.add("pool-1");
/// let before = ring.route(rei_lang::fnv1a(b"acme")).unwrap().to_string();
/// ring.add("pool-2");
/// ring.remove("pool-2");
/// assert_eq!(ring.route(rei_lang::fnv1a(b"acme")), Some(before.as_str()));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HashRing {
    /// `(point, pool name)` sorted by point; ties (vanishingly rare with
    /// 64-bit points) break by name so the order stays deterministic.
    points: Vec<(u64, String)>,
}

impl HashRing {
    /// An empty ring; [`route`](HashRing::route) returns `None` until a
    /// pool is added.
    pub fn new() -> Self {
        HashRing::default()
    }

    /// Adds `pool`'s virtual points. Adding a name twice is a no-op —
    /// the points would be identical anyway.
    pub fn add(&mut self, pool: &str) {
        if self.contains(pool) {
            return;
        }
        for replica in 0..VNODES {
            let point = spread(fnv1a(format!("{pool}#{replica}").as_bytes()));
            self.points.push((point, pool.to_string()));
        }
        self.points
            .sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    }

    /// Removes `pool`'s virtual points; keys they carried fall through to
    /// the next point clockwise. Unknown names are a no-op.
    pub fn remove(&mut self, pool: &str) {
        self.points.retain(|(_, name)| name != pool);
    }

    /// Whether `pool` is on the ring.
    pub fn contains(&self, pool: &str) -> bool {
        self.points.iter().any(|(_, name)| name == pool)
    }

    /// Number of pools on the ring.
    pub fn pools(&self) -> usize {
        self.points.len() / VNODES
    }

    /// The pool owning `key`: the first virtual point clockwise of it
    /// (wrapping past the top of the circle). `None` on an empty ring.
    pub fn route(&self, key: u64) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let key = spread(key);
        let index = self
            .points
            .partition_point(|(point, _)| *point < key)
            .checked_rem(self.points.len())
            .expect("ring is non-empty");
        Some(&self.points[index].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(pools: usize) -> HashRing {
        let mut ring = HashRing::new();
        for index in 0..pools {
            ring.add(&format!("pool-{index}"));
        }
        ring
    }

    fn tenant_keys(count: usize) -> Vec<u64> {
        (0..count)
            .map(|i| fnv1a(format!("tenant-{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn routes_are_deterministic_and_reasonably_balanced() {
        let ring = ring_of(4);
        let keys = tenant_keys(10_000);
        let mut load = std::collections::HashMap::<&str, usize>::new();
        for key in &keys {
            let pool = ring.route(*key).unwrap();
            assert_eq!(ring.route(*key), Some(pool), "routing must be stable");
            *load.entry(pool).or_default() += 1;
        }
        assert_eq!(load.len(), 4, "every pool carries some keys: {load:?}");
        // With 64 vnodes the split stays within a factor ~2 of even.
        for (pool, count) in &load {
            assert!(
                (10_000 / 8..=10_000 / 2).contains(count),
                "pool {pool} carries {count} of 10000: {load:?}"
            );
        }
    }

    #[test]
    fn adding_a_pool_remaps_at_most_about_one_nth_of_keys() {
        let keys = tenant_keys(10_000);
        for pools in [2usize, 3, 4, 8] {
            let mut ring = ring_of(pools);
            let before: Vec<String> = keys
                .iter()
                .map(|k| ring.route(*k).unwrap().to_string())
                .collect();
            ring.add("joiner");
            let moved = keys
                .iter()
                .zip(&before)
                .filter(|(k, was)| ring.route(**k).unwrap() != was.as_str())
                .count();
            // ~1/(N+1) of keys move to the joiner; allow 2/N of slack for
            // vnode placement variance. Everything that moved, moved *to*
            // the new pool — no key hops between the old pools.
            let bound = 2 * keys.len() / pools;
            assert!(
                moved <= bound,
                "{pools} pools: {moved} of {} keys moved (bound {bound})",
                keys.len()
            );
            assert!(moved > 0, "{pools} pools: the joiner must take load");
            for (key, was) in keys.iter().zip(&before) {
                let now = ring.route(*key).unwrap();
                assert!(
                    now == was.as_str() || now == "joiner",
                    "key moved between old pools: {was} -> {now}"
                );
            }
            // Removing the joiner restores the original assignment.
            ring.remove("joiner");
            for (key, was) in keys.iter().zip(&before) {
                assert_eq!(ring.route(*key), Some(was.as_str()));
            }
        }
    }

    #[test]
    fn empty_duplicate_and_unknown_edge_cases() {
        let mut ring = HashRing::new();
        assert_eq!(ring.route(42), None);
        assert_eq!(ring.pools(), 0);
        ring.add("only");
        ring.add("only");
        assert_eq!(ring.pools(), 1);
        assert_eq!(ring.route(42), Some("only"));
        ring.remove("never-added");
        assert_eq!(ring.pools(), 1);
        ring.remove("only");
        assert_eq!(ring.route(42), None);
    }
}
