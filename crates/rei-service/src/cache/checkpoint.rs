//! Folding history into a checkpoint: the crash-safe compaction step.
//!
//! A *fold* snapshots the cache's live records, writes them to a fresh
//! `checkpoint.NNNNN.jsonl` (tmp + fsync + rename + dir-fsync), starts an
//! empty tail segment, then publishes a manifest whose live set is just
//! `{checkpoint, tail}`. Only after that publish are the folded files
//! deleted. Every crash window therefore leaves one of two valid states:
//! the old manifest with the old files (plus removable orphans), or the
//! new manifest with the new files — never a manifest naming a
//! half-written file.
//!
//! The fold is also where the disk **eviction bound** is enforced: with
//! [`WalOptions::disk_cap_bytes`](super::WalOptions) set, records are
//! dropped least-recently-hit first until the checkpoint fits the cap.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::Ordering;

use super::segment::{checkpoint_path, segment_path, sync_dir, Manifest, WalStore};
use crate::failpoint;

/// What one fold did; consumed by logs and gauges.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FoldStats {
    /// Records written into the checkpoint.
    pub kept: u64,
    /// Records dropped by the disk cap (least-recently-hit first).
    pub evicted: u64,
    /// Live disk bytes after the fold (checkpoint + empty tail).
    pub disk_bytes: u64,
}

impl WalStore {
    /// Folds all live history into a new checkpoint and resets the store
    /// to `{checkpoint, empty tail}`.
    ///
    /// `live` produces the cache's current records — each a rendered
    /// line plus its last-hit tick — and is called *under the store
    /// lock*, so no append can interleave between the snapshot and the
    /// swap. Callers must not touch the store from inside the closure.
    ///
    /// Returns `None` when the fold did not complete (the store is dead,
    /// or an I/O step failed — the previous manifest remains live and
    /// intact either way).
    pub(crate) fn fold<F>(&self, live: F) -> Option<FoldStats>
    where
        F: FnOnce() -> Vec<(String, u64)>,
    {
        let mut inner = self.lock_inner();
        if inner.dead {
            return None;
        }
        let mut lines = live();
        // Oldest hit first, so the eviction cut below drops the coldest.
        lines.sort_by_key(|&(_, last_hit)| last_hit);
        let mut total: u64 = lines.iter().map(|(line, _)| line.len() as u64 + 1).sum();
        let mut evicted = 0u64;
        if let Some(cap) = self.options.disk_cap_bytes {
            let mut cut = 0;
            while total > cap && cut < lines.len() {
                total -= lines[cut].0.len() as u64 + 1;
                cut += 1;
            }
            evicted = cut as u64;
            lines.drain(..cut);
        }
        let kept = lines.len() as u64;

        let ckpt_id = inner.manifest.next;
        let ckpt = checkpoint_path(&self.root, ckpt_id);
        let tmp = self.root.join(format!(
            "{}.tmp",
            ckpt.file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("checkpoint")
        ));
        let checkpoint_bytes = match write_synced(&tmp, &lines) {
            Ok(bytes) => bytes,
            Err(err) => {
                warn_fold("cannot write checkpoint", &err);
                let _ = fs::remove_file(&tmp);
                return None;
            }
        };
        if failpoint::cut("cache.checkpoint.rename") {
            inner.dead = true;
            return None;
        }
        if let Err(err) = fs::rename(&tmp, &ckpt).and_then(|()| sync_dir(&self.root)) {
            warn_fold("cannot publish checkpoint", &err);
            let _ = fs::remove_file(&tmp);
            return None;
        }
        if failpoint::cut("cache.checkpoint.manifest") {
            inner.dead = true;
            return None;
        }

        // Fresh tail after the checkpoint, then the manifest swap that
        // makes both live in one atomic step.
        let tail_id = ckpt_id + 1;
        let tail_path = segment_path(&self.root, tail_id);
        let tail = match fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&tail_path)
        {
            Ok(file) => file,
            Err(err) => {
                warn_fold("cannot create post-checkpoint tail", &err);
                let _ = fs::remove_file(&ckpt);
                return None;
            }
        };
        let folded = inner.manifest.clone();
        let manifest = Manifest {
            checkpoint: Some(ckpt_id),
            segments: vec![tail_id],
            next: tail_id + 1,
        };
        if let Err(err) = manifest.store(&self.root) {
            warn_fold("cannot publish post-fold manifest", &err);
            let _ = fs::remove_file(&ckpt);
            let _ = fs::remove_file(&tail_path);
            return None;
        }
        inner.manifest = manifest;
        inner.tail = tail;
        inner.tail_bytes = 0;
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.evicted.fetch_add(evicted, Ordering::Relaxed);
        self.bytes.store(checkpoint_bytes, Ordering::Relaxed);

        // Retire the folded files last. A crash here only leaves
        // orphans, which the next open deletes; their content is fully
        // contained in the checkpoint.
        if failpoint::cut("cache.compact.remove") {
            inner.dead = true;
        } else {
            for path in folded.live_files(&self.root) {
                let _ = fs::remove_file(&path);
            }
        }
        Some(FoldStats {
            kept,
            evicted,
            disk_bytes: checkpoint_bytes,
        })
    }
}

/// Writes `lines` to `path` and `fsync`s it — the "compacted file can't
/// be empty after power loss" fix: `fs::write` alone never syncs.
fn write_synced(path: &Path, lines: &[(String, u64)]) -> io::Result<u64> {
    let mut file = fs::File::create(path)?;
    let mut bytes = 0u64;
    for (line, _) in lines {
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        bytes += line.len() as u64 + 1;
    }
    file.sync_all()?;
    Ok(bytes)
}

fn warn_fold(message: &str, err: &io::Error) {
    rei_obs::log::warn("cache", message, &[("error", err.to_string())]);
}

#[cfg(test)]
mod tests {
    use super::super::recovery::replay;
    use super::super::segment::{WalOptions, WalStore, MANIFEST_FILE};
    use super::super::test_support::*;

    #[test]
    fn fold_replaces_history_with_a_checkpoint_and_empty_tail() {
        let root = temp_root("fold");
        let (store, _) = WalStore::open(
            &root,
            "cfg",
            WalOptions {
                roll_bytes: 128,
                ..WalOptions::default()
            },
        )
        .unwrap();
        for i in 0..10 {
            assert!(store.append(&format!("spec-{i}"), "0*", i));
        }
        let before = store.segment_count();
        assert!(before >= 3);
        let live: Vec<(String, u64)> = (0..10)
            .map(|i| {
                (
                    super::super::segment::line_of(&format!("spec-{i}"), "cfg", "0*", i),
                    i,
                )
            })
            .collect();
        let stats = store.fold(move || live).expect("fold completes");
        assert_eq!(stats.kept, 10);
        assert_eq!(stats.evicted, 0);
        assert_eq!(store.segment_count(), 1, "only the fresh tail remains");
        assert_eq!(store.disk_stats().checkpoints, 1);
        // The folded segment files are gone; replay sees checkpoint+tail.
        let report = replay(&root, "cfg", 1);
        assert!(report.checkpoint);
        assert_eq!(report.segments, 1);
        assert_eq!(report.loaded, 10);
        cleanup(&root);
    }

    #[test]
    fn the_disk_cap_evicts_least_recently_hit_first() {
        let root = temp_root("evict");
        let line = |i: u64| {
            (
                super::super::segment::line_of(&format!("spec-{i}"), "cfg", "0*", i),
                i, // last-hit tick: higher = hotter
            )
        };
        let lines: Vec<(String, u64)> = (0..10).map(line).collect();
        let keep_bytes: u64 = lines[5..].iter().map(|(l, _)| l.len() as u64 + 1).sum();
        let (store, _) = WalStore::open(
            &root,
            "cfg",
            WalOptions {
                disk_cap_bytes: Some(keep_bytes),
                ..WalOptions::default()
            },
        )
        .unwrap();
        for i in 0..10 {
            assert!(store.append(&format!("spec-{i}"), "0*", i));
        }
        let stats = store.fold(move || lines).expect("fold completes");
        assert_eq!(stats.evicted, 5, "the five coldest records are dropped");
        assert!(stats.disk_bytes <= keep_bytes);
        assert_eq!(store.disk_stats().evicted, 5);
        let report = replay(&root, "cfg", 1);
        assert_eq!(report.loaded, 5);
        cleanup(&root);
    }

    #[test]
    fn a_failed_fold_leaves_the_previous_manifest_live() {
        let root = temp_root("foldfail");
        let (store, _) = WalStore::open(&root, "cfg", WalOptions::default()).unwrap();
        assert!(store.append("spec-a", "0*", 1));
        // Make the root unwritable for new files by pre-creating the
        // checkpoint tmp as a directory: File::create fails, fold aborts.
        let manifest = super::super::segment::Manifest::load(&root)
            .unwrap()
            .unwrap();
        let tmp = root.join(format!("checkpoint.{:05}.jsonl.tmp", manifest.next));
        std::fs::create_dir(&tmp).unwrap();
        assert!(store.fold(Vec::new).is_none(), "the fold reports failure");
        std::fs::remove_dir(&tmp).unwrap();
        assert!(root.join(MANIFEST_FILE).exists());
        let report = replay(&root, "cfg", 1);
        assert_eq!(report.loaded, 1, "the old files still carry the record");
        // The store is not dead: appends and a later fold still work.
        assert!(store.append("spec-b", "0*", 2));
        cleanup(&root);
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod failpoint_tests {
    use super::super::recovery::replay;
    use super::super::segment::{Manifest, WalOptions, WalStore};
    use super::super::test_support::*;
    use crate::failpoint;

    /// Crash the fold at every cut point in turn; after each "crash" the
    /// manifest must reference only fully-written files and recovery must
    /// load every acknowledged record.
    #[test]
    fn a_crash_anywhere_inside_the_fold_loses_nothing() {
        let root = temp_root("fp-fold");
        for point in [
            "cache.checkpoint.rename",
            "cache.checkpoint.manifest",
            "cache.compact.remove",
        ] {
            let sub = root.join(point.replace('.', "-"));
            let lines: Vec<(String, u64)> = (0..6)
                .map(|i| {
                    (
                        super::super::segment::line_of(&format!("spec-{i}"), "cfg", "0*", i),
                        i,
                    )
                })
                .collect();
            {
                let (store, _) = WalStore::open(&sub, "cfg", WalOptions::default()).unwrap();
                for i in 0..6 {
                    assert!(store.append(&format!("spec-{i}"), "0*", i));
                }
                failpoint::arm(point, 1);
                let folded = store.fold(move || lines);
                failpoint::clear();
                if point == "cache.compact.remove" {
                    assert!(folded.is_some(), "the fold published before the crash");
                } else {
                    assert!(folded.is_none(), "the fold crashed before publishing");
                }
                // The "process" is dead from here; drop without joining.
            }
            // The manifest on disk must only name fully-written files.
            let manifest = Manifest::load(&sub)
                .unwrap()
                .expect("a manifest survives every crash window");
            for path in manifest.live_files(&sub) {
                assert!(
                    path.exists(),
                    "{point}: manifest references missing {}",
                    path.display()
                );
            }
            for entry in std::fs::read_dir(&sub).unwrap().flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                assert!(
                    !name.ends_with(".tmp") || !manifest_names(&manifest, &name),
                    "{point}: manifest references half-written {name}"
                );
            }
            // And recovery loads all six acknowledged records.
            let report = replay(&sub, "cfg", 2);
            assert_eq!(report.loaded, 6, "no record lost at {point}");
            assert_eq!(report.skipped_corrupt, 0);
        }
        cleanup(&root);
    }

    fn manifest_names(manifest: &Manifest, name: &str) -> bool {
        manifest
            .live_files(std::path::Path::new(""))
            .iter()
            .any(|p| p.file_name().is_some_and(|n| n.to_string_lossy() == name))
    }
}
