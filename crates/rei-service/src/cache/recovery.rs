//! Parallel log replay: rebuilding the in-memory picture from a store
//! directory after a restart — clean or not.
//!
//! Recovery reads the checkpoint (if any) and every segment the manifest
//! names. Sources are parsed on up to N threads (one source per thread,
//! striped), then merged in source order with last-record-wins per key,
//! so the result is byte-for-byte what a serial front-to-back replay
//! would produce. Parsing tolerates everything short of an unreadable
//! directory: corrupt lines (torn tails), non-UTF-8 bytes and records
//! from a different synthesis config are counted, warned about once per
//! source, and skipped.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use super::segment::{Manifest, Record};
use super::CacheKey;

/// What one recovery pass found and how long it took. Returned by the
/// persistent cache open (`ResultCache::persistent`) and by the
/// standalone [`replay`]; surfaced in service metrics and
/// `BENCH_core.json` (`service.recovery`).
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Wall-clock time of the replay (parse + merge).
    pub wall: Duration,
    /// Segment files replayed.
    pub segments: usize,
    /// Whether a checkpoint file was replayed ahead of the segments.
    pub checkpoint: bool,
    /// Threads the replay actually used.
    pub threads: usize,
    /// Records parsed successfully across all sources (before the
    /// last-wins merge and config filtering).
    pub records: u64,
    /// Distinct records loaded after merging (config-matching, last
    /// occurrence wins).
    pub loaded: u64,
    /// Lines skipped because they did not parse (torn or damaged).
    pub skipped_corrupt: u64,
    /// Records skipped because they were written under a different
    /// synthesis config.
    pub skipped_config: u64,
}

impl RecoveryReport {
    /// Total files replayed: segments plus the checkpoint.
    pub fn sources(&self) -> usize {
        self.segments + usize::from(self.checkpoint)
    }
}

/// Replays the store at `root` read-only and reports what a recovery
/// with `threads` replay threads (0 = one per core) would load for
/// `config_wire`, without opening the store or mutating any file.
/// Benchmarks use this to time serial vs parallel recovery on the same
/// directory.
pub fn replay(root: &Path, config_wire: &str, threads: usize) -> RecoveryReport {
    let manifest = match Manifest::load(root) {
        Ok(Some(manifest)) => manifest,
        _ => Manifest::scan(root),
    };
    let (_records, report) = replay_sources(root, &manifest, config_wire, threads);
    report
}

/// Tally of one parsed source file.
struct SourceTally {
    records: u64,
    skipped_corrupt: u64,
    skipped_config: u64,
}

/// Parses one source file, keeping records whose config matches
/// `config_wire`. Mirrors the append format bytes-for-bytes; damage is
/// tallied, never fatal.
fn parse_source(path: &Path, config_wire: &str) -> (Vec<Record>, SourceTally) {
    let mut records = Vec::new();
    let mut tally = SourceTally {
        records: 0,
        skipped_corrupt: 0,
        skipped_config: 0,
    };
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(err) => {
            if err.kind() != io::ErrorKind::NotFound {
                rei_obs::log::warn(
                    "cache",
                    "cannot read cache source; skipping it",
                    &[
                        ("path", path.display().to_string()),
                        ("error", err.to_string()),
                    ],
                );
            }
            return (records, tally);
        }
    };
    // Lossy conversion keeps the line structure even around non-UTF-8
    // damage; the affected lines then fail to parse and are counted.
    let text = String::from_utf8_lossy(&bytes);
    // Only newline-terminated lines are records: an unterminated tail is
    // a torn write even when it happens to parse (the record was never
    // acknowledged as durable), so recovery loads exactly the records
    // whose final newline survived.
    let (complete, torn) = match text.rfind('\n') {
        Some(end) => text.split_at(end + 1),
        None => ("", text.as_ref()),
    };
    if !torn.trim().is_empty() {
        tally.skipped_corrupt += 1;
        rei_obs::log::warn(
            "cache",
            "skipping torn unterminated tail record",
            &[("path", path.display().to_string())],
        );
    }
    for line in complete.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match Record::parse(line) {
            Ok(record) => {
                tally.records += 1;
                if record.key.config() == config_wire {
                    records.push(record);
                } else {
                    tally.skipped_config += 1;
                }
            }
            Err(reason) => {
                tally.skipped_corrupt += 1;
                rei_obs::log::warn(
                    "cache",
                    "skipping corrupt cache record",
                    &[("path", path.display().to_string()), ("reason", reason)],
                );
            }
        }
    }
    (records, tally)
}

/// Replays every live source of `manifest`, in parallel when there are
/// several, and merges them in source order with last-record-wins.
/// Returns the surviving records in their final-occurrence order (oldest
/// first), which preserves the cache's FIFO-eviction warm order.
pub(crate) fn replay_sources(
    root: &Path,
    manifest: &Manifest,
    config_wire: &str,
    threads: usize,
) -> (Vec<Record>, RecoveryReport) {
    let start = Instant::now();
    let sources: Vec<PathBuf> = manifest.live_files(root);
    let mut report = RecoveryReport {
        segments: manifest.segments.len(),
        checkpoint: manifest.checkpoint.is_some(),
        ..RecoveryReport::default()
    };
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
    .min(sources.len())
    .max(1);
    report.threads = threads;

    let mut parsed: Vec<Option<(Vec<Record>, SourceTally)>> =
        sources.iter().map(|_| None).collect();
    if threads <= 1 {
        for (slot, path) in parsed.iter_mut().zip(&sources) {
            *slot = Some(parse_source(path, config_wire));
        }
    } else {
        // One worker per thread, sources striped across workers: worker
        // `t` parses sources t, t+threads, t+2·threads, …
        std::thread::scope(|scope| {
            let sources = &sources;
            let workers: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut i = t;
                        while i < sources.len() {
                            out.push((i, parse_source(&sources[i], config_wire)));
                            i += threads;
                        }
                        out
                    })
                })
                .collect();
            for worker in workers {
                for (i, result) in worker.join().expect("cache replay worker panicked") {
                    parsed[i] = Some(result);
                }
            }
        });
    }

    // Merge in source order; a key's later occurrence replaces the
    // earlier one *at the later position*, matching serial replay.
    let mut merged: Vec<Option<Record>> = Vec::new();
    let mut last_at: HashMap<CacheKey, usize> = HashMap::new();
    for slot in parsed {
        let (records, tally) = slot.expect("every source was parsed");
        report.records += tally.records;
        report.skipped_corrupt += tally.skipped_corrupt;
        report.skipped_config += tally.skipped_config;
        for record in records {
            if let Some(at) = last_at.insert(record.key.clone(), merged.len()) {
                merged[at] = None;
            }
            merged.push(Some(record));
        }
    }
    let records: Vec<Record> = merged.into_iter().flatten().collect();
    report.loaded = records.len() as u64;
    report.wall = start.elapsed();
    (records, report)
}

#[cfg(test)]
mod tests {
    use super::super::segment::{WalOptions, WalStore};
    use super::super::test_support::*;
    use super::*;

    /// Builds a store with `n` records spread over several sealed
    /// segments, then cleanly drops it (no fold: `WalStore` alone has no
    /// janitor).
    fn seeded_store(root: &Path, n: usize) {
        let (store, _) = WalStore::open(
            root,
            "cfg",
            WalOptions {
                roll_bytes: 128,
                ..WalOptions::default()
            },
        )
        .unwrap();
        for i in 0..n {
            assert!(store.append(&format!("spec-{i}"), "0*", i as u64));
        }
        assert!(
            store.segment_count() >= 4,
            "the workload must span segments"
        );
    }

    #[test]
    fn parallel_replay_equals_serial_replay() {
        let root = temp_root("parallel");
        seeded_store(&root, 40);
        let serial = replay(&root, "cfg", 1);
        let parallel = replay(&root, "cfg", 4);
        assert_eq!(serial.threads, 1);
        assert!(parallel.threads > 1);
        assert_eq!(serial.loaded, 40);
        assert_eq!(parallel.loaded, serial.loaded);
        assert_eq!(parallel.records, serial.records);
        assert_eq!(parallel.segments, serial.segments);
        cleanup(&root);
    }

    #[test]
    fn merge_is_last_record_wins_in_segment_order() {
        let root = temp_root("lastwins");
        {
            let (store, _) = WalStore::open(
                root.as_path(),
                "cfg",
                WalOptions {
                    roll_bytes: 128,
                    ..WalOptions::default()
                },
            )
            .unwrap();
            // The same spec written repeatedly with rising cost across
            // segment boundaries: only the last write may survive.
            for cost in 1..=9 {
                assert!(store.append("spec-dup", "0*", cost));
            }
            assert!(store.append("spec-other", "0*", 100));
        }
        let manifest = Manifest::load(&root).unwrap().unwrap();
        let (records, report) = replay_sources(&root, &manifest, "cfg", 4);
        assert_eq!(report.loaded, 2);
        let dup = records
            .iter()
            .find(|r| r.key.spec() == "spec-dup")
            .expect("the duplicated key survives");
        assert_eq!(dup.result.cost, 9, "the newest write wins");
        cleanup(&root);
    }

    #[test]
    fn replay_is_read_only() {
        let root = temp_root("readonly");
        seeded_store(&root, 12);
        let listing = || {
            let mut files: Vec<_> = std::fs::read_dir(&root)
                .unwrap()
                .flatten()
                .map(|e| (e.path(), e.metadata().unwrap().len()))
                .collect();
            files.sort();
            files
        };
        let before = listing();
        let report = replay(&root, "cfg", 0);
        assert_eq!(report.loaded, 12);
        assert_eq!(before, listing(), "replay must not touch the store");
        cleanup(&root);
    }

    #[test]
    fn foreign_config_records_are_filtered_not_fatal() {
        let root = temp_root("foreign");
        {
            let (store, _) = WalStore::open(&root, "cfg-a", WalOptions::default()).unwrap();
            assert!(store.append("spec-a", "0*", 1));
        }
        {
            let (store, _) = WalStore::open(&root, "cfg-b", WalOptions::default()).unwrap();
            assert!(store.append("spec-b", "1*", 2));
        }
        let report = replay(&root, "cfg-b", 1);
        assert_eq!(report.loaded, 1);
        assert_eq!(report.skipped_config, 1);
        assert_eq!(report.records, 2);
        cleanup(&root);
    }

    #[test]
    fn non_utf8_damage_costs_only_the_damaged_lines() {
        let root = temp_root("nonutf8");
        {
            let (store, _) = WalStore::open(&root, "cfg", WalOptions::default()).unwrap();
            assert!(store.append("spec-a", "0*", 1));
            assert!(store.append("spec-b", "0*", 2));
        }
        let manifest = Manifest::load(&root).unwrap().unwrap();
        let data = super::super::segment::segment_path(&root, manifest.segments[0]);
        let mut bytes = std::fs::read(&data).unwrap();
        // Stomp bytes in the middle of the first record.
        for b in bytes.iter_mut().take(12).skip(8) {
            *b = 0xFF;
        }
        std::fs::write(&data, &bytes).unwrap();
        let report = replay(&root, "cfg", 1);
        assert_eq!(report.loaded, 1, "the undamaged record survives");
        assert_eq!(report.skipped_corrupt, 1);
        cleanup(&root);
    }
}
