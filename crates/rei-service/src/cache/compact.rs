//! Background compaction: the janitor thread and the cache-level fold
//! entry points.
//!
//! The service spawns one [`Janitor`] per cache; every tick it asks the
//! cache to [`maintain`](super::ResultCache::maintain) itself, which
//! folds history into a checkpoint when enough sealed segments piled up
//! or the disk cap is exceeded — *while serving*. Clean shutdown calls
//! [`compact`](super::ResultCache::compact) for an unconditional final
//! fold, so a gracefully stopped store is always exactly one checkpoint
//! plus an empty tail.

use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use super::ResultCache;

impl ResultCache {
    /// Folds persistent history if it is due (sealed-segment budget or
    /// disk cap exceeded); the janitor calls this every tick. Returns
    /// whether a fold ran.
    pub fn maintain(&self) -> bool {
        match &self.store {
            Some(store) if store.fold_due() => self.fold_into_checkpoint(),
            _ => false,
        }
    }

    /// Unconditionally folds history into a fresh checkpoint — the clean
    /// shutdown path (and the legacy `compact` entry point).
    pub fn compact(&self) {
        if self.store.is_some() {
            self.fold_into_checkpoint();
        }
    }

    fn fold_into_checkpoint(&self) -> bool {
        let Some(store) = &self.store else {
            return false;
        };
        // `live_lines` runs under the store lock (inside `fold`), after
        // taking the state lock. `complete` takes them in the opposite
        // *temporal* order but never holds both at once, so the only
        // nesting is here: store → state. No inversion, no deadlock —
        // and because `complete` inserts into memory before appending to
        // disk, every record the log holds is visible to the snapshot.
        let folded = store.fold(|| self.live_lines());
        if let Some(stats) = folded {
            rei_obs::log::info(
                "cache",
                "compacted history into a checkpoint",
                &[
                    ("kept", stats.kept.to_string()),
                    ("evicted", stats.evicted.to_string()),
                    ("disk_bytes", stats.disk_bytes.to_string()),
                ],
            );
        }
        folded.is_some()
    }
}

/// A stoppable background thread that periodically runs a maintenance
/// tick (cache folds, for now). Stopping joins the thread; dropping an
/// unstopped janitor stops it.
pub(crate) struct Janitor {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Janitor {
    /// Spawns the janitor, running `tick` every `interval` until
    /// [`stop`](Janitor::stop).
    pub fn start(interval: Duration, tick: impl Fn() + Send + 'static) -> Janitor {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let shared = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("rei-cache-janitor".to_string())
            .spawn(move || {
                let (flag, alarm) = &*shared;
                loop {
                    {
                        let mut stopped = flag.lock().unwrap_or_else(|e| e.into_inner());
                        while !*stopped {
                            let (guard, timeout) = alarm
                                .wait_timeout(stopped, interval)
                                .unwrap_or_else(|e| e.into_inner());
                            stopped = guard;
                            if timeout.timed_out() {
                                break;
                            }
                        }
                        if *stopped {
                            return;
                        }
                    }
                    // The flag lock is released while ticking, so stop()
                    // never waits on a fold in progress to request.
                    tick();
                }
            })
            .expect("spawning the cache janitor thread");
        Janitor {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread and joins it. Idempotent.
    pub fn stop(&mut self) {
        *self.stop.0.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.stop.1.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Janitor {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::super::segment::WalOptions;
    use super::super::test_support::*;
    use super::super::{Lookup, ResultCache};
    use super::*;
    use crate::request::JobState;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn persistent_cache(root: &std::path::Path, options: WalOptions) -> ResultCache {
        let config = rei_core::SynthConfig::default();
        let (cache, _report) = ResultCache::persistent(64, root, &config, options).unwrap();
        cache
    }

    /// Completes a fresh synthesis for the key of positive example
    /// `positive`, asserting it was not already cached.
    fn complete_fresh(cache: &ResultCache, positive: &str, cost: u64) {
        let k = key(positive);
        let state = JobState::new(None);
        assert!(
            matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss),
            "fresh specs must miss"
        );
        cache.complete(&k, &result(cost));
    }

    #[test]
    fn maintain_folds_once_enough_segments_sealed() {
        let root = temp_root("maintain");
        let cache = persistent_cache(
            &root,
            WalOptions {
                roll_bytes: 96,
                checkpoint_every: 2,
                ..WalOptions::default()
            },
        );
        let mut sealed_enough = false;
        for i in 0..12u64 {
            complete_fresh(&cache, &format!("{i:b}"), i);
            if cache.disk_stats().unwrap().segments > 2 {
                sealed_enough = true;
            }
        }
        assert!(sealed_enough, "the workload sealed segments");
        assert!(cache.maintain(), "a due fold runs");
        assert_eq!(cache.disk_stats().unwrap().checkpoints, 1);
        assert!(!cache.maintain(), "nothing due right after a fold");
        cleanup(&root);
    }

    #[test]
    fn the_janitor_ticks_until_stopped() {
        let ticks = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&ticks);
        let mut janitor = Janitor::start(Duration::from_millis(5), move || {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ticks.load(Ordering::Relaxed) < 3 && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert!(ticks.load(Ordering::Relaxed) >= 3, "the janitor ticked");
        janitor.stop();
        let after = ticks.load(Ordering::Relaxed);
        thread::sleep(Duration::from_millis(25));
        assert_eq!(
            ticks.load(Ordering::Relaxed),
            after,
            "stopped means stopped"
        );
        janitor.stop(); // idempotent
    }

    #[test]
    fn compaction_keeps_hot_keys_hitting_while_bounding_disk() {
        let root = temp_root("bound");
        let cache = persistent_cache(
            &root,
            WalOptions {
                roll_bytes: 256,
                checkpoint_every: 1,
                disk_cap_bytes: Some(600),
                ..WalOptions::default()
            },
        );
        let hot = key("0");
        complete_fresh(&cache, "0", 1);
        // Sustained overwrite traffic: many cold keys, with the hot key
        // re-hit between folds so recency keeps it alive on disk.
        for i in 2..40u64 {
            complete_fresh(&cache, &format!("{i:b}"), i);
            assert!(
                matches!(
                    cache.lookup_or_reserve(&hot, &JobState::new(None)),
                    Lookup::Hit(_)
                ),
                "the hot key keeps hitting"
            );
            cache.maintain();
            let stats = cache.disk_stats().unwrap();
            if stats.checkpoints > 0 {
                assert!(
                    stats.bytes <= 600 + 256,
                    "disk stays near the cap after folds (bytes={})",
                    stats.bytes
                );
            }
        }
        let stats = cache.disk_stats().unwrap();
        assert!(stats.checkpoints >= 1, "folds ran under the cap");
        assert!(stats.evicted > 0, "cold records were evicted");
        // The hottest record survived every disk eviction: a cold
        // restart still knows it.
        let report = super::super::replay(&root, &rei_core::SynthConfig::default().to_string(), 1);
        assert!(
            report.loaded >= 1 && report.loaded < 39,
            "disk holds a bounded subset"
        );
        cleanup(&root);
    }
}
