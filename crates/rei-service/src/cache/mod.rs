//! The result cache: in-flight request coalescing plus an optional
//! crash-safe storage engine underneath.
//!
//! Keyed by the canonical identity of a request: the specification's
//! canonical encoding ([`Spec::canonicalize`]) plus the service
//! configuration's wire string — two requests with the same key are
//! guaranteed to produce interchangeable results (same minimal cost under
//! the same cost function, backend and budgets). The 64-bit
//! [`Spec::fingerprint`] rides along for logs and metrics, but lookups
//! compare the full canonical form, so hash collisions can never serve a
//! wrong result.
//!
//! Each slot is either `Done` (a completed, successful synthesis — served
//! to later requests without a new run) or `InFlight` (a queued or running
//! job — later identical requests attach to its [`JobState`] instead of
//! enqueuing duplicate work: N concurrent identical requests trigger one
//! synthesis and N responses). Failed runs are *not* cached: a timeout or
//! deadline expiry is a property of that request's budget, not of the
//! specification.
//!
//! # Persistence
//!
//! A cache built with [`ResultCache::persistent`] spills every completed
//! result into a **segmented write-ahead log** rooted at a directory (see
//! DESIGN.md "Durability"): appends go to the newest `NNNNN.jsonl`
//! segment and roll to a fresh one — fsync on seal — at a size
//! threshold, a `MANIFEST.json` (written tmp+rename) names the live
//! files, sealed segments are periodically folded into a
//! `checkpoint.NNNNN.jsonl` by a background janitor that also enforces a
//! least-recently-hit disk byte cap, and recovery replays the checkpoint
//! plus segments on multiple threads (last record wins). A torn tail can
//! only ever corrupt the newest segment's final record; everything else
//! is either sealed-and-synced or checkpointed behind an atomic rename.
//!
//! The submodules split the storage engine along those lines:
//! [`segment`] (record/segment/manifest formats and the append path),
//! [`checkpoint`] (the crash-safe fold), [`recovery`] (parallel replay)
//! and [`compact`] (the janitor and the eviction policy).

mod checkpoint;
mod compact;
mod recovery;
mod segment;

pub(crate) use compact::Janitor;
pub use recovery::{replay, RecoveryReport};
pub use segment::{WalOptions, WalStore};

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::{Arc, Mutex};

use rei_core::{SynthConfig, SynthesisResult};
use rei_lang::Spec;

use crate::request::JobState;
use segment::Record;

/// The canonical identity of a request (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    spec: String,
    config: String,
    fingerprint: u64,
}

impl CacheKey {
    /// Builds the key for `spec` under a service configuration.
    pub fn new(spec: &Spec, config: &SynthConfig) -> Self {
        CacheKey {
            spec: spec.canonicalize(),
            config: config.to_string(),
            fingerprint: spec.fingerprint(),
        }
    }

    /// Rebuilds a key from a *stored* canonical encoding and config wire
    /// string (a persisted cache record); the fingerprint is recomputed
    /// with the same stable hash a live [`Spec`] would produce.
    pub(crate) fn from_parts(spec: String, config: String) -> Self {
        let fingerprint = rei_lang::fnv1a(spec.as_bytes());
        CacheKey {
            spec,
            config,
            fingerprint,
        }
    }

    /// The specification's canonical encoding.
    pub(crate) fn spec(&self) -> &str {
        &self.spec
    }

    /// The configuration wire string the key was built under.
    pub(crate) fn config(&self) -> &str {
        &self.config
    }

    /// The specification's stable 64-bit fingerprint (for logs/metrics).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// What the cache knows about a key.
#[derive(Debug)]
pub(crate) enum Slot {
    /// A job for this key is queued or running; identical requests attach
    /// to its completion state.
    InFlight(Arc<JobState>),
    /// A successful synthesis completed; the result is served directly.
    /// `last_hit` is the cache-local clock tick of the most recent hit
    /// (or the completion itself) — the disk eviction order.
    Done {
        result: SynthesisResult,
        last_hit: u64,
    },
}

/// The outcome of a cache lookup performed at submission time.
#[derive(Debug)]
pub(crate) enum Lookup {
    /// No entry: the caller owns the miss and must enqueue a fresh job
    /// (an `InFlight` slot with the returned state was installed).
    Miss,
    /// An identical job is in flight; share its state.
    Coalesce(Arc<JobState>),
    /// A completed result was found.
    Hit(SynthesisResult),
}

#[derive(Debug, Default)]
struct CacheState {
    map: HashMap<CacheKey, Slot>,
    /// Completion order of `Done` keys, for FIFO eviction.
    done_order: VecDeque<CacheKey>,
    /// A monotone clock bumped on every completion and cache hit; `Done`
    /// slots stamp their `last_hit` from it.
    tick: u64,
}

/// Point-in-time disk gauges of a persistent cache, for the metrics
/// snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DiskStats {
    /// Live bytes on disk (checkpoint + segments).
    pub bytes: u64,
    /// Live segment files (sealed plus the active tail).
    pub segments: u64,
    /// Records dropped after exhausting append retries.
    pub append_errors: u64,
    /// Records evicted from disk by the byte cap.
    pub evicted: u64,
    /// Checkpoint folds completed.
    pub checkpoints: u64,
}

/// The concurrent result cache (see the module docs).
#[derive(Debug)]
pub(crate) struct ResultCache {
    state: Mutex<CacheState>,
    capacity: usize,
    store: Option<WalStore>,
}

impl ResultCache {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be positive");
        ResultCache {
            state: Mutex::new(CacheState::default()),
            capacity,
            store: None,
        }
    }

    /// A cache backed by the segmented store rooted at the directory
    /// `root`: recovery warms the in-memory cache (up to `capacity`, FIFO
    /// beyond it), completed results are appended to the tail segment,
    /// and [`maintain`](ResultCache::maintain) /
    /// [`compact`](ResultCache::compact) fold history into checkpoints.
    ///
    /// Content problems (corrupt records, foreign configs, a torn tail)
    /// degrade to a colder start with a warning; only an uncreatable or
    /// unwritable directory is an error.
    pub fn persistent(
        capacity: usize,
        root: &Path,
        config: &SynthConfig,
        options: WalOptions,
    ) -> Result<(Self, RecoveryReport), String> {
        let (store, records, mut report) =
            WalStore::open_with_records(root, &config.to_string(), options)?;
        let cache = ResultCache {
            state: Mutex::new(CacheState::default()),
            capacity,
            store: Some(store),
        };
        {
            let mut state = cache.lock();
            for record in records {
                insert_done(&mut state, capacity, &record.key, &record.result);
            }
            // Count what is actually resident: records beyond capacity
            // were FIFO-evicted during the warm-up and did not warm
            // anything.
            report.loaded = state.done_order.len() as u64;
        }
        Ok((cache, report))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Disk gauges of the persistent store, `None` for in-memory caches.
    pub fn disk_stats(&self) -> Option<DiskStats> {
        self.store.as_ref().map(WalStore::disk_stats)
    }

    /// Submission-time lookup. On a miss, atomically installs an
    /// `InFlight` slot with `state` so concurrent identical submissions
    /// coalesce onto it. A hit refreshes the entry's recency (the disk
    /// eviction order is least-recently-hit first).
    pub fn lookup_or_reserve(&self, key: &CacheKey, state: &Arc<JobState>) -> Lookup {
        let mut cache = self.lock();
        cache.tick += 1;
        let tick = cache.tick;
        match cache.map.get_mut(key) {
            Some(Slot::Done { result, last_hit }) => {
                *last_hit = tick;
                Lookup::Hit(result.clone())
            }
            Some(Slot::InFlight(in_flight)) => Lookup::Coalesce(Arc::clone(in_flight)),
            None => {
                cache
                    .map
                    .insert(key.clone(), Slot::InFlight(Arc::clone(state)));
                Lookup::Miss
            }
        }
    }

    /// Records a successful synthesis for `key`, replacing its `InFlight`
    /// slot and evicting the oldest completed entry beyond capacity. A
    /// persistent cache also appends the result to its tail segment
    /// (retrying transient I/O errors with bounded backoff before
    /// dropping the record with a warning).
    pub fn complete(&self, key: &CacheKey, result: &SynthesisResult) {
        {
            let mut cache = self.lock();
            insert_done(&mut cache, self.capacity, key, result);
        }
        if let Some(store) = &self.store {
            store.append_record(&Record {
                key: key.clone(),
                result: result.clone(),
            });
        }
    }

    /// Drops the reservation of a failed job so later identical requests
    /// run fresh. Only removes the slot if it is still the in-flight
    /// reservation of `state` (a later fresh job may have re-reserved).
    pub fn forget(&self, key: &CacheKey, state: &Arc<JobState>) {
        let mut cache = self.lock();
        if let Some(Slot::InFlight(in_flight)) = cache.map.get(key) {
            if Arc::ptr_eq(in_flight, state) {
                cache.map.remove(key);
            }
        }
    }

    /// Number of completed results currently cached. `done_order` keys
    /// are 1:1 with `Done` slots (completion pushes both, eviction pops
    /// both, `forget` touches neither), so this is O(1).
    pub fn entries(&self) -> usize {
        let cache = self.lock();
        debug_assert_eq!(
            cache.done_order.len(),
            cache
                .map
                .values()
                .filter(|slot| matches!(slot, Slot::Done { .. }))
                .count()
        );
        cache.done_order.len()
    }

    /// Maximum number of completed results kept.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The live completed entries as persisted lines paired with their
    /// recency tick, oldest completion first — the checkpoint fold's
    /// input. Called by [`WalStore::fold`] *under the store lock*, so no
    /// append can slip between this snapshot and the manifest swap.
    fn live_lines(&self) -> Vec<(String, u64)> {
        let state = self.lock();
        state
            .done_order
            .iter()
            .filter_map(|key| match state.map.get(key) {
                Some(Slot::Done { result, last_hit }) => Some((
                    Record {
                        key: key.clone(),
                        result: result.clone(),
                    }
                    .to_line(),
                    *last_hit,
                )),
                _ => None,
            })
            .collect()
    }
}

/// Installs a `Done` slot, evicting the oldest completed entry beyond
/// `capacity` (shared by completion and the disk warm-up).
fn insert_done(state: &mut CacheState, capacity: usize, key: &CacheKey, result: &SynthesisResult) {
    state.tick += 1;
    let tick = state.tick;
    state.map.insert(
        key.clone(),
        Slot::Done {
            result: result.clone(),
            last_hit: tick,
        },
    );
    state.done_order.push_back(key.clone());
    while state.done_order.len() > capacity {
        let oldest = state.done_order.pop_front().expect("len checked");
        // Only evict if the slot still belongs to that completion: a
        // key can re-enter in-flight after an eviction of its own.
        if matches!(state.map.get(&oldest), Some(Slot::Done { .. })) {
            state.map.remove(&oldest);
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared helpers for the storage-engine test modules.

    use super::*;

    pub fn key(positive: &str) -> CacheKey {
        let spec = Spec::from_strs([positive], []).unwrap();
        CacheKey::new(&spec, &SynthConfig::default())
    }

    pub fn result(cost: u64) -> SynthesisResult {
        SynthesisResult {
            regex: rei_syntax::Regex::Epsilon,
            cost,
            stats: Default::default(),
        }
    }

    pub fn temp_root(tag: &str) -> std::path::PathBuf {
        let root =
            std::env::temp_dir().join(format!("rei-cache-test-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        root
    }

    pub fn cleanup(root: &Path) {
        std::fs::remove_dir_all(root).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use rei_syntax::CostFn;

    #[test]
    fn key_depends_on_spec_and_config() {
        let spec = Spec::from_strs(["10", "1"], ["0"]).unwrap();
        let reordered = Spec::from_strs(["1", "10"], ["0"]).unwrap();
        let config = SynthConfig::default();
        assert_eq!(
            CacheKey::new(&spec, &config),
            CacheKey::new(&reordered, &config)
        );
        assert_eq!(
            CacheKey::new(&spec, &config).fingerprint(),
            spec.fingerprint()
        );
        let other_config = SynthConfig::new(CostFn::new(1, 2, 3, 4, 5));
        assert_ne!(
            CacheKey::new(&spec, &config),
            CacheKey::new(&spec, &other_config)
        );
        let other_spec = Spec::from_strs(["10"], ["0"]).unwrap();
        assert_ne!(
            CacheKey::new(&spec, &config),
            CacheKey::new(&other_spec, &config)
        );
    }

    #[test]
    fn miss_reserves_then_coalesces_then_hits() {
        let cache = ResultCache::new(8);
        let state = JobState::new(None);
        let k = key("0");
        assert!(matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss));
        // A second identical submission coalesces onto the first state.
        let other = JobState::new(None);
        match cache.lookup_or_reserve(&k, &other) {
            Lookup::Coalesce(shared) => assert!(Arc::ptr_eq(&shared, &state)),
            other => panic!("expected coalesce, got {other:?}"),
        }
        cache.complete(&k, &result(3));
        match cache.lookup_or_reserve(&k, &other) {
            Lookup::Hit(hit) => assert_eq!(hit.cost, 3),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn failures_are_forgotten_not_cached() {
        let cache = ResultCache::new(8);
        let state = JobState::new(None);
        let k = key("0");
        assert!(matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss));
        cache.forget(&k, &state);
        // The next identical request misses again (fresh run).
        let retry = JobState::new(None);
        assert!(matches!(cache.lookup_or_reserve(&k, &retry), Lookup::Miss));
        // A stale forget (old state) must not drop the new reservation.
        cache.forget(&k, &state);
        let third = JobState::new(None);
        assert!(matches!(
            cache.lookup_or_reserve(&k, &third),
            Lookup::Coalesce(_)
        ));
    }

    #[test]
    fn eviction_is_fifo_over_completed_entries() {
        let cache = ResultCache::new(2);
        assert_eq!(cache.capacity(), 2);
        for (i, positive) in ["0", "1", "00"].iter().enumerate() {
            let k = key(positive);
            let state = JobState::new(None);
            assert!(matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss));
            cache.complete(&k, &result(i as u64));
        }
        assert_eq!(cache.entries(), 2);
        // The first completion was evicted, the later two survive.
        let state = JobState::new(None);
        assert!(matches!(
            cache.lookup_or_reserve(&key("0"), &state),
            Lookup::Miss
        ));
        assert!(matches!(
            cache.lookup_or_reserve(&key("1"), &JobState::new(None)),
            Lookup::Hit(_)
        ));
        assert!(matches!(
            cache.lookup_or_reserve(&key("00"), &JobState::new(None)),
            Lookup::Hit(_)
        ));
    }

    #[test]
    fn hits_refresh_recency_for_the_disk_eviction_order() {
        let cache = ResultCache::new(8);
        for positive in ["0", "1"] {
            let k = key(positive);
            let state = JobState::new(None);
            assert!(matches!(cache.lookup_or_reserve(&k, &state), Lookup::Miss));
            cache.complete(&k, &result(1));
        }
        // Hit "0": it becomes the most recently used entry.
        assert!(matches!(
            cache.lookup_or_reserve(&key("0"), &JobState::new(None)),
            Lookup::Hit(_)
        ));
        let lines = cache.live_lines();
        assert_eq!(lines.len(), 2);
        let hit_of = |needle: &str| {
            lines
                .iter()
                .find(|(line, _)| line.contains(needle))
                .map(|(_, hit)| *hit)
                .unwrap()
        };
        let k0 = key("0");
        let k1 = key("1");
        assert!(
            hit_of(k0.spec()) > hit_of(k1.spec()),
            "the hit entry is newer than the untouched one"
        );
    }
}
