//! The segmented write-ahead log: record and manifest formats, the
//! append path (with bounded retry), and segment sealing.
//!
//! A store is a directory:
//!
//! ```text
//! <root>/
//!   MANIFEST.json           {"schema":"rei-cache/manifest-v1",
//!                            "next":7,"checkpoint":4,"segments":[5,6]}
//!   checkpoint.00004.jsonl  fold of everything up to its creation
//!   00005.jsonl             sealed segment (fsync'd, never written again)
//!   00006.jsonl             the active tail — the only file appended to
//! ```
//!
//! Appends write one JSONL record (`{"spec","config","regex","cost"}`) to
//! the tail. When the tail reaches [`WalOptions::roll_bytes`] it is
//! *sealed*: `fsync` the file, create the next segment, then publish the
//! new manifest via tmp+`fsync`+rename+dir-`fsync` — the same discipline
//! every manifest and checkpoint write uses, so no crash can leave the
//! manifest naming a half-written file. A torn write can therefore only
//! ever corrupt the final record of the newest segment.
//!
//! Every open starts a fresh tail and leaves the previous one sealed
//! as-is; readers skip an unparsable final record, so a torn tail costs
//! exactly the record that lost its newline.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use rei_core::SynthesisResult;

use super::recovery::{self, RecoveryReport};
use super::{CacheKey, DiskStats};
use crate::failpoint;
use crate::json::Json;

/// The manifest file name inside a store root.
pub(crate) const MANIFEST_FILE: &str = "MANIFEST.json";
const MANIFEST_SCHEMA: &str = "rei-cache/manifest-v1";

/// Append attempts before a record is dropped with a warning.
const APPEND_ATTEMPTS: usize = 3;
/// Backoff between append attempts (transient-error smoothing, not a
/// throughput path: this only runs when a write just failed).
const APPEND_BACKOFF: [Duration; 2] = [Duration::from_millis(1), Duration::from_millis(5)];

/// Tuning knobs of the segmented store (see the module docs and
/// DESIGN.md "Durability").
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Tail size at which appends seal the segment and roll to a new one.
    pub roll_bytes: u64,
    /// Sealed-segment count at which the cache's maintenance pass folds
    /// history into a checkpoint.
    pub checkpoint_every: usize,
    /// Disk byte budget enforced at every fold by evicting
    /// least-recently-hit records first; `None` leaves disk unbounded.
    pub disk_cap_bytes: Option<u64>,
    /// Threads for parallel segment replay on recovery; `0` uses one per
    /// available core (capped at the source count).
    pub recovery_threads: usize,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            roll_bytes: 1 << 20,
            checkpoint_every: 8,
            disk_cap_bytes: None,
            recovery_threads: 0,
        }
    }
}

/// One persisted cache record, ready to write or just read.
pub(crate) struct Record {
    pub key: CacheKey,
    pub result: SynthesisResult,
}

impl Record {
    pub fn to_line(&self) -> String {
        line_of(
            self.key.spec(),
            self.key.config(),
            &self.result.regex.to_string(),
            self.result.cost,
        )
    }

    /// Parses one JSONL line. `Err` carries the reason for the warning.
    pub fn parse(line: &str) -> Result<Record, String> {
        let value = Json::parse(line).map_err(|err| err.to_string())?;
        let field = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let spec = field("spec")?.to_string();
        let config = field("config")?.to_string();
        let regex = rei_syntax::parse(field("regex")?).map_err(|err| err.to_string())?;
        let cost = value
            .get("cost")
            .and_then(Json::as_u64)
            .ok_or("missing integer field 'cost'")?;
        Ok(Record {
            key: CacheKey::from_parts(spec, config),
            result: SynthesisResult {
                regex,
                cost,
                stats: Default::default(),
            },
        })
    }
}

/// Renders one record line from raw parts (no trailing newline).
pub(crate) fn line_of(spec: &str, config: &str, regex: &str, cost: u64) -> String {
    Json::object([
        ("spec", Json::str(spec)),
        ("config", Json::str(config)),
        ("regex", Json::str(regex)),
        ("cost", Json::uint(cost)),
    ])
    .to_compact()
}

/// The file set of a store root, as published by `MANIFEST.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Manifest {
    /// Id of the live checkpoint file, if one exists.
    pub checkpoint: Option<u64>,
    /// Live segment ids, ascending; the last one is the active tail.
    pub segments: Vec<u64>,
    /// The id the next created file (segment or checkpoint) takes.
    pub next: u64,
}

impl Manifest {
    pub fn empty() -> Manifest {
        Manifest {
            checkpoint: None,
            segments: Vec::new(),
            next: 1,
        }
    }

    /// The live data files, checkpoint first then segments ascending —
    /// exactly the replay order.
    pub fn live_files(&self, root: &Path) -> Vec<PathBuf> {
        self.checkpoint
            .iter()
            .map(|id| checkpoint_path(root, *id))
            .chain(self.segments.iter().map(|id| segment_path(root, *id)))
            .collect()
    }

    /// Reads `<root>/MANIFEST.json`. `Ok(None)` when the file does not
    /// exist; `Err` when it exists but cannot be read or parsed.
    pub fn load(root: &Path) -> Result<Option<Manifest>, String> {
        let path = root.join(MANIFEST_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(err) => return Err(format!("cannot read {}: {err}", path.display())),
        };
        let value = Json::parse(&text).map_err(|err| format!("{}: {err}", path.display()))?;
        if value.get("schema").and_then(Json::as_str) != Some(MANIFEST_SCHEMA) {
            return Err(format!("{}: unknown manifest schema", path.display()));
        }
        let next = value
            .get("next")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{}: missing 'next'", path.display()))?;
        let checkpoint = match value.get("checkpoint").and_then(Json::as_u64) {
            Some(0) | None => None,
            Some(id) => Some(id),
        };
        let segments = value
            .get("segments")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{}: missing 'segments'", path.display()))?
            .iter()
            .map(|id| {
                id.as_u64()
                    .ok_or_else(|| format!("{}: non-integer segment id", path.display()))
            })
            .collect::<Result<Vec<u64>, String>>()?;
        Ok(Some(Manifest {
            checkpoint,
            segments,
            next: next.max(1),
        }))
    }

    /// Publishes the manifest atomically: write `MANIFEST.json.tmp`,
    /// `fsync` it, rename over `MANIFEST.json`, `fsync` the directory.
    pub fn store(&self, root: &Path) -> io::Result<()> {
        let text = Json::object([
            ("schema", Json::str(MANIFEST_SCHEMA)),
            ("next", Json::uint(self.next)),
            ("checkpoint", Json::uint(self.checkpoint.unwrap_or(0))),
            (
                "segments",
                Json::array(self.segments.iter().map(|id| Json::uint(*id))),
            ),
        ])
        .to_compact();
        let tmp = root.join(format!("{MANIFEST_FILE}.tmp"));
        let mut file = fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, root.join(MANIFEST_FILE))?;
        sync_dir(root)
    }

    /// Best-effort reconstruction from the directory contents, for a
    /// missing or unreadable manifest: every `NNNNN.jsonl` becomes a live
    /// segment and the highest-numbered checkpoint file is adopted.
    pub fn scan(root: &Path) -> Manifest {
        let mut manifest = Manifest::empty();
        let Ok(entries) = fs::read_dir(root) else {
            return manifest;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(".jsonl") else {
                continue;
            };
            if let Some(id) = stem.strip_prefix("checkpoint.") {
                if let Ok(id) = id.parse::<u64>() {
                    manifest.checkpoint = manifest.checkpoint.max(Some(id));
                }
            } else if let Ok(id) = stem.parse::<u64>() {
                manifest.segments.push(id);
            }
        }
        manifest.segments.sort_unstable();
        manifest.next = manifest
            .segments
            .last()
            .copied()
            .max(manifest.checkpoint)
            .unwrap_or(0)
            + 1;
        manifest
    }
}

/// Path of segment `id` inside `root`.
pub(crate) fn segment_path(root: &Path, id: u64) -> PathBuf {
    root.join(format!("{id:05}.jsonl"))
}

/// Path of checkpoint `id` inside `root`.
pub(crate) fn checkpoint_path(root: &Path, id: u64) -> PathBuf {
    root.join(format!("checkpoint.{id:05}.jsonl"))
}

/// `fsync` on a directory, making renames and file creations inside it
/// durable. A no-op on platforms where directories cannot be opened.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        fs::File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

fn open_segment(path: &Path) -> io::Result<fs::File> {
    fs::OpenOptions::new().create(true).append(true).open(path)
}

fn warn_io(message: &str, path: &Path, err: &dyn std::fmt::Display) {
    rei_obs::log::warn(
        "cache",
        message,
        &[
            ("path", path.display().to_string()),
            ("error", err.to_string()),
        ],
    );
}

pub(super) struct WalInner {
    pub manifest: Manifest,
    pub tail: fs::File,
    /// Bytes written to the tail so far (== its file length: every open
    /// and every roll starts a fresh, empty tail).
    pub tail_bytes: u64,
    /// Set when a *cut* failpoint simulated a crash: the store stops
    /// touching disk, exactly as a killed process would.
    pub dead: bool,
}

/// The disk side of a persistent cache: a segmented write-ahead log with
/// a manifest, checkpoints and crash-safe folds (see the module docs).
///
/// The type is public so benchmarks and recovery drills can build and
/// replay stores without a full service; the service's private
/// `ResultCache` is the primary consumer.
#[derive(Debug)]
pub struct WalStore {
    pub(crate) root: PathBuf,
    pub(crate) config_wire: String,
    pub(crate) options: WalOptions,
    pub(super) inner: Mutex<WalInner>,
    pub(crate) bytes: AtomicU64,
    pub(crate) append_errors: AtomicU64,
    pub(crate) evicted: AtomicU64,
    pub(crate) checkpoints: AtomicU64,
}

impl std::fmt::Debug for WalInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalInner")
            .field("manifest", &self.manifest)
            .field("tail_bytes", &self.tail_bytes)
            .field("dead", &self.dead)
            .finish_non_exhaustive()
    }
}

impl WalStore {
    /// Opens (creating if needed) the store rooted at the directory
    /// `root`, recovering existing content and starting a fresh tail
    /// segment. Appended records carry `config_wire`; recovery filters
    /// replayed records to the same wire string.
    ///
    /// Content damage (torn tails, corrupt records, an unreadable
    /// manifest) degrades recovery with warnings; only an uncreatable or
    /// unwritable directory is an error.
    pub fn open(
        root: &Path,
        config_wire: &str,
        options: WalOptions,
    ) -> Result<(WalStore, RecoveryReport), String> {
        let (store, _records, report) = WalStore::open_with_records(root, config_wire, options)?;
        Ok((store, report))
    }

    /// [`open`](WalStore::open), additionally returning the recovered
    /// records (the service warms its in-memory cache from them).
    pub(crate) fn open_with_records(
        root: &Path,
        config_wire: &str,
        options: WalOptions,
    ) -> Result<(WalStore, Vec<Record>, RecoveryReport), String> {
        migrate_legacy_file(root)?;
        fs::create_dir_all(root)
            .map_err(|err| format!("cannot create cache directory {}: {err}", root.display()))?;
        let (mut manifest, authoritative) = match Manifest::load(root) {
            Ok(Some(manifest)) => (manifest, true),
            Ok(None) => (Manifest::scan(root), false),
            Err(reason) => {
                rei_obs::log::warn(
                    "cache",
                    "manifest unreadable; recovering from a directory scan",
                    &[("reason", reason)],
                );
                (Manifest::scan(root), false)
            }
        };
        let (records, mut report) =
            recovery::replay_sources(root, &manifest, config_wire, options.recovery_threads);
        if authoritative {
            clean_orphans(root, &manifest);
        }
        // Start a fresh tail: the previous tail (which may carry a torn
        // final record) stays sealed as-is and is never appended to again.
        let tail_id = manifest.next;
        let tail_path = segment_path(root, tail_id);
        let tail = open_segment(&tail_path)
            .map_err(|err| format!("cannot create cache segment {}: {err}", tail_path.display()))?;
        manifest.segments.push(tail_id);
        manifest.next = tail_id + 1;
        manifest
            .store(root)
            .map_err(|err| format!("cannot write cache manifest in {}: {err}", root.display()))?;
        let bytes = manifest
            .live_files(root)
            .iter()
            .filter_map(|path| fs::metadata(path).ok())
            .map(|meta| meta.len())
            .sum();
        report.loaded = records.len() as u64;
        let store = WalStore {
            root: root.to_path_buf(),
            config_wire: config_wire.to_string(),
            options,
            inner: Mutex::new(WalInner {
                manifest,
                tail,
                tail_bytes: 0,
                dead: false,
            }),
            bytes: AtomicU64::new(bytes),
            append_errors: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
        };
        Ok((store, records, report))
    }

    pub(super) fn lock_inner(&self) -> std::sync::MutexGuard<'_, WalInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends one raw record under the store's own config wire string.
    /// Returns `false` when the record was dropped (exhausted retries or
    /// a simulated crash).
    pub fn append(&self, spec: &str, regex: &str, cost: u64) -> bool {
        self.append_line(line_of(spec, &self.config_wire, regex, cost))
    }

    pub(crate) fn append_record(&self, record: &Record) -> bool {
        self.append_line(record.to_line())
    }

    fn append_line(&self, mut line: String) -> bool {
        line.push('\n');
        let mut inner = self.lock_inner();
        if inner.dead {
            return false;
        }
        let mut attempt = 0;
        loop {
            attempt += 1;
            match write_line(&mut inner, &line) {
                Ok(()) => break,
                Err(WriteError::Crash) => {
                    inner.dead = true;
                    return false;
                }
                Err(WriteError::Io(err)) => {
                    // Truncate any partial write so a retry (or the next
                    // append) cannot fuse onto half a record.
                    let _ = inner.tail.set_len(inner.tail_bytes);
                    if attempt >= APPEND_ATTEMPTS {
                        self.append_errors.fetch_add(1, Ordering::Relaxed);
                        warn_io(
                            "dropping cache record after failed appends",
                            &segment_path(
                                &self.root,
                                *inner.manifest.segments.last().unwrap_or(&0),
                            ),
                            &err,
                        );
                        return false;
                    }
                    std::thread::sleep(APPEND_BACKOFF[(attempt - 1).min(APPEND_BACKOFF.len() - 1)]);
                }
            }
        }
        inner.tail_bytes += line.len() as u64;
        self.bytes.fetch_add(line.len() as u64, Ordering::Relaxed);
        if inner.tail_bytes >= self.options.roll_bytes {
            self.seal_and_roll(&mut inner);
        }
        true
    }

    /// Seals the current tail (if it holds any records) and rolls to a
    /// fresh segment, regardless of the size threshold.
    pub fn seal(&self) {
        let mut inner = self.lock_inner();
        if !inner.dead && inner.tail_bytes > 0 {
            self.seal_and_roll(&mut inner);
        }
    }

    /// The seal: `fsync` the full tail, create the successor segment,
    /// publish the manifest naming it. On any failure the store stays on
    /// the current tail and retries at the next append past the
    /// threshold.
    fn seal_and_roll(&self, inner: &mut WalInner) {
        if failpoint::cut("cache.seal.sync") {
            inner.dead = true;
            return;
        }
        if let Err(err) = inner.tail.sync_all() {
            warn_io("cannot sync segment for sealing", &self.root, &err);
            return;
        }
        if failpoint::cut("cache.seal.manifest") {
            inner.dead = true;
            return;
        }
        let id = inner.manifest.next;
        let path = segment_path(&self.root, id);
        let file = match open_segment(&path) {
            Ok(file) => file,
            Err(err) => {
                warn_io("cannot create next segment", &path, &err);
                return;
            }
        };
        let mut manifest = inner.manifest.clone();
        manifest.segments.push(id);
        manifest.next = id + 1;
        if let Err(err) = manifest.store(&self.root) {
            warn_io("cannot publish manifest for sealed segment", &path, &err);
            // The unpublished successor must not receive appends: an
            // unmanifested file full of records would be dropped as an
            // orphan on the next open.
            let _ = fs::remove_file(&path);
            return;
        }
        inner.manifest = manifest;
        inner.tail = file;
        inner.tail_bytes = 0;
    }

    /// True when history is due for a fold: enough sealed segments
    /// accumulated, or the disk cap is exceeded.
    pub(crate) fn fold_due(&self) -> bool {
        let sealed = self.lock_inner().manifest.segments.len().saturating_sub(1);
        if sealed >= self.options.checkpoint_every {
            return true;
        }
        matches!(self.options.disk_cap_bytes,
                 Some(cap) if self.bytes.load(Ordering::Relaxed) > cap)
    }

    /// Point-in-time disk gauges.
    pub(crate) fn disk_stats(&self) -> DiskStats {
        let segments = self.lock_inner().manifest.segments.len() as u64;
        DiskStats {
            bytes: self.bytes.load(Ordering::Relaxed),
            segments,
            append_errors: self.append_errors.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
        }
    }

    /// Live bytes on disk (checkpoint plus segments).
    pub fn disk_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Number of live segment files (sealed plus the active tail).
    pub fn segment_count(&self) -> usize {
        self.lock_inner().manifest.segments.len()
    }
}

enum WriteError {
    /// A *cut* failpoint simulated a crash mid-operation.
    Crash,
    Io(io::Error),
}

fn write_line(inner: &mut WalInner, line: &str) -> Result<(), WriteError> {
    if let Some(err) = failpoint::io_error("cache.append.io") {
        return Err(WriteError::Io(err));
    }
    if failpoint::cut("cache.append.torn") {
        // Half the record reaches the file, then the "process dies".
        let _ = inner.tail.write_all(&line.as_bytes()[..line.len() / 2]);
        let _ = inner.tail.flush();
        return Err(WriteError::Crash);
    }
    inner
        .tail
        .write_all(line.as_bytes())
        .map_err(WriteError::Io)?;
    inner.tail.flush().map_err(WriteError::Io)
}

/// Deletes data files the manifest does not reference: tmp files and
/// segments/checkpoints a crash left behind mid-fold. Safe because every
/// file is created *before* the manifest that names it is published, so
/// an unreferenced file never holds the only copy of a record.
fn clean_orphans(root: &Path, manifest: &Manifest) {
    let live: Vec<PathBuf> = manifest.live_files(root);
    let Ok(entries) = fs::read_dir(root) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name == MANIFEST_FILE || (!name.ends_with(".jsonl") && !name.ends_with(".tmp")) {
            continue;
        }
        if live.iter().any(|keep| keep == &path) {
            continue;
        }
        rei_obs::log::info(
            "cache",
            "removing orphaned cache file",
            &[("path", path.display().to_string())],
        );
        let _ = fs::remove_file(&path);
    }
}

/// Adopts a pre-segmentation single-file cache: the old append-only JSONL
/// at `root` becomes segment 1 of a new store directory at the same path.
fn migrate_legacy_file(root: &Path) -> Result<(), String> {
    match fs::symlink_metadata(root) {
        Ok(meta) if meta.is_file() => {}
        _ => return Ok(()),
    }
    let fail = |err: io::Error| format!("cannot migrate legacy cache {}: {err}", root.display());
    let stash = root.with_extension("legacy-migrate");
    fs::rename(root, &stash).map_err(fail)?;
    fs::create_dir_all(root).map_err(fail)?;
    fs::rename(&stash, segment_path(root, 1)).map_err(fail)?;
    let manifest = Manifest {
        checkpoint: None,
        segments: vec![1],
        next: 2,
    };
    manifest.store(root).map_err(fail)?;
    rei_obs::log::info(
        "cache",
        "migrated legacy single-file cache into the segmented layout",
        &[("path", root.display().to_string())],
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;

    fn open_store(root: &Path, options: WalOptions) -> (WalStore, RecoveryReport) {
        WalStore::open(root, "cfg", options).unwrap()
    }

    fn tiny_roll() -> WalOptions {
        WalOptions {
            roll_bytes: 96,
            ..WalOptions::default()
        }
    }

    #[test]
    fn appends_roll_into_sealed_segments_at_the_threshold() {
        let root = temp_root("roll");
        let (store, report) = open_store(&root, tiny_roll());
        assert_eq!(report.loaded, 0);
        for i in 0..6 {
            assert!(store.append(&format!("spec-{i}"), "0*", i));
        }
        assert!(
            store.segment_count() > 1,
            "96-byte rolls over 6 records must seal at least one segment"
        );
        let manifest = Manifest::load(&root).unwrap().unwrap();
        assert_eq!(manifest.segments.len(), store.segment_count());
        for id in &manifest.segments {
            assert!(
                segment_path(&root, *id).exists(),
                "manifest names real files"
            );
        }
        // A fresh open replays everything from the sealed layout.
        drop(store);
        let (_store, report) = open_store(&root, tiny_roll());
        assert_eq!(report.loaded, 6);
        assert_eq!(report.skipped_corrupt, 0);
        assert!(
            report.segments >= 2,
            "recovery replayed the sealed segments"
        );
        cleanup(&root);
    }

    #[test]
    fn manifest_round_trips_and_scan_reconstructs_it() {
        let root = temp_root("manifest");
        fs::create_dir_all(&root).unwrap();
        let manifest = Manifest {
            checkpoint: Some(3),
            segments: vec![4, 5],
            next: 6,
        };
        manifest.store(&root).unwrap();
        assert_eq!(Manifest::load(&root).unwrap().unwrap(), manifest);
        // Scan rebuilds the same picture from the files alone.
        fs::write(checkpoint_path(&root, 3), "").unwrap();
        fs::write(segment_path(&root, 4), "").unwrap();
        fs::write(segment_path(&root, 5), "").unwrap();
        fs::remove_file(root.join(MANIFEST_FILE)).unwrap();
        assert_eq!(Manifest::scan(&root), manifest);
        cleanup(&root);
    }

    #[test]
    fn a_corrupt_manifest_falls_back_to_the_directory_scan() {
        let root = temp_root("badmanifest");
        {
            let (store, _) = open_store(&root, WalOptions::default());
            assert!(store.append("spec-a", "0*", 1));
        }
        fs::write(root.join(MANIFEST_FILE), "not json at all").unwrap();
        let (_store, report) = open_store(&root, WalOptions::default());
        assert_eq!(report.loaded, 1, "scan recovery still finds the record");
        cleanup(&root);
    }

    #[test]
    fn orphaned_files_are_removed_on_open() {
        let root = temp_root("orphans");
        {
            let (store, _) = open_store(&root, WalOptions::default());
            assert!(store.append("spec-a", "0*", 1));
        }
        // A crash mid-fold can leave tmp files and unmanifested segments.
        fs::write(root.join("checkpoint.00099.jsonl.tmp"), "half").unwrap();
        fs::write(segment_path(&root, 99), "").unwrap();
        let (_store, report) = open_store(&root, WalOptions::default());
        assert_eq!(report.loaded, 1);
        assert!(!root.join("checkpoint.00099.jsonl.tmp").exists());
        assert!(!segment_path(&root, 99).exists());
        cleanup(&root);
    }

    #[test]
    fn a_legacy_single_file_cache_is_migrated_in_place() {
        let root = temp_root("legacy").join("results");
        fs::create_dir_all(root.parent().unwrap()).unwrap();
        fs::write(
            &root,
            format!("{}\n", line_of("legacy-spec", "cfg", "0*", 7)),
        )
        .unwrap();
        let (store, report) = open_store(&root, WalOptions::default());
        assert_eq!(report.loaded, 1, "the legacy record survives migration");
        assert!(root.is_dir(), "the file became a store directory");
        assert!(store.append("new-spec", "0*", 1));
        drop(store);
        let (_store, report) = open_store(&root, WalOptions::default());
        assert_eq!(report.loaded, 2);
        cleanup(root.parent().unwrap());
    }

    #[test]
    fn torn_tail_records_cost_exactly_one_record() {
        let root = temp_root("torn");
        {
            let (store, _) = open_store(&root, WalOptions::default());
            assert!(store.append("spec-a", "0*", 1));
            assert!(store.append("spec-b", "0*", 2));
        }
        // Tear the newest segment mid-record, as a crash mid-write would.
        let manifest = Manifest::load(&root).unwrap().unwrap();
        let tail = segment_path(&root, *manifest.segments.last().unwrap());
        // The freshly rolled tail is empty; the records live in the
        // previous segment. Find the file that actually has content.
        let data: Vec<PathBuf> = manifest
            .live_files(&root)
            .into_iter()
            .filter(|p| fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false))
            .collect();
        assert_eq!(data.len(), 1);
        let text = fs::read_to_string(&data[0]).unwrap();
        fs::write(&data[0], &text[..text.len() - 9]).unwrap();
        let _ = tail;
        let (_store, report) = open_store(&root, WalOptions::default());
        assert_eq!(report.loaded, 1, "the intact record survives");
        assert_eq!(report.skipped_corrupt, 1, "the torn record is counted");
        cleanup(&root);
    }

    #[test]
    fn appends_after_a_torn_tail_land_in_a_fresh_segment() {
        let root = temp_root("fresh-tail");
        {
            let (store, _) = open_store(&root, WalOptions::default());
            assert!(store.append("spec-a", "0*", 1));
        }
        // Strip the final newline: the old layout would have fused the
        // next append onto this partial tail.
        let manifest = Manifest::load(&root).unwrap().unwrap();
        let data = segment_path(&root, manifest.segments[0]);
        let text = fs::read_to_string(&data).unwrap();
        fs::write(&data, &text[..text.len() - 9]).unwrap();
        {
            let (store, _) = open_store(&root, WalOptions::default());
            assert!(store.append("spec-b", "0*", 2));
        }
        let (_store, report) = open_store(&root, WalOptions::default());
        assert_eq!(report.loaded, 1, "only the new record parses");
        assert_eq!(
            report.skipped_corrupt, 1,
            "the torn record stays lost, alone"
        );
        cleanup(&root);
    }

    #[test]
    fn record_lines_round_trip() {
        let k = key("0");
        let record = Record {
            key: k.clone(),
            result: result(7),
        };
        let parsed = Record::parse(&record.to_line()).unwrap();
        assert_eq!(parsed.key, k);
        assert_eq!(parsed.result.cost, 7);
        assert!(Record::parse("{\"spec\": \"x\"").is_err());
        assert!(
            Record::parse("{\"spec\": \"s\", \"config\": \"c\", \"regex\": \"+++\", \"cost\": 1}")
                .is_err(),
            "an unparsable regex is corrupt"
        );
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod failpoint_tests {
    use super::super::test_support::*;
    use super::*;
    use crate::failpoint;

    fn open_store(root: &Path, options: WalOptions) -> (WalStore, RecoveryReport) {
        WalStore::open(root, "cfg", options).unwrap()
    }

    #[test]
    fn transient_append_errors_are_retried_with_backoff() {
        let root = temp_root("fp-retry");
        let (store, _) = open_store(&root, WalOptions::default());
        // Two transient failures, then success: the record survives and
        // nothing is counted as dropped.
        failpoint::arm("cache.append.io", 2);
        assert!(store.append("spec-a", "0*", 1));
        assert_eq!(store.disk_stats().append_errors, 0);
        // Three failures exhaust the attempts: dropped and counted.
        failpoint::arm("cache.append.io", 3);
        assert!(!store.append("spec-b", "0*", 2));
        assert_eq!(store.disk_stats().append_errors, 1);
        failpoint::clear();
        drop(store);
        let (_store, report) = open_store(&root, WalOptions::default());
        assert_eq!(report.loaded, 1, "the retried record persisted");
        cleanup(&root);
    }

    #[test]
    fn a_torn_append_loses_only_the_torn_record() {
        let root = temp_root("fp-torn");
        let (store, _) = open_store(&root, WalOptions::default());
        assert!(store.append("spec-a", "0*", 1));
        failpoint::arm("cache.append.torn", 1);
        assert!(
            !store.append("spec-b", "0*", 2),
            "the torn append reports loss"
        );
        failpoint::clear();
        drop(store);
        let (_store, report) = open_store(&root, WalOptions::default());
        assert_eq!(
            report.loaded, 1,
            "the earlier record survives the torn tail"
        );
        assert_eq!(report.skipped_corrupt, 1);
        cleanup(&root);
    }

    #[test]
    fn a_crash_during_seal_loses_no_appended_record() {
        let root = temp_root("fp-seal");
        let options = WalOptions {
            roll_bytes: 64,
            ..WalOptions::default()
        };
        for point in ["cache.seal.sync", "cache.seal.manifest"] {
            let sub = root.join(point.replace('.', "-"));
            let (store, _) = open_store(&sub, options.clone());
            // The second append crosses 64 bytes and triggers the seal,
            // where the armed point simulates the crash.
            failpoint::arm(point, 1);
            assert!(store.append("spec-a", "0*", 1));
            assert!(store.append("spec-b", "0*", 2));
            failpoint::clear();
            drop(store);
            let (_store, report) = open_store(&sub, options.clone());
            assert_eq!(
                report.loaded, 2,
                "both acknowledged records survive a crash at {point}"
            );
        }
        cleanup(&root);
    }
}
