//! A minimal JSON document model with a writer and a parser.
//!
//! The workspace's serde shim provides neither a serializer nor a
//! deserializer, so machine-readable output (`BENCH_core.json`, the service
//! metrics snapshot) and input (`paresy serve` JSONL requests) are handled
//! by this hand-rolled module instead. It used to live inlined in the
//! benchmark harness; it is shared here so the perf baseline, the service
//! metrics endpoint and the CLI all speak the same dialect.
//!
//! Numbers are stored *preformatted* (as their textual form): the writers
//! in this workspace care about exact precision (`{:.2}` speedups, `{:.4}`
//! wall-clock seconds), and keeping the text verbatim also makes
//! parse → edit → render round trips lossless for untouched values.

use std::fmt;

/// A JSON value.
///
/// # Example
///
/// ```
/// use rei_service::json::Json;
///
/// let doc = Json::object([
///     ("name", Json::str("paresy")),
///     ("solved", Json::uint(25)),
///     ("rate", Json::fixed(0.96, 2)),
/// ]);
/// let text = doc.to_pretty();
/// let back = Json::parse(&text).unwrap();
/// assert_eq!(back.get("solved").and_then(Json::as_u64), Some(25));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept in its textual form (always a valid JSON number).
    Number(String),
    /// A string (unescaped).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object; key order is preserved (and meaningful for rendering).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// An unsigned integer.
    pub fn uint(value: u64) -> Json {
        Json::Number(value.to_string())
    }

    /// A signed integer.
    pub fn int(value: i64) -> Json {
        Json::Number(value.to_string())
    }

    /// A float rendered with exactly `decimals` fractional digits.
    /// Non-finite values become `null` (JSON has no NaN/Infinity).
    pub fn fixed(value: f64, decimals: usize) -> Json {
        if value.is_finite() {
            Json::Number(format!("{value:.decimals$}"))
        } else {
            Json::Null
        }
    }

    /// An object from `(key, value)` pairs, preserving their order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn array(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(values.into_iter().collect())
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Inserts or replaces `key` in an object (appending new keys at the
    /// end). Returns `false` (and does nothing) on non-objects.
    pub fn set(&mut self, key: &str, value: Json) -> bool {
        match self {
            Json::Object(pairs) => {
                match pairs.iter_mut().find(|(k, _)| k == key) {
                    Some((_, slot)) => *slot = value,
                    None => pairs.push((key.to_string(), value)),
                }
                true
            }
            _ => false,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(values) => Some(values),
            _ => None,
        }
    }

    /// The `(key, value)` pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders the document compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the document pretty-printed with two-space indentation and
    /// a trailing newline — the `BENCH_core.json` house style.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(raw) => out.push_str(raw),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Array(values) => {
                write_seq(out, indent, depth, '[', ']', values.len(), |out, i| {
                    values[i].write(out, indent, depth + 1);
                });
            }
            Json::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (key, value) = &pairs[i];
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str(if indent.is_some() { "\": " } else { "\":" });
                    value.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

/// Escapes a string for inclusion in a JSON document (content only, no
/// surrounding quotes).
pub fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An error produced while parsing a JSON document: a message and the
/// byte offset it refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Nesting deeper than this is rejected (guards the recursive-descent
/// parser against stack exhaustion on adversarial input).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Json {
    /// Parses a complete JSON document. Trailing whitespace is allowed,
    /// trailing content is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax error and its
    /// byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = parser.value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing content after document"));
        }
        Ok(value)
    }
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("document nested too deeply"));
        }
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character '{}'", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut values = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(values));
        }
        loop {
            values.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(values));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut chars = std::str::from_utf8(&self.bytes[self.pos..])
            .map_err(|_| self.error("invalid UTF-8"))?
            .char_indices();
        loop {
            let Some((offset, c)) = chars.next() else {
                return Err(self.error("unterminated string"));
            };
            match c {
                '"' => {
                    self.pos += offset + 1;
                    return Ok(out);
                }
                '\\' => {
                    let Some((_, escape)) = chars.next() else {
                        return Err(self.error("unterminated escape"));
                    };
                    match escape {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let high = hex4(&mut chars).ok_or_else(|| {
                                self.error("malformed \\u escape (expected 4 hex digits)")
                            })?;
                            let code = if (0xD800..0xDC00).contains(&high) {
                                // A UTF-16 surrogate pair split over two
                                // \uXXXX escapes.
                                if chars.next().map(|(_, c)| c) != Some('\\')
                                    || chars.next().map(|(_, c)| c) != Some('u')
                                {
                                    return Err(self.error("unpaired UTF-16 surrogate"));
                                }
                                let low = hex4(&mut chars)
                                    .filter(|low| (0xDC00..0xE000).contains(low))
                                    .ok_or_else(|| self.error("unpaired UTF-16 surrogate"))?;
                                0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                high
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(self.error(format!("unknown escape '\\{other}'")));
                        }
                    }
                }
                c if (c as u32) < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("malformed number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("malformed number (empty fraction)"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("malformed number (empty exponent)"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        Ok(Json::Number(raw.to_string()))
    }
}

fn hex4(chars: &mut std::str::CharIndices<'_>) -> Option<u32> {
    let mut code = 0u32;
    for _ in 0..4 {
        let (_, c) = chars.next()?;
        code = code * 16 + c.to_digit(16)?;
    }
    Some(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_render_compact_and_pretty() {
        let doc = Json::object([
            ("name", Json::str("a\"b")),
            ("n", Json::uint(3)),
            ("rate", Json::fixed(0.5, 2)),
            ("tags", Json::array([Json::str("x"), Json::Null])),
            ("empty", Json::object::<String>([])),
        ]);
        assert_eq!(
            doc.to_compact(),
            r#"{"name":"a\"b","n":3,"rate":0.50,"tags":["x",null],"empty":{}}"#
        );
        let pretty = doc.to_pretty();
        assert!(pretty.ends_with("}\n"));
        assert!(pretty.contains("  \"n\": 3,\n"), "{pretty}");
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::fixed(f64::NAN, 2), Json::Null);
        assert_eq!(Json::fixed(f64::INFINITY, 2), Json::Null);
        assert_eq!(Json::fixed(1.25, 1), Json::Number("1.2".into()));
    }

    #[test]
    fn get_and_set_edit_objects_in_place() {
        let mut doc = Json::object([("a", Json::uint(1))]);
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert!(doc.get("b").is_none());
        assert!(doc.set("a", Json::uint(2)));
        assert!(doc.set("b", Json::str("new")));
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("new"));
        assert!(!Json::Null.set("a", Json::Null));
    }

    #[test]
    fn parses_the_usual_shapes() {
        let doc = Json::parse(
            r#" { "s": "hi\n\u0041", "i": -42, "f": 3.25e2,
                 "b": [true, false, null], "o": {"k": []} } "#,
        )
        .unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi\nA"));
        assert_eq!(doc.get("i").and_then(Json::as_f64), Some(-42.0));
        assert_eq!(doc.get("f").and_then(Json::as_f64), Some(325.0));
        assert_eq!(
            doc.get("b").and_then(Json::as_array).map(<[_]>::len),
            Some(3)
        );
        assert_eq!(
            doc.get("b").unwrap().as_array().unwrap()[0].as_bool(),
            Some(true)
        );
        assert!(doc.get("o").unwrap().get("k").is_some());
    }

    #[test]
    fn surrogate_pairs_and_escapes_round_trip() {
        let text = "quote\" slash\\ nl\n tab\t emoji\u{1F600} ctl\u{1}";
        let doc = Json::Str(text.to_string());
        assert_eq!(Json::parse(&doc.to_compact()).unwrap(), doc);
        // An explicit surrogate pair parses to the astral character.
        let parsed = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(parsed.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01e",
            "1.",
            "nul",
            "\"unterminated",
            "\"bad\\q\"",
            "\"\\ud800\"",
            "{} trailing",
            "\"ctl\u{1}\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
        let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(Json::parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn numbers_keep_their_textual_form() {
        let doc = Json::parse("[1.50, 2e3]").unwrap();
        assert_eq!(doc.to_compact(), "[1.50,2e3]");
        assert_eq!(doc.as_array().unwrap()[1].as_f64(), Some(2000.0));
        assert_eq!(doc.as_array().unwrap()[0].as_u64(), None);
    }

    #[test]
    fn escape_handles_control_and_quote_characters() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
