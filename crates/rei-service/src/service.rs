//! The synthesis service: worker pool, scheduling and shutdown.
//!
//! See the crate docs for the architecture diagram. This module owns the
//! glue: `submit` runs the cache/coalesce/enqueue decision, workers drain
//! the queue through warm [`SynthSession`]s, and the deadline watchdog
//! maps per-job deadlines onto each worker session's [`CancelToken`].

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rei_core::{
    CancelToken, FusedRequest, LevelStats, Observer, ReuseDecision, SynthConfig, SynthSession,
    SynthesisError, SynthesisStats,
};
use rei_obs::Trace;

use crate::cache::{CacheKey, Janitor, Lookup, ResultCache, WalOptions};
use crate::metrics::{Gauges, Metrics, MetricsSnapshot};
use crate::queue::JobQueue;
use crate::request::{Completion, JobHandle, JobState, ResponseSource, SynthRequest};
use crate::session::{SessionEntry, SessionTable};

/// Configuration of a [`SynthService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads; each owns one warm [`SynthSession`] (and therefore
    /// one `gpu_sim::Device` when the backend is device-parallel).
    pub workers: usize,
    /// Bound of the job queue; full-queue `submit`s block (backpressure),
    /// `try_submit`s fail with [`ServiceError::QueueFull`].
    pub queue_capacity: usize,
    /// Completed results kept by the cache (FIFO eviction).
    pub cache_capacity: usize,
    /// The synthesis configuration every worker session runs. One config
    /// per pool keeps results interchangeable and therefore cacheable.
    pub synth: SynthConfig,
    /// Optional directory the result cache persists to as a segmented
    /// write-ahead log (see the persistence notes in [`crate`] docs):
    /// recovery warms the cache on start, completed results are appended
    /// to the tail segment, a janitor folds history into checkpoints
    /// while serving, and graceful shutdown runs one final fold. `None`
    /// keeps the cache in memory only. (A pre-existing single-file cache
    /// at this path is migrated into the directory layout.)
    pub cache_path: Option<PathBuf>,
    /// Storage-engine tuning of the persistent cache (segment roll size,
    /// checkpoint cadence, disk byte cap, recovery threads); ignored
    /// without [`cache_path`](ServiceConfig::cache_path).
    pub wal: WalOptions,
    /// Most queued jobs a worker may drain into one fused level sweep
    /// (see [`SynthSession::run_fused`]); every job of a pool shares its
    /// single [`SynthConfig`], so any drained jobs are fusion-eligible.
    /// `1` disables fusion (each pop runs alone).
    pub fuse_limit: usize,
    /// Most refinement sessions held open at once; opening one beyond
    /// the bound evicts the least recently used
    /// ([`ServiceError::UnknownSession`] on its next refine).
    pub session_capacity: usize,
    /// Idle time after which an open session expires: a session neither
    /// refined nor re-opened for this long is dropped lazily on the next
    /// session-table access.
    pub session_idle: Duration,
}

/// Default [`ServiceConfig::fuse_limit`]: deep enough to amortise the
/// sweep under bursts, shallow enough that one slow batch-mate cannot
/// delay many others past their deadlines.
pub const DEFAULT_FUSE_LIMIT: usize = 4;

/// Default [`ServiceConfig::session_capacity`].
pub const DEFAULT_SESSION_CAPACITY: usize = 64;

/// Default [`ServiceConfig::session_idle`].
pub const DEFAULT_SESSION_IDLE: Duration = Duration::from_secs(600);

impl ServiceConfig {
    /// A config with `workers` workers and defaults otherwise: queue
    /// capacity 64, cache capacity 1024, default [`SynthConfig`].
    pub fn new(workers: usize) -> Self {
        ServiceConfig {
            workers,
            queue_capacity: 64,
            cache_capacity: 1024,
            synth: SynthConfig::default(),
            cache_path: None,
            wal: WalOptions::default(),
            fuse_limit: DEFAULT_FUSE_LIMIT,
            session_capacity: DEFAULT_SESSION_CAPACITY,
            session_idle: DEFAULT_SESSION_IDLE,
        }
    }

    /// Replaces the synthesis configuration.
    pub fn with_synth(mut self, synth: SynthConfig) -> Self {
        self.synth = synth;
        self
    }

    /// Replaces the queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Replaces the result-cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Makes the result cache persistent under `dir`: the segmented
    /// store lives in `<dir>/results/` (created at start). The
    /// [`ShardRouter`](crate::ShardRouter) gives each of its pools a
    /// distinct store directory under the shared `dir` instead.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_path = Some(dir.into().join("results"));
        self
    }

    /// Makes the result cache persistent in exactly the directory `path`
    /// (see [`with_cache_dir`](ServiceConfig::with_cache_dir)).
    pub fn with_cache_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_path = Some(path.into());
        self
    }

    /// Replaces the persistent store's tuning (see [`WalOptions`]).
    pub fn with_wal(mut self, wal: WalOptions) -> Self {
        self.wal = wal;
        self
    }

    /// Replaces the fused-batch drain limit (`1` disables fusion).
    pub fn with_fuse_limit(mut self, limit: usize) -> Self {
        self.fuse_limit = limit;
        self
    }

    /// Replaces the open-session bound (LRU eviction beyond it).
    pub fn with_session_capacity(mut self, capacity: usize) -> Self {
        self.session_capacity = capacity;
        self
    }

    /// Replaces the session idle-expiry duration.
    pub fn with_session_idle(mut self, idle: Duration) -> Self {
        self.session_idle = idle;
        self
    }

    fn validate(&self) -> Result<(), ServiceError> {
        if self.workers == 0 {
            return Err(ServiceError::InvalidConfig(
                "service needs at least one worker".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(ServiceError::InvalidConfig(
                "queue capacity must be positive".into(),
            ));
        }
        if self.cache_capacity == 0 {
            return Err(ServiceError::InvalidConfig(
                "cache capacity must be positive".into(),
            ));
        }
        if self.fuse_limit == 0 {
            return Err(ServiceError::InvalidConfig(
                "fuse limit must be positive".into(),
            ));
        }
        if self.session_capacity == 0 {
            return Err(ServiceError::InvalidConfig(
                "session capacity must be positive".into(),
            ));
        }
        if self.wal.roll_bytes == 0 {
            return Err(ServiceError::InvalidConfig(
                "segment roll size must be positive".into(),
            ));
        }
        if self.wal.checkpoint_every == 0 {
            return Err(ServiceError::InvalidConfig(
                "checkpoint cadence must be positive".into(),
            ));
        }
        self.synth
            .validate()
            .map_err(|err| ServiceError::InvalidConfig(err.to_string()))
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::new(2)
    }
}

/// The ways the service can refuse a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The service has been closed; no new requests are accepted.
    ShuttingDown,
    /// `try_submit` found the queue at capacity.
    QueueFull,
    /// The [`ServiceConfig`] is invalid.
    InvalidConfig(String),
    /// A refine or `close_session` named a session that is not open on
    /// this pool: never opened, closed, evicted by the LRU bound, or
    /// expired idle.
    UnknownSession(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::QueueFull => write!(f, "job queue is full"),
            ServiceError::InvalidConfig(message) => {
                write!(f, "invalid service configuration: {message}")
            }
            ServiceError::UnknownSession(name) => write!(f, "unknown session '{name}'"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A queued unit of work.
struct Job {
    spec: rei_lang::Spec,
    kind: JobKind,
    state: Arc<JobState>,
    submitted: Instant,
    trace: Option<Trace>,
}

/// What a queued job does when a worker picks it up.
enum JobKind {
    /// The classic path: run the spec, publish under its cache key.
    Fresh { key: CacheKey },
    /// Refine an open session: run through the session's retained
    /// [`RefineState`](rei_core::RefineState), bypassing the result cache
    /// (a refinement's answer belongs to the session's history, not to
    /// the bare specification) and never fusing with other jobs.
    Refine { session: Arc<SessionEntry> },
}

impl Job {
    fn cache_key(&self) -> Option<&CacheKey> {
        match &self.kind {
            JobKind::Fresh { key } => Some(key),
            JobKind::Refine { .. } => None,
        }
    }
}

/// The worker-side [`Observer`] feeding per-level progress into a job's
/// trace timeline. Wall-clock per level is tracked here — the core's
/// [`LevelStats`] carries counters only.
struct TraceObserver<'a> {
    trace: Option<&'a Trace>,
    level_started: Instant,
}

impl<'a> TraceObserver<'a> {
    fn new(trace: Option<&'a Trace>) -> Self {
        TraceObserver {
            trace,
            level_started: Instant::now(),
        }
    }
}

impl Observer for TraceObserver<'_> {
    fn on_start(&mut self, _spec: &rei_lang::Spec) {
        self.level_started = Instant::now();
    }

    fn on_level(&mut self, stats: &LevelStats) {
        let wall = self.level_started.elapsed();
        self.level_started = Instant::now();
        if let Some(trace) = self.trace {
            trace.record(
                "level",
                format!(
                    "cost={} wall_us={} candidates={} unique={}",
                    stats.cost,
                    wall.as_micros(),
                    stats.candidates,
                    stats.unique
                ),
            );
        }
    }
}

/// One armed deadline: when it fires, the owning worker's cancel token
/// trips. `armed` arbitrates the race between the watchdog firing and the
/// worker finishing: whoever swaps it to `false` first acts.
struct DeadlineEntry {
    deadline: Instant,
    token: CancelToken,
    armed: AtomicBool,
}

#[derive(Default)]
struct WatchState {
    entries: Vec<Arc<DeadlineEntry>>,
    shutdown: bool,
}

/// The deadline watchdog: one thread that sleeps until the earliest armed
/// deadline and trips the corresponding worker's [`CancelToken`], turning
/// deadline expiry into the search's existing cooperative cancellation.
#[derive(Default)]
struct Watchdog {
    state: Mutex<WatchState>,
    alarm: Condvar,
}

impl Watchdog {
    fn lock(&self) -> std::sync::MutexGuard<'_, WatchState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a deadline for the run about to start on `token`.
    fn arm(&self, deadline: Instant, token: CancelToken) -> Arc<DeadlineEntry> {
        let entry = Arc::new(DeadlineEntry {
            deadline,
            token,
            armed: AtomicBool::new(true),
        });
        self.lock().entries.push(Arc::clone(&entry));
        self.alarm.notify_one();
        entry
    }

    /// Worker-side disarm after the run finished. If the watchdog won the
    /// race and is about to (or already did) trip the token, waits for the
    /// cancellation to land so the reset below cannot be overtaken and
    /// leak into the worker's next job.
    fn disarm(entry: &DeadlineEntry, token: &CancelToken) {
        if !entry.armed.swap(false, Ordering::AcqRel) {
            while !token.is_cancelled() {
                std::thread::yield_now();
            }
        }
        token.reset();
    }

    fn run(&self) {
        let mut state = self.lock();
        loop {
            let now = Instant::now();
            // Fire expired entries; keep still-armed future ones.
            let mut next: Option<Instant> = None;
            state.entries.retain(|entry| {
                if !entry.armed.load(Ordering::Acquire) {
                    return false;
                }
                if entry.deadline <= now {
                    if entry.armed.swap(false, Ordering::AcqRel) {
                        entry.token.cancel();
                    }
                    return false;
                }
                next = Some(next.map_or(entry.deadline, |n| n.min(entry.deadline)));
                true
            });
            if state.shutdown {
                return;
            }
            state = match next {
                Some(deadline) => {
                    let timeout = deadline.saturating_duration_since(Instant::now());
                    self.alarm
                        .wait_timeout(state, timeout)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
                None => self.alarm.wait(state).unwrap_or_else(|e| e.into_inner()),
            };
        }
    }

    fn shutdown(&self) {
        self.lock().shutdown = true;
        self.alarm.notify_all();
    }
}

struct Shared {
    queue: JobQueue<Job>,
    cache: ResultCache,
    metrics: Metrics,
    watchdog: Watchdog,
    synth: SynthConfig,
    /// See [`ServiceConfig::fuse_limit`].
    fuse_limit: usize,
    sessions: SessionTable,
}

/// A multi-tenant synthesis service (see the crate docs).
///
/// # Example
///
/// ```
/// use rei_service::{ServiceConfig, SynthRequest, SynthService};
/// use rei_lang::Spec;
///
/// let service = SynthService::start(ServiceConfig::new(2)).unwrap();
/// let spec = Spec::from_strs(["0", "00"], ["1", "10"]).unwrap();
/// let first = service.submit(SynthRequest::new(spec.clone())).unwrap();
/// assert!(first.wait().outcome.is_ok());
/// // An identical request is served from the result cache.
/// let second = service.submit(SynthRequest::new(spec)).unwrap();
/// let response = second.wait();
/// assert!(response.outcome.is_ok());
/// assert_eq!(response.source.as_str(), "cache");
/// let metrics = service.shutdown();
/// assert_eq!(metrics.cache_hits, 1);
/// ```
pub struct SynthService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
    janitor: Option<Janitor>,
}

impl fmt::Debug for SynthService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SynthService")
            .field("workers", &self.workers.len())
            .field("queue_depth", &self.shared.queue.len())
            .finish_non_exhaustive()
    }
}

impl SynthService {
    /// Starts the worker pool and the deadline watchdog.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidConfig`] when the configuration does not
    /// validate (zero workers/capacities, invalid [`SynthConfig`]).
    pub fn start(config: ServiceConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        let (cache, recovery) = match &config.cache_path {
            Some(path) => {
                let (cache, report) = ResultCache::persistent(
                    config.cache_capacity,
                    path,
                    &config.synth,
                    config.wal.clone(),
                )
                .map_err(ServiceError::InvalidConfig)?;
                rei_obs::log::info(
                    "service",
                    "cache recovered",
                    &[
                        ("path", path.display().to_string()),
                        ("wall_ms", format!("{:.3}", report.wall.as_secs_f64() * 1e3)),
                        ("segments", report.segments.to_string()),
                        ("records", report.records.to_string()),
                        ("loaded", report.loaded.to_string()),
                        ("threads", report.threads.to_string()),
                        ("skipped_corrupt", report.skipped_corrupt.to_string()),
                    ],
                );
                (cache, report)
            }
            None => (ResultCache::new(config.cache_capacity), Default::default()),
        };
        let metrics = Metrics::new(config.workers);
        metrics
            .disk_loaded
            .store(recovery.loaded, Ordering::Relaxed);
        metrics
            .disk_skipped_corrupt
            .store(recovery.skipped_corrupt, Ordering::Relaxed);
        metrics
            .disk_skipped_config
            .store(recovery.skipped_config, Ordering::Relaxed);
        let nanos = u64::try_from(recovery.wall.as_nanos()).unwrap_or(u64::MAX);
        metrics.recovery_nanos.store(nanos, Ordering::Relaxed);
        metrics
            .recovery_segments
            .store(recovery.segments as u64, Ordering::Relaxed);
        metrics
            .recovery_records
            .store(recovery.records, Ordering::Relaxed);
        metrics
            .recovery_threads
            .store(recovery.threads as u64, Ordering::Relaxed);
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            cache,
            metrics,
            watchdog: Watchdog::default(),
            synth: config.synth.clone(),
            fuse_limit: config.fuse_limit.max(1),
            sessions: SessionTable::new(config.session_capacity, config.session_idle),
        });
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rei-service-watchdog".into())
                .spawn(move || shared.watchdog.run())
                .expect("spawning the watchdog thread")
        };
        let workers = (0..config.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rei-service-worker-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawning a worker thread")
            })
            .collect();
        // The janitor folds sealed segments into checkpoints while the
        // pool serves; only persistent caches need one.
        let janitor = config.cache_path.is_some().then(|| {
            let shared = Arc::clone(&shared);
            Janitor::start(Duration::from_millis(250), move || {
                shared.cache.maintain();
            })
        });
        Ok(SynthService {
            shared,
            workers,
            watchdog: Some(watchdog),
            janitor,
        })
    }

    /// Submits a request, blocking while the queue is at capacity
    /// (backpressure). Requests answered by the cache or coalesced onto an
    /// in-flight job never block — they consume no queue slot.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ShuttingDown`] after [`close`](SynthService::close).
    pub fn submit(&self, request: SynthRequest) -> Result<JobHandle, ServiceError> {
        self.submit_inner(request, false)
    }

    /// Like [`submit`](SynthService::submit), but fails with
    /// [`ServiceError::QueueFull`] instead of blocking.
    pub fn try_submit(&self, request: SynthRequest) -> Result<JobHandle, ServiceError> {
        self.submit_inner(request, true)
    }

    fn submit_inner(
        &self,
        request: SynthRequest,
        fail_fast: bool,
    ) -> Result<JobHandle, ServiceError> {
        let shared = &self.shared;
        if shared.queue.is_closed() {
            Metrics::bump(&shared.metrics.rejected);
            Metrics::bump(&shared.metrics.rejected_shutdown);
            return Err(ServiceError::ShuttingDown);
        }
        Metrics::bump(&shared.metrics.submitted);
        let submitted = Instant::now();
        if request.session.is_some() {
            return self.submit_refine(request, fail_fast, submitted);
        }
        let key = CacheKey::new(&request.spec, &shared.synth);
        let state = JobState::new(request.deadline);
        match shared.cache.lookup_or_reserve(&key, &state) {
            Lookup::Hit(result) => {
                Metrics::bump(&shared.metrics.cache_hits);
                if let Some(trace) = request.trace.as_ref() {
                    trace.record("cache-hit", String::new());
                }
                shared.metrics.note_e2e(submitted.elapsed());
                Ok(JobHandle {
                    state: JobState::completed(Ok(result)),
                    source: ResponseSource::Cache,
                    submitted,
                    trace: request.trace,
                })
            }
            Lookup::Coalesce(in_flight) => {
                Metrics::bump(&shared.metrics.coalesced);
                if let Some(trace) = request.trace.as_ref() {
                    trace.record("coalesced", String::new());
                }
                // The job serves this request too, so its effective
                // deadline must be at least as lenient as this request's.
                in_flight.relax_deadline(request.deadline);
                Ok(JobHandle {
                    state: in_flight,
                    source: ResponseSource::Coalesced,
                    submitted,
                    trace: request.trace,
                })
            }
            Lookup::Miss => {
                let job = Job {
                    spec: request.spec,
                    kind: JobKind::Fresh { key: key.clone() },
                    state: Arc::clone(&state),
                    submitted,
                    trace: request.trace.clone(),
                };
                let pushed = if fail_fast {
                    shared.queue.try_push(request.priority, job)
                } else {
                    shared.queue.push(request.priority, job)
                };
                if pushed.is_err() {
                    // Roll back so the key is not stuck in flight forever.
                    shared.cache.forget(&key, &state);
                    Metrics::bump(&shared.metrics.rejected);
                    // `submitted` was optimistic; it never became a job.
                    shared.metrics.submitted.fetch_sub(1, Ordering::Relaxed);
                    return Err(if shared.queue.is_closed() {
                        Metrics::bump(&shared.metrics.rejected_shutdown);
                        ServiceError::ShuttingDown
                    } else {
                        Metrics::bump(&shared.metrics.rejected_queue_full);
                        ServiceError::QueueFull
                    });
                }
                Metrics::bump(&shared.metrics.enqueued);
                if let Some(trace) = request.trace.as_ref() {
                    trace.record("enqueued", String::new());
                }
                Ok(JobHandle {
                    state,
                    source: ResponseSource::Fresh,
                    submitted,
                    trace: request.trace,
                })
            }
        }
    }

    /// The refine path of [`submit_inner`](SynthService::submit_inner):
    /// looks the named session up and enqueues a [`JobKind::Refine`] job.
    /// Refinements bypass the result cache and coalescing — their answer
    /// depends on the session's history, not just the specification — so
    /// every refine consumes a queue slot.
    fn submit_refine(
        &self,
        request: SynthRequest,
        fail_fast: bool,
        submitted: Instant,
    ) -> Result<JobHandle, ServiceError> {
        let shared = &self.shared;
        let name = request.session.clone().expect("checked by the caller");
        let (entry, effects) = shared.sessions.get(&name);
        shared.metrics.note_session_table(effects);
        // A session belongs to the tenant that opened it: a lookup under
        // any other tenant key reads as "no such session" rather than
        // leaking another tenant's retained state.
        let entry = entry.filter(|entry| entry.tenant.as_deref() == request.tenant.as_deref());
        let Some(entry) = entry else {
            // The submission never became a job; undo the optimistic bump.
            shared.metrics.submitted.fetch_sub(1, Ordering::Relaxed);
            return Err(ServiceError::UnknownSession(name));
        };
        Metrics::bump(&shared.metrics.refines);
        let state = JobState::new(request.deadline);
        let job = Job {
            spec: request.spec,
            kind: JobKind::Refine { session: entry },
            state: Arc::clone(&state),
            submitted,
            trace: request.trace.clone(),
        };
        let pushed = if fail_fast {
            shared.queue.try_push(request.priority, job)
        } else {
            shared.queue.push(request.priority, job)
        };
        if pushed.is_err() {
            Metrics::bump(&shared.metrics.rejected);
            shared.metrics.submitted.fetch_sub(1, Ordering::Relaxed);
            shared.metrics.refines.fetch_sub(1, Ordering::Relaxed);
            return Err(if shared.queue.is_closed() {
                Metrics::bump(&shared.metrics.rejected_shutdown);
                ServiceError::ShuttingDown
            } else {
                Metrics::bump(&shared.metrics.rejected_queue_full);
                ServiceError::QueueFull
            });
        }
        Metrics::bump(&shared.metrics.enqueued);
        if let Some(trace) = request.trace.as_ref() {
            trace.record("refine-enqueued", format!("session={name}"));
        }
        Ok(JobHandle {
            state,
            source: ResponseSource::Session,
            submitted,
            trace: request.trace,
        })
    }

    /// Opens a refinement session and returns its name: the client's
    /// chosen `name` when given (re-opening a live name resets it to a
    /// blank session), a generated `s-N` name otherwise. Subsequent
    /// [`SynthRequest::with_session`] submissions refine it; sessions
    /// close explicitly ([`close_session`](SynthService::close_session)),
    /// by LRU eviction past [`ServiceConfig::session_capacity`], or by
    /// idle expiry after [`ServiceConfig::session_idle`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::ShuttingDown`] after [`close`](SynthService::close).
    pub fn open_session(
        &self,
        name: Option<&str>,
        tenant: Option<&str>,
    ) -> Result<String, ServiceError> {
        if self.shared.queue.is_closed() {
            return Err(ServiceError::ShuttingDown);
        }
        let (entry, effects) = self.shared.sessions.open(name, tenant);
        self.shared.metrics.note_session_table(effects);
        Metrics::bump(&self.shared.metrics.sessions_opened);
        Ok(entry.name.clone())
    }

    /// Closes a refinement session, dropping its retained state.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when no such session is open.
    pub fn close_session(&self, name: &str) -> Result<(), ServiceError> {
        let (closed, effects) = self.shared.sessions.close(name);
        self.shared.metrics.note_session_table(effects);
        if closed {
            Metrics::bump(&self.shared.metrics.sessions_closed);
            Ok(())
        } else {
            Err(ServiceError::UnknownSession(name.to_string()))
        }
    }

    /// Number of currently open refinement sessions.
    pub fn open_sessions(&self) -> usize {
        self.shared.sessions.live()
    }

    /// Closes the service to new submissions. Queued and in-flight jobs
    /// keep running; call [`shutdown`](SynthService::shutdown) (or drop the
    /// service) to drain and join.
    pub fn close(&self) {
        self.shared.queue.close();
    }

    /// Graceful shutdown: closes the queue, lets the workers drain every
    /// queued job, joins them and returns the final metrics. Jobs
    /// submitted before the call are all answered.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.join();
        self.metrics()
    }

    /// A point-in-time snapshot of the service metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(Gauges {
            queue_depth: self.shared.queue.len(),
            queue_capacity: self.shared.queue.capacity(),
            cache_entries: self.shared.cache.entries(),
            cache_capacity: self.shared.cache.capacity(),
            sessions_live: self.shared.sessions.live(),
            disk: self.shared.cache.disk_stats().unwrap_or_default(),
        })
    }

    /// The synthesis configuration the pool runs.
    pub fn synth_config(&self) -> &SynthConfig {
        &self.shared.synth
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    fn join(&mut self) {
        self.shared.queue.close();
        let drained = !self.workers.is_empty();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.watchdog.shutdown();
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
        // Stop background folds before the final one: compaction must
        // not race itself.
        if let Some(mut janitor) = self.janitor.take() {
            janitor.stop();
        }
        if drained {
            // Every completion has landed: fold the persistent store (if
            // any) into one checkpoint holding exactly the live entries.
            self.shared.cache.compact();
        }
    }
}

impl Drop for SynthService {
    fn drop(&mut self) {
        self.join();
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut session =
        SynthSession::new(shared.synth.clone()).expect("service config was validated at start");
    let token = session.cancel_token();
    while let Some(job) = shared.queue.pop() {
        let mut carried = Some(job);
        while let Some(job) = carried.take() {
            if matches!(job.kind, JobKind::Refine { .. }) {
                // Refinements run alone: their outcome depends on the
                // session's retained state, so they cannot share a fused
                // sweep with stateless batch-mates.
                run_refine(shared, index, &mut session, &token, job);
                continue;
            }
            // Batch fusion: whatever accumulated behind this job is
            // drained (up to the fuse limit) and run as one fused level
            // sweep. Every job of the pool runs the same `SynthConfig`,
            // so any fresh job the drain picks up is fusion-eligible by
            // construction; a drained refine job is carried over and runs
            // alone right after the batch.
            let mut batch = vec![job];
            while batch.len() < shared.fuse_limit && carried.is_none() {
                match shared.queue.try_pop() {
                    Some(extra) if matches!(extra.kind, JobKind::Fresh { .. }) => batch.push(extra),
                    Some(extra) => carried = Some(extra),
                    None => break,
                }
            }
            if batch.len() == 1 {
                run_single(
                    shared,
                    index,
                    &mut session,
                    &token,
                    batch.pop().expect("one job"),
                );
            } else {
                run_fused_batch(shared, index, &mut session, batch);
            }
        }
    }
}

/// The refine path: one job, run through the session entry's shared
/// [`RefineState`](rei_core::RefineState) on this worker's warm
/// `SynthSession`. Deadlines map onto the worker token exactly like the
/// single path; the result cache is bypassed in both directions.
fn run_refine(
    shared: &Shared,
    index: usize,
    session: &mut SynthSession,
    token: &CancelToken,
    job: Job,
) {
    let JobKind::Refine { session: entry } = &job.kind else {
        unreachable!("run_refine only receives refine jobs");
    };
    let waited = job.submitted.elapsed();
    shared.metrics.note_wait(waited);

    let expired_in_queue = job.state.deadline().is_some_and(|d| Instant::now() >= d);
    let (outcome, reuse, ran) = if expired_in_queue {
        (
            Err(SynthesisError::Cancelled {
                stats: SynthesisStats::default(),
            }),
            None,
            Duration::ZERO,
        )
    } else {
        let watchdog_entry = job
            .state
            .deadline()
            .map(|deadline| shared.watchdog.arm(deadline, token.clone()));
        let started = Instant::now();
        let mut observer = TraceObserver::new(job.trace.as_ref());
        let mut state = entry.state.lock().unwrap_or_else(|e| e.into_inner());
        let result = session.refine_with_state(&mut state, &job.spec, &mut observer);
        drop(state);
        let ran = started.elapsed();
        if let Some(watchdog_entry) = watchdog_entry {
            Watchdog::disarm(&watchdog_entry, token);
        }
        (result.outcome, Some(result.reuse), ran)
    };
    shared.metrics.note_run(ran);

    match reuse {
        Some(ReuseDecision::Unchanged) => Metrics::bump(&shared.metrics.refine_unchanged),
        Some(ReuseDecision::Warm { .. }) => Metrics::bump(&shared.metrics.refine_warm),
        Some(ReuseDecision::Cold(_)) => Metrics::bump(&shared.metrics.refine_cold),
        None => {}
    }
    if let Some(trace) = job.trace.as_ref() {
        if let Some(reuse) = reuse {
            trace.record(
                "refine",
                format!("session={} reuse={}", entry.name, reuse.label()),
            );
        }
    }
    shared.metrics.note_job(&outcome, expired_in_queue);
    shared.metrics.note_e2e(job.submitted.elapsed());
    shared.metrics.set_worker_stats(index, *session.stats());
    job.state.complete(Completion {
        outcome,
        finished: Instant::now(),
        ran,
        reuse,
    });
}

/// The classic path: one job, one level sweep, deadline mapped onto the
/// worker session's own cancel token.
fn run_single(
    shared: &Shared,
    index: usize,
    session: &mut SynthSession,
    token: &CancelToken,
    job: Job,
) {
    let waited = job.submitted.elapsed();
    shared.metrics.note_wait(waited);

    let expired_in_queue = job.state.deadline().is_some_and(|d| Instant::now() >= d);
    let (outcome, ran) = if expired_in_queue {
        // Fail fast: an overdue job must not occupy the worker.
        (
            Err(SynthesisError::Cancelled {
                stats: SynthesisStats::default(),
            }),
            Duration::ZERO,
        )
    } else {
        // Re-sample: a coalescer may have relaxed the deadline since
        // the expiry check above.
        let entry = job
            .state
            .deadline()
            .map(|deadline| shared.watchdog.arm(deadline, token.clone()));
        let started = Instant::now();
        let mut observer = TraceObserver::new(job.trace.as_ref());
        let outcome = session.run_with(&job.spec, &mut observer);
        let ran = started.elapsed();
        if let Some(entry) = entry {
            Watchdog::disarm(&entry, token);
        }
        (outcome, ran)
    };
    shared.metrics.note_run(ran);

    let key = job.cache_key().expect("single jobs are fresh");
    match &outcome {
        Ok(result) => {
            shared.cache.complete(key, result);
            if let Some(trace) = job.trace.as_ref() {
                trace.record("cache-append", String::new());
            }
        }
        Err(_) => shared.cache.forget(key, &job.state),
    }
    shared.metrics.note_job(&outcome, expired_in_queue);
    shared.metrics.note_e2e(job.submitted.elapsed());
    shared.metrics.set_worker_stats(index, *session.stats());
    job.state.complete(Completion {
        outcome,
        finished: Instant::now(),
        ran,
        reuse: None,
    });
}

/// One drained member of a fused batch: its job, the member-private
/// cancel token the sweep polls at chunk boundaries, and the watchdog
/// entry mapping the job's deadline onto that token.
struct FusedJob {
    job: Job,
    token: CancelToken,
    entry: Option<Arc<DeadlineEntry>>,
}

/// The fusion path: the drained jobs advance through one fused level
/// sweep. Per-member deadlines stay honored — each member gets its own
/// watchdog-armed token, so an expiring member retires at the next chunk
/// boundary without poisoning its batch-mates — and a member whose
/// winner lands early completes inside the sweep while the rest run on.
fn run_fused_batch(shared: &Shared, index: usize, session: &mut SynthSession, batch: Vec<Job>) {
    // Jobs whose deadline already expired while queued fail fast, exactly
    // like on the single path: they must not hold a sweep slot.
    let mut members: Vec<FusedJob> = Vec::with_capacity(batch.len());
    for job in batch {
        shared.metrics.note_wait(job.submitted.elapsed());
        if job.state.deadline().is_some_and(|d| Instant::now() >= d) {
            let outcome = Err(SynthesisError::Cancelled {
                stats: SynthesisStats::default(),
            });
            if let Some(key) = job.cache_key() {
                shared.cache.forget(key, &job.state);
            }
            shared.metrics.note_job(&outcome, true);
            shared.metrics.note_e2e(job.submitted.elapsed());
            job.state.complete(Completion {
                outcome,
                finished: Instant::now(),
                ran: Duration::ZERO,
                reuse: None,
            });
            continue;
        }
        let token = CancelToken::new();
        // Re-sample: a coalescer may have relaxed the deadline since the
        // expiry check above.
        let entry = job
            .state
            .deadline()
            .map(|deadline| shared.watchdog.arm(deadline, token.clone()));
        members.push(FusedJob { job, token, entry });
    }
    if members.is_empty() {
        return;
    }

    Metrics::bump(&shared.metrics.fused_batches);
    shared
        .metrics
        .fused_requests
        .fetch_add(members.len() as u64, Ordering::Relaxed);

    let batch_size = members.len();
    for member in &members {
        if let Some(trace) = member.job.trace.as_ref() {
            trace.record("fused", format!("batch={batch_size}"));
        }
    }

    let started = Instant::now();
    let outcomes = {
        let requests: Vec<FusedRequest<'_>> = members
            .iter()
            .map(|member| FusedRequest::new(&member.job.spec).with_cancel(member.token.clone()))
            .collect();
        let mut observers: Vec<TraceObserver<'_>> = members
            .iter()
            .map(|member| TraceObserver::new(member.job.trace.as_ref()))
            .collect();
        let mut dyn_observers: Vec<&mut dyn Observer> = observers
            .iter_mut()
            .map(|observer| observer as &mut dyn Observer)
            .collect();
        session.run_fused_with(&requests, &mut dyn_observers)
    };
    // The sweep is shared work: one wall-clock interval serves the whole
    // batch, so every member reports the same `ran`.
    let ran = started.elapsed();
    shared.metrics.note_run(ran);

    for (member, outcome) in members.into_iter().zip(outcomes) {
        if let Some(entry) = &member.entry {
            Watchdog::disarm(entry, &member.token);
        }
        let key = member.job.cache_key().expect("fused jobs are fresh");
        match &outcome {
            Ok(result) => {
                shared.cache.complete(key, result);
                if let Some(trace) = member.job.trace.as_ref() {
                    trace.record("cache-append", String::new());
                }
            }
            Err(_) => shared.cache.forget(key, &member.job.state),
        }
        shared.metrics.note_job(&outcome, false);
        shared.metrics.note_e2e(member.job.submitted.elapsed());
        member.job.state.complete(Completion {
            outcome,
            finished: Instant::now(),
            ran,
            reuse: None,
        });
    }
    shared.metrics.set_worker_stats(index, *session.stats());
}

#[cfg(test)]
mod tests {
    use super::*;
    use rei_lang::Spec;

    fn tiny_spec() -> Spec {
        Spec::from_strs(["0", "00"], ["1", "10"]).unwrap()
    }

    #[test]
    fn invalid_configs_are_rejected_up_front() {
        for (config, needle) in [
            (ServiceConfig::new(0), "worker"),
            (ServiceConfig::new(1).with_queue_capacity(0), "queue"),
            (ServiceConfig::new(1).with_cache_capacity(0), "cache"),
            (
                ServiceConfig::new(1).with_synth(SynthConfig::default().with_allowed_error(2.0)),
                "allowed error",
            ),
        ] {
            let err = SynthService::start(config).unwrap_err();
            match err {
                ServiceError::InvalidConfig(message) => {
                    assert!(message.contains(needle), "{message}")
                }
                other => panic!("expected InvalidConfig, got {other}"),
            }
        }
    }

    #[test]
    fn fresh_cache_and_coalesced_sources_are_reported() {
        let service = SynthService::start(ServiceConfig::new(1)).unwrap();
        let first = service.submit(SynthRequest::new(tiny_spec())).unwrap();
        assert_eq!(first.source(), ResponseSource::Fresh);
        let first = first.wait();
        assert!(first.outcome.is_ok());
        assert!(first.ran > Duration::ZERO);

        let second = service.submit(SynthRequest::new(tiny_spec())).unwrap();
        assert_eq!(second.source(), ResponseSource::Cache);
        let second = second.wait();
        assert_eq!(
            second.outcome.as_ref().unwrap().cost,
            first.outcome.as_ref().unwrap().cost
        );
        assert_eq!(second.ran, Duration::ZERO);

        let metrics = service.shutdown();
        assert_eq!(metrics.submitted, 2);
        assert_eq!(metrics.cache_hits, 1);
        assert_eq!(metrics.completed, 1);
        assert_eq!(metrics.solved, 1);
        assert_eq!(metrics.workers.iter().map(|w| w.runs).sum::<u64>(), 1);
    }

    #[test]
    fn close_rejects_new_requests_but_drains_old_ones() {
        let service = SynthService::start(ServiceConfig::new(1)).unwrap();
        let accepted = service.submit(SynthRequest::new(tiny_spec())).unwrap();
        service.close();
        let rejected = service.submit(SynthRequest::new(tiny_spec())).unwrap_err();
        assert_eq!(rejected, ServiceError::ShuttingDown);
        assert!(accepted.wait().outcome.is_ok());
        let metrics = service.shutdown();
        assert_eq!(metrics.rejected, 1);
        assert_eq!(metrics.rejected_shutdown, 1);
        assert_eq!(metrics.rejected_queue_full, 0);
        assert_eq!(metrics.completed, 1);
    }

    #[test]
    fn expired_deadline_fails_fast_without_running() {
        let service = SynthService::start(ServiceConfig::new(1)).unwrap();
        let handle = service
            .submit(SynthRequest::new(tiny_spec()).with_timeout(Duration::ZERO))
            .unwrap();
        let response = handle.wait();
        assert!(matches!(
            response.outcome,
            Err(SynthesisError::Cancelled { .. })
        ));
        assert_eq!(response.ran, Duration::ZERO);
        let metrics = service.shutdown();
        assert_eq!(metrics.deadline_expired, 1);
        assert_eq!(metrics.workers.iter().map(|w| w.runs).sum::<u64>(), 0);
    }

    #[test]
    fn sessions_open_refine_and_close() {
        let service = SynthService::start(ServiceConfig::new(1)).unwrap();
        let named = service.open_session(Some("s"), None).unwrap();
        assert_eq!(named, "s");
        let generated = service.open_session(None, None).unwrap();
        assert!(generated.starts_with("s-"), "{generated}");
        assert_eq!(service.open_sessions(), 2);

        // First refine of a blank session: a cold run that seeds it.
        let base = Spec::from_strs(["0", "00"], ["1"]).unwrap();
        let first = service
            .submit(SynthRequest::new(base.clone()).with_session("s"))
            .unwrap();
        assert_eq!(first.source(), ResponseSource::Session);
        let first = first.wait();
        assert!(first.outcome.is_ok());
        assert!(
            matches!(first.reuse, Some(ReuseDecision::Cold(_))),
            "{first:?}"
        );

        // Strengthening the spec reuses the session's retained state.
        let stronger = Spec::from_strs(["0", "00"], ["1", "10"]).unwrap();
        let second = service
            .submit(SynthRequest::new(stronger).with_session("s"))
            .unwrap()
            .wait();
        assert!(second.outcome.is_ok());
        assert!(second.reuse.expect("a refine reports reuse").reused());
        assert_eq!(
            first.outcome.unwrap().cost,
            second.outcome.unwrap().cost,
            "0* answers both specs minimally"
        );

        // Unknown names and other tenants' names are refused alike.
        let unknown = service
            .submit(SynthRequest::new(base.clone()).with_session("nope"))
            .unwrap_err();
        assert!(
            matches!(unknown, ServiceError::UnknownSession(_)),
            "{unknown}"
        );
        let foreign = service
            .submit(
                SynthRequest::new(base)
                    .with_session("s")
                    .with_tenant("acme"),
            )
            .unwrap_err();
        assert!(
            matches!(foreign, ServiceError::UnknownSession(_)),
            "{foreign}"
        );

        service.close_session("s").unwrap();
        assert!(matches!(
            service.close_session("s"),
            Err(ServiceError::UnknownSession(_))
        ));

        let metrics = service.shutdown();
        assert_eq!(metrics.sessions_opened, 2);
        assert_eq!(metrics.sessions_closed, 1);
        assert_eq!(metrics.refines, 2);
        assert_eq!(metrics.refine_cold, 1);
        assert_eq!(metrics.refine_warm, 1);
        assert_eq!(
            metrics.sessions_live, 1,
            "the generated session stayed open"
        );
    }

    #[test]
    fn session_capacity_evicts_least_recently_used() {
        let service = SynthService::start(ServiceConfig::new(1).with_session_capacity(1)).unwrap();
        service.open_session(Some("old"), None).unwrap();
        service.open_session(Some("new"), None).unwrap();
        assert_eq!(service.open_sessions(), 1);
        let err = service
            .submit(SynthRequest::new(tiny_spec()).with_session("old"))
            .unwrap_err();
        assert!(matches!(err, ServiceError::UnknownSession(_)), "{err}");
        let ok = service
            .submit(SynthRequest::new(tiny_spec()).with_session("new"))
            .unwrap();
        assert!(ok.wait().outcome.is_ok());
        let metrics = service.shutdown();
        assert_eq!(metrics.sessions_evicted, 1);
    }

    #[test]
    fn idle_sessions_expire_and_are_counted() {
        let service =
            SynthService::start(ServiceConfig::new(1).with_session_idle(Duration::ZERO)).unwrap();
        service.open_session(Some("brief"), None).unwrap();
        let err = service
            .submit(SynthRequest::new(tiny_spec()).with_session("brief"))
            .unwrap_err();
        assert!(matches!(err, ServiceError::UnknownSession(_)), "{err}");
        let metrics = service.shutdown();
        assert_eq!(metrics.sessions_expired, 1);
        assert_eq!(metrics.sessions_live, 0);
    }

    #[test]
    fn watchdog_disarm_waits_out_the_race() {
        let watchdog = Watchdog::default();
        let token = CancelToken::new();
        let entry = watchdog.arm(Instant::now() + Duration::from_secs(60), token.clone());
        // Simulate the watchdog winning the race: it swapped `armed` and
        // is about to cancel from another thread.
        assert!(entry.armed.swap(false, Ordering::AcqRel));
        let firing = std::thread::spawn({
            let token = token.clone();
            move || {
                std::thread::sleep(Duration::from_millis(10));
                token.cancel();
            }
        });
        Watchdog::disarm(&entry, &token);
        firing.join().unwrap();
        // disarm waited for the cancel and then reset: the token is clean
        // for the worker's next job.
        assert!(!token.is_cancelled());
    }

    #[test]
    fn watchdog_fires_only_armed_expired_entries() {
        let shared = Arc::new(Watchdog::default());
        let thread = std::thread::spawn({
            let shared = Arc::clone(&shared);
            move || shared.run()
        });
        let soon = CancelToken::new();
        let later = CancelToken::new();
        shared.arm(Instant::now() + Duration::from_millis(10), soon.clone());
        let far = shared.arm(Instant::now() + Duration::from_secs(60), later.clone());
        let deadline = Instant::now() + Duration::from_secs(5);
        while !soon.is_cancelled() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(soon.is_cancelled(), "expired entry must fire");
        assert!(!later.is_cancelled(), "future entry must not fire");
        Watchdog::disarm(&far, &later);
        shared.shutdown();
        thread.join().unwrap();
    }
}
