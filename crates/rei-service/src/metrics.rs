//! The service metrics registry and its JSON snapshot.
//!
//! Counters are lock-free atomics bumped on the submit and worker paths;
//! the per-worker [`SessionStats`] rollup sits behind a mutex the workers
//! touch once per job. [`MetricsSnapshot`] is a consistent-enough point
//! read (counters are sampled independently) rendered as hand-rolled JSON
//! in the `BENCH_core.json` house style via [`crate::json`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use rei_core::{SessionStats, SynthesisError};
use rei_obs::{Histogram, HistogramSnapshot};

use crate::cache::DiskStats;
use crate::json::Json;

/// The live counters of a running service.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub submitted: AtomicU64,
    pub cache_hits: AtomicU64,
    pub coalesced: AtomicU64,
    pub rejected: AtomicU64,
    pub rejected_queue_full: AtomicU64,
    pub rejected_shutdown: AtomicU64,
    pub enqueued: AtomicU64,
    pub completed: AtomicU64,
    pub solved: AtomicU64,
    pub failed: AtomicU64,
    pub deadline_expired: AtomicU64,
    pub cancelled: AtomicU64,
    pub fused_batches: AtomicU64,
    pub fused_requests: AtomicU64,
    pub sessions_opened: AtomicU64,
    pub sessions_closed: AtomicU64,
    pub sessions_evicted: AtomicU64,
    pub sessions_expired: AtomicU64,
    pub refines: AtomicU64,
    pub refine_unchanged: AtomicU64,
    pub refine_warm: AtomicU64,
    pub refine_cold: AtomicU64,
    pub wait_ns: AtomicU64,
    pub run_ns: AtomicU64,
    pub wait_hist: Histogram,
    pub run_hist: Histogram,
    pub e2e_hist: Histogram,
    pub disk_loaded: AtomicU64,
    pub disk_skipped_corrupt: AtomicU64,
    pub disk_skipped_config: AtomicU64,
    /// Recovery facts, set once at start (nanoseconds / counts of the
    /// replay that warmed the cache).
    pub recovery_nanos: AtomicU64,
    pub recovery_segments: AtomicU64,
    pub recovery_records: AtomicU64,
    pub recovery_threads: AtomicU64,
    pub worker_stats: Mutex<Vec<SessionStats>>,
}

impl Metrics {
    pub fn new(workers: usize) -> Self {
        Metrics {
            worker_stats: Mutex::new(vec![SessionStats::default(); workers]),
            ..Metrics::default()
        }
    }

    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_duration(counter: &AtomicU64, duration: Duration) {
        let nanos = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        counter.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Accounts one job's queue wait: total plus histogram sample.
    pub fn note_wait(&self, waited: Duration) {
        Metrics::add_duration(&self.wait_ns, waited);
        self.wait_hist.record_duration(waited);
    }

    /// Accounts one run's synthesis wall-clock.
    pub fn note_run(&self, ran: Duration) {
        Metrics::add_duration(&self.run_ns, ran);
        self.run_hist.record_duration(ran);
    }

    /// Accounts one request's end-to-end latency (submit → completion).
    pub fn note_e2e(&self, elapsed: Duration) {
        self.e2e_hist.record_duration(elapsed);
    }

    /// Accounts one finished fresh job.
    pub fn note_job(&self, outcome: &Result<impl Sized, SynthesisError>, expired_in_queue: bool) {
        Metrics::bump(&self.completed);
        match outcome {
            Ok(_) => Metrics::bump(&self.solved),
            Err(err) => {
                Metrics::bump(&self.failed);
                if matches!(err, SynthesisError::Cancelled { .. }) {
                    Metrics::bump(&self.cancelled);
                    if expired_in_queue {
                        Metrics::bump(&self.deadline_expired);
                    }
                }
            }
        }
    }

    /// Accounts what a session-table access did (evictions, expiries).
    pub fn note_session_table(&self, effects: crate::session::TableEffects) {
        self.sessions_evicted
            .fetch_add(effects.evicted, Ordering::Relaxed);
        self.sessions_expired
            .fetch_add(effects.expired, Ordering::Relaxed);
    }

    /// Publishes the cumulative session stats of worker `index`.
    pub fn set_worker_stats(&self, index: usize, stats: SessionStats) {
        let mut rollup = self.worker_stats.lock().unwrap_or_else(|e| e.into_inner());
        rollup[index] = stats;
    }

    /// Builds a point-in-time snapshot; the queue/cache gauges are passed
    /// in by the service, which owns those structures.
    pub fn snapshot(&self, gauges: Gauges) -> MetricsSnapshot {
        let load = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: load(&self.submitted),
            cache_hits: load(&self.cache_hits),
            coalesced: load(&self.coalesced),
            rejected: load(&self.rejected),
            rejected_queue_full: load(&self.rejected_queue_full),
            rejected_shutdown: load(&self.rejected_shutdown),
            admitted: 0,
            rate_limited: 0,
            lane_waits: 0,
            enqueued: load(&self.enqueued),
            completed: load(&self.completed),
            solved: load(&self.solved),
            failed: load(&self.failed),
            deadline_expired: load(&self.deadline_expired),
            cancelled: load(&self.cancelled),
            fused_batches: load(&self.fused_batches),
            fused_requests: load(&self.fused_requests),
            sessions_opened: load(&self.sessions_opened),
            sessions_closed: load(&self.sessions_closed),
            sessions_evicted: load(&self.sessions_evicted),
            sessions_expired: load(&self.sessions_expired),
            sessions_live: gauges.sessions_live,
            refines: load(&self.refines),
            refine_unchanged: load(&self.refine_unchanged),
            refine_warm: load(&self.refine_warm),
            refine_cold: load(&self.refine_cold),
            wait_total: Duration::from_nanos(load(&self.wait_ns)),
            run_total: Duration::from_nanos(load(&self.run_ns)),
            wait: self.wait_hist.snapshot(),
            run: self.run_hist.snapshot(),
            e2e: self.e2e_hist.snapshot(),
            disk_loaded: load(&self.disk_loaded),
            disk_skipped_corrupt: load(&self.disk_skipped_corrupt),
            disk_skipped_config: load(&self.disk_skipped_config),
            disk_bytes: gauges.disk.bytes,
            disk_segments: gauges.disk.segments,
            disk_append_errors: gauges.disk.append_errors,
            disk_evicted: gauges.disk.evicted,
            disk_checkpoints: gauges.disk.checkpoints,
            recovery_wall: Duration::from_nanos(load(&self.recovery_nanos)),
            recovery_segments: load(&self.recovery_segments),
            recovery_records: load(&self.recovery_records),
            recovery_threads: load(&self.recovery_threads),
            workers: self
                .worker_stats
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            queue_depth: gauges.queue_depth,
            queue_capacity: gauges.queue_capacity,
            cache_entries: gauges.cache_entries,
            cache_capacity: gauges.cache_capacity,
        }
    }
}

/// Point-in-time gauges owned by other service structures.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Gauges {
    pub queue_depth: usize,
    pub queue_capacity: usize,
    pub cache_entries: usize,
    pub cache_capacity: usize,
    pub sessions_live: usize,
    /// Disk gauges of the persistent store (all zero in-memory).
    pub disk: DiskStats,
}

/// A consistent-enough point read of every service counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests accepted by `submit`/`try_submit` (including cache hits).
    pub submitted: u64,
    /// Requests answered from the result cache without a new run.
    pub cache_hits: u64,
    /// Requests attached to an identical in-flight job.
    pub coalesced: u64,
    /// Requests rejected, for any reason (the sum of the two splits
    /// below). Kept as a total so dashboards reading older snapshots
    /// keep working.
    pub rejected: u64,
    /// Rejections caused by a full queue on `try_submit` — backpressure.
    pub rejected_queue_full: u64,
    /// Rejections because the pool was shutting down.
    pub rejected_shutdown: u64,
    /// Admission-stage decisions (zero for a bare pool — only a
    /// [`FairShare`](crate::FairShare) front-end counts these; the shard
    /// router's rollup carries them via
    /// [`RouterSnapshot::admission`](crate::RouterSnapshot)).
    pub admitted: u64,
    /// Requests refused by admission policy (token bucket or in-flight
    /// cap) — these never reach a pool, so they are *not* part of
    /// [`rejected`](MetricsSnapshot::rejected).
    pub rate_limited: u64,
    /// Admitted requests that parked in a fair-share lane because their
    /// shard queue was full on arrival.
    pub lane_waits: u64,
    /// Fresh jobs placed on the queue.
    pub enqueued: u64,
    /// Fresh jobs finished by a worker.
    pub completed: u64,
    /// Fresh jobs that produced an expression.
    pub solved: u64,
    /// Fresh jobs that failed (timeout, cancelled, not found, OOM).
    pub failed: u64,
    /// Failed jobs whose deadline expired while still queued.
    pub deadline_expired: u64,
    /// Failed jobs that ended with `Cancelled` (deadline or token).
    pub cancelled: u64,
    /// Fused level sweeps a worker ran after draining several queued
    /// jobs of its (single) pool configuration into one batch.
    pub fused_batches: u64,
    /// Jobs answered by those fused sweeps. Under load this exceeds
    /// [`fused_batches`](MetricsSnapshot::fused_batches): N jobs complete
    /// in fewer than N level sweeps.
    pub fused_requests: u64,
    /// Refinement sessions opened (`session.open`, including re-opens).
    pub sessions_opened: u64,
    /// Sessions closed explicitly (`session.close`).
    pub sessions_closed: u64,
    /// Sessions evicted by the LRU bound
    /// ([`ServiceConfig::session_capacity`](crate::ServiceConfig)).
    pub sessions_evicted: u64,
    /// Sessions dropped by idle expiry
    /// ([`ServiceConfig::session_idle`](crate::ServiceConfig)).
    pub sessions_expired: u64,
    /// Sessions open right now (a gauge, not a counter).
    pub sessions_live: usize,
    /// Refine requests accepted onto the queue.
    pub refines: u64,
    /// Refines whose spec was unchanged: answered by replaying the
    /// session's previous outcome, no admission re-run.
    pub refine_unchanged: u64,
    /// Refines that reused the session's retained search state (fast-path
    /// winner re-check or a resumed enumeration).
    pub refine_warm: u64,
    /// Refines that fell back to a cold run (spec not a strengthening,
    /// alphabet/budget change, closure growth, no retained state).
    pub refine_cold: u64,
    /// Total queue wait across fresh jobs.
    pub wait_total: Duration,
    /// Total synthesis wall-clock across fresh jobs.
    pub run_total: Duration,
    /// Queue-wait latency distribution (nanosecond samples, one per
    /// fresh job) — the percentile source for `latency_ms.wait_p*`.
    pub wait: HistogramSnapshot,
    /// Synthesis wall-clock distribution, one sample per fresh run.
    pub run: HistogramSnapshot,
    /// End-to-end (submit → completion) latency distribution. Cache
    /// hits record here too, so this is the request-level view;
    /// coalesced riders share their leader's sample.
    pub e2e: HistogramSnapshot,
    /// Persisted results that warmed the cache at start (0 without a
    /// cache directory).
    pub disk_loaded: u64,
    /// Corrupt or truncated persisted records skipped at start.
    pub disk_skipped_corrupt: u64,
    /// Persisted records skipped because they were written under a
    /// different pool configuration.
    pub disk_skipped_config: u64,
    /// Live bytes in the persistent store (checkpoint + segments).
    pub disk_bytes: u64,
    /// Live segment files of the persistent store.
    pub disk_segments: u64,
    /// Records dropped after exhausting the bounded append retries.
    pub disk_append_errors: u64,
    /// Records evicted from disk by the byte cap (least recently hit
    /// first, at checkpoint folds).
    pub disk_evicted: u64,
    /// Checkpoint folds completed since start.
    pub disk_checkpoints: u64,
    /// Wall-clock of the recovery replay that warmed the cache at start.
    pub recovery_wall: Duration,
    /// Segment files that replay covered.
    pub recovery_segments: u64,
    /// Records parsed by the replay (before last-wins merging).
    pub recovery_records: u64,
    /// Threads the replay ran on.
    pub recovery_threads: u64,
    /// Cumulative `SessionStats` per worker, in worker order.
    pub workers: Vec<SessionStats>,
    /// Jobs currently queued.
    pub queue_depth: usize,
    /// Queue capacity.
    pub queue_capacity: usize,
    /// Completed results currently cached.
    pub cache_entries: usize,
    /// Result-cache capacity.
    pub cache_capacity: usize,
}

impl MetricsSnapshot {
    /// Fraction of answered requests that were served without a new
    /// synthesis (cache hits plus coalesced), in `[0, 1]`.
    pub fn reuse_rate(&self) -> f64 {
        let reused = self.cache_hits + self.coalesced;
        if self.submitted == 0 {
            0.0
        } else {
            reused as f64 / self.submitted as f64
        }
    }

    /// Fraction of submissions answered straight from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.submitted as f64
        }
    }

    /// Adds another snapshot's counters into this one: counters and
    /// durations sum, the worker rollups concatenate (in pool order), and
    /// the queue/cache gauges sum. This is the cross-pool rollup of the
    /// shard router — the rollup of N pool snapshots reads exactly like
    /// the snapshot of one big pool.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        self.submitted += other.submitted;
        self.cache_hits += other.cache_hits;
        self.coalesced += other.coalesced;
        self.rejected += other.rejected;
        self.rejected_queue_full += other.rejected_queue_full;
        self.rejected_shutdown += other.rejected_shutdown;
        self.admitted += other.admitted;
        self.rate_limited += other.rate_limited;
        self.lane_waits += other.lane_waits;
        self.enqueued += other.enqueued;
        self.completed += other.completed;
        self.solved += other.solved;
        self.failed += other.failed;
        self.deadline_expired += other.deadline_expired;
        self.cancelled += other.cancelled;
        self.fused_batches += other.fused_batches;
        self.fused_requests += other.fused_requests;
        self.sessions_opened += other.sessions_opened;
        self.sessions_closed += other.sessions_closed;
        self.sessions_evicted += other.sessions_evicted;
        self.sessions_expired += other.sessions_expired;
        self.sessions_live += other.sessions_live;
        self.refines += other.refines;
        self.refine_unchanged += other.refine_unchanged;
        self.refine_warm += other.refine_warm;
        self.refine_cold += other.refine_cold;
        self.wait_total += other.wait_total;
        self.run_total += other.run_total;
        self.wait.merge(&other.wait);
        self.run.merge(&other.run);
        self.e2e.merge(&other.e2e);
        self.disk_loaded += other.disk_loaded;
        self.disk_skipped_corrupt += other.disk_skipped_corrupt;
        self.disk_skipped_config += other.disk_skipped_config;
        self.disk_bytes += other.disk_bytes;
        self.disk_segments += other.disk_segments;
        self.disk_append_errors += other.disk_append_errors;
        self.disk_evicted += other.disk_evicted;
        self.disk_checkpoints += other.disk_checkpoints;
        // Pools recover concurrently at start, so the rollup's recovery
        // wall is the slowest pool, not the sum.
        self.recovery_wall = self.recovery_wall.max(other.recovery_wall);
        self.recovery_segments += other.recovery_segments;
        self.recovery_records += other.recovery_records;
        self.recovery_threads = self.recovery_threads.max(other.recovery_threads);
        self.workers.extend(other.workers.iter().copied());
        self.queue_depth += other.queue_depth;
        self.queue_capacity += other.queue_capacity;
        self.cache_entries += other.cache_entries;
        self.cache_capacity += other.cache_capacity;
    }

    /// Mean queue wait of fresh jobs.
    pub fn mean_wait(&self) -> Duration {
        checked_div(self.wait_total, self.completed)
    }

    /// Mean synthesis wall-clock of fresh jobs.
    pub fn mean_run(&self) -> Duration {
        checked_div(self.run_total, self.completed)
    }

    /// The snapshot as a JSON document (schema
    /// `rei-service/metrics-v1`).
    pub fn to_json(&self) -> Json {
        let ms = |d: Duration| Json::fixed(d.as_secs_f64() * 1e3, 3);
        Json::object([
            ("schema", Json::str("rei-service/metrics-v1")),
            (
                "requests",
                Json::object([
                    ("submitted", Json::uint(self.submitted)),
                    ("cache_hits", Json::uint(self.cache_hits)),
                    ("coalesced", Json::uint(self.coalesced)),
                    ("rejected", Json::uint(self.rejected)),
                    ("rejected_queue_full", Json::uint(self.rejected_queue_full)),
                    ("rejected_shutdown", Json::uint(self.rejected_shutdown)),
                    ("admitted", Json::uint(self.admitted)),
                    ("rate_limited", Json::uint(self.rate_limited)),
                    ("lane_waits", Json::uint(self.lane_waits)),
                    ("reuse_rate", Json::fixed(self.reuse_rate(), 4)),
                ]),
            ),
            (
                "jobs",
                Json::object([
                    ("enqueued", Json::uint(self.enqueued)),
                    ("completed", Json::uint(self.completed)),
                    ("solved", Json::uint(self.solved)),
                    ("failed", Json::uint(self.failed)),
                    ("cancelled", Json::uint(self.cancelled)),
                    ("deadline_expired", Json::uint(self.deadline_expired)),
                    ("fused_batches", Json::uint(self.fused_batches)),
                    ("fused_requests", Json::uint(self.fused_requests)),
                ]),
            ),
            (
                "latency_ms",
                Json::object([
                    // The bare means predate the histograms and are
                    // deprecated (see DESIGN.md); prefer the counted
                    // percentiles below.
                    ("wait_total", ms(self.wait_total)),
                    ("wait_mean", ms(self.mean_wait())),
                    ("run_total", ms(self.run_total)),
                    ("run_mean", ms(self.mean_run())),
                    ("wait_count", Json::uint(self.wait.count)),
                    ("wait_p50", quantile_ms(&self.wait, 0.50)),
                    ("wait_p95", quantile_ms(&self.wait, 0.95)),
                    ("wait_p99", quantile_ms(&self.wait, 0.99)),
                    ("run_count", Json::uint(self.run.count)),
                    ("run_p50", quantile_ms(&self.run, 0.50)),
                    ("run_p95", quantile_ms(&self.run, 0.95)),
                    ("run_p99", quantile_ms(&self.run, 0.99)),
                    ("e2e_count", Json::uint(self.e2e.count)),
                    ("e2e_p50", quantile_ms(&self.e2e, 0.50)),
                    ("e2e_p95", quantile_ms(&self.e2e, 0.95)),
                    ("e2e_p99", quantile_ms(&self.e2e, 0.99)),
                ]),
            ),
            (
                "sessions",
                Json::object([
                    ("opened", Json::uint(self.sessions_opened)),
                    ("closed", Json::uint(self.sessions_closed)),
                    ("evicted", Json::uint(self.sessions_evicted)),
                    ("expired", Json::uint(self.sessions_expired)),
                    ("live", Json::uint(self.sessions_live as u64)),
                    ("refines", Json::uint(self.refines)),
                    ("refine_unchanged", Json::uint(self.refine_unchanged)),
                    ("refine_warm", Json::uint(self.refine_warm)),
                    ("refine_cold", Json::uint(self.refine_cold)),
                ]),
            ),
            (
                "queue",
                Json::object([
                    ("depth", Json::uint(self.queue_depth as u64)),
                    ("capacity", Json::uint(self.queue_capacity as u64)),
                ]),
            ),
            (
                "cache",
                Json::object([
                    ("entries", Json::uint(self.cache_entries as u64)),
                    ("capacity", Json::uint(self.cache_capacity as u64)),
                    ("disk_loaded", Json::uint(self.disk_loaded)),
                    (
                        "disk_skipped_corrupt",
                        Json::uint(self.disk_skipped_corrupt),
                    ),
                    ("disk_skipped_config", Json::uint(self.disk_skipped_config)),
                    ("disk_bytes", Json::uint(self.disk_bytes)),
                    ("disk_segments", Json::uint(self.disk_segments)),
                    ("disk_append_errors", Json::uint(self.disk_append_errors)),
                    ("disk_evicted", Json::uint(self.disk_evicted)),
                    ("disk_checkpoints", Json::uint(self.disk_checkpoints)),
                ]),
            ),
            (
                "recovery",
                Json::object([
                    ("wall_ms", ms(self.recovery_wall)),
                    ("segments", Json::uint(self.recovery_segments)),
                    ("records", Json::uint(self.recovery_records)),
                    ("threads", Json::uint(self.recovery_threads)),
                ]),
            ),
            (
                "workers",
                Json::array(self.workers.iter().enumerate().map(|(i, w)| {
                    Json::object([
                        ("worker", Json::uint(i as u64)),
                        ("runs", Json::uint(w.runs)),
                        ("solved", Json::uint(w.solved)),
                        ("failed", Json::uint(w.failed)),
                        ("candidates", Json::uint(w.candidates_generated)),
                        ("unique_languages", Json::uint(w.unique_languages)),
                        ("elapsed_ms", ms(w.elapsed)),
                    ])
                })),
            ),
        ])
    }
}

/// A histogram quantile (nanoseconds) rendered as milliseconds.
fn quantile_ms(hist: &HistogramSnapshot, q: f64) -> Json {
    Json::fixed(hist.quantile(q) as f64 / 1e6, 3)
}

fn checked_div(total: Duration, count: u64) -> Duration {
    if count == 0 {
        Duration::ZERO
    } else {
        total / u32::try_from(count).unwrap_or(u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rei_core::SynthesisStats;

    #[test]
    fn job_accounting_distinguishes_outcomes() {
        let metrics = Metrics::new(1);
        metrics.note_job(&Ok::<_, SynthesisError>(()), false);
        metrics.note_job(
            &Err::<(), _>(SynthesisError::Cancelled {
                stats: SynthesisStats::default(),
            }),
            true,
        );
        metrics.note_job(
            &Err::<(), _>(SynthesisError::Timeout {
                budget: Duration::from_secs(1),
                stats: SynthesisStats::default(),
            }),
            false,
        );
        let snapshot = metrics.snapshot(Gauges::default());
        assert_eq!(snapshot.completed, 3);
        assert_eq!(snapshot.solved, 1);
        assert_eq!(snapshot.failed, 2);
        assert_eq!(snapshot.cancelled, 1);
        assert_eq!(snapshot.deadline_expired, 1);
    }

    #[test]
    fn rates_and_means_handle_zero_denominators() {
        let snapshot = Metrics::new(0).snapshot(Gauges::default());
        assert_eq!(snapshot.reuse_rate(), 0.0);
        assert_eq!(snapshot.cache_hit_rate(), 0.0);
        assert_eq!(snapshot.mean_wait(), Duration::ZERO);
        assert_eq!(snapshot.mean_run(), Duration::ZERO);
    }

    #[test]
    fn latency_histograms_absorb_and_report_percentiles() {
        let metrics = Metrics::new(1);
        for ms in [1u64, 2, 10, 100] {
            metrics.note_wait(Duration::from_millis(ms));
            metrics.note_run(Duration::from_millis(2 * ms));
            metrics.note_e2e(Duration::from_millis(3 * ms));
        }
        let snapshot = metrics.snapshot(Gauges::default());
        assert_eq!(snapshot.wait.count, 4);
        assert_eq!(snapshot.run.count, 4);
        assert_eq!(snapshot.e2e.count, 4);
        // p99 lands in the 100ms bucket (≤ 6.25% above).
        let p99_ms = snapshot.wait.quantile(0.99) as f64 / 1e6;
        assert!((100.0..=107.0).contains(&p99_ms), "{p99_ms}");
        let latency = snapshot.to_json();
        let latency = latency.get("latency_ms").unwrap();
        assert_eq!(latency.get("wait_count").and_then(Json::as_u64), Some(4));
        let p50 = latency.get("wait_p50").and_then(Json::as_f64).unwrap();
        assert!((2.0..=2.2).contains(&p50), "{p50}");
        assert!(latency.get("e2e_p95").is_some());
        // Absorbing another pool's snapshot merges the samples; equal
        // distributions keep their quantiles.
        let mut rollup = snapshot.clone();
        rollup.absorb(&snapshot);
        assert_eq!(rollup.wait.count, 8);
        assert_eq!(rollup.wait.quantile(0.5), snapshot.wait.quantile(0.5));
    }

    #[test]
    fn snapshot_json_has_the_expected_sections() {
        let metrics = Metrics::new(2);
        Metrics::bump(&metrics.submitted);
        Metrics::bump(&metrics.submitted);
        Metrics::bump(&metrics.cache_hits);
        Metrics::bump(&metrics.fused_batches);
        metrics.fused_requests.fetch_add(3, Ordering::Relaxed);
        Metrics::add_duration(&metrics.wait_ns, Duration::from_millis(4));
        metrics.set_worker_stats(
            1,
            SessionStats {
                runs: 3,
                solved: 3,
                ..SessionStats::default()
            },
        );
        let snapshot = metrics.snapshot(Gauges {
            queue_depth: 1,
            queue_capacity: 64,
            cache_entries: 1,
            cache_capacity: 256,
            sessions_live: 0,
            disk: DiskStats::default(),
        });
        assert!((snapshot.reuse_rate() - 0.5).abs() < 1e-9);
        let json = snapshot.to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("rei-service/metrics-v1")
        );
        assert_eq!(
            json.get("requests")
                .and_then(|r| r.get("submitted"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            json.get("queue")
                .and_then(|q| q.get("capacity"))
                .and_then(Json::as_u64),
            Some(64)
        );
        assert_eq!(
            json.get("jobs")
                .and_then(|j| j.get("fused_batches"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            json.get("jobs")
                .and_then(|j| j.get("fused_requests"))
                .and_then(Json::as_u64),
            Some(3)
        );
        let mut rollup = snapshot.clone();
        rollup.absorb(&snapshot);
        assert_eq!(rollup.fused_batches, 2);
        assert_eq!(rollup.fused_requests, 6);
        let workers = json.get("workers").and_then(Json::as_array).unwrap();
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[1].get("runs").and_then(Json::as_u64), Some(3));
        // The snapshot renders as parseable JSON.
        let text = json.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), json);
    }
}
