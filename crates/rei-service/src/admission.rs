//! Fair-share admission in front of the shard router.
//!
//! The router alone is first-come-first-served per pool: one hot tenant
//! can fill a queue and starve everyone hashed to the same shard. The
//! [`FairShare`] stage sits between a front-end (the TCP listener of
//! `rei-net`, a test harness, …) and the [`ShardRouter`] and makes two
//! decisions per request:
//!
//! 1. **Policy** — a per-tenant token bucket ([`TenantPolicy::rate`]
//!    tokens per second up to [`TenantPolicy::burst`]) plus an in-flight
//!    cap ([`TenantPolicy::max_inflight`]). A request that finds no token
//!    or too many of its tenant's requests still unanswered is refused
//!    with [`AdmissionError::RateLimited`] *immediately* — an explicit
//!    reply, never a hang.
//! 2. **Fairness** — an admitted request that meets a full shard queue
//!    does not busy-fight for the slot. It parks in its tenant's *lane*,
//!    and lanes drain by weighted deficit round robin: each visit of the
//!    scheduler grants a lane up to [`TenantPolicy::weight`] submissions
//!    before moving on, so a tenant with weight 3 gets three queue slots
//!    for every one a weight-1 tenant gets while both are backlogged.
//!
//! Unknown tenants (and requests without a tenant key) fall under the
//! configurable default policy, which is unlimited unless narrowed.
//! Admission decisions are counted ([`AdmissionCounters`]) and surface
//! in the router metrics rollup.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rei_obs::{Histogram, HistogramSnapshot, TraceRegistry};

use crate::request::{JobHandle, SynthRequest};
use crate::router::ShardRouter;
use crate::service::ServiceError;

/// The admission policy of one tenant (or the default for unknown ones).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// Deficit-round-robin weight of the tenant's lane: up to `weight`
    /// backlogged submissions are granted per scheduler visit. Must be
    /// at least 1.
    pub weight: u32,
    /// Token-bucket refill rate in requests per second;
    /// `f64::INFINITY` disables rate limiting.
    pub rate: f64,
    /// Token-bucket capacity — the burst a quiet tenant may fire at
    /// once; `f64::INFINITY` disables the cap.
    pub burst: f64,
    /// Maximum requests of the tenant admitted but not yet answered
    /// (the [`InflightGuard`] returned by [`FairShare::submit`] marks
    /// completion when dropped).
    pub max_inflight: usize,
}

impl TenantPolicy {
    /// The policy that never refuses: weight 1, unlimited rate, burst
    /// and in-flight.
    pub const fn unlimited() -> Self {
        TenantPolicy {
            weight: 1,
            rate: f64::INFINITY,
            burst: f64::INFINITY,
            max_inflight: usize::MAX,
        }
    }

    /// A rate-limited policy: `rate` requests per second with a burst of
    /// `burst`, weight 1, unlimited in-flight.
    pub fn limited(rate: f64, burst: f64) -> Self {
        TenantPolicy {
            rate,
            burst,
            ..TenantPolicy::unlimited()
        }
    }

    /// Replaces the lane weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Replaces the in-flight cap.
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight = max_inflight;
        self
    }

    fn validate(&self, tenant: &str) -> Result<(), ServiceError> {
        let fail = |message: String| {
            Err(ServiceError::InvalidConfig(format!(
                "tenant policy '{tenant}': {message}"
            )))
        };
        if self.weight == 0 {
            return fail("weight must be at least 1".into());
        }
        // NaN must fail too, hence the explicit is_nan arms.
        if self.rate.is_nan() || self.rate <= 0.0 {
            return fail(format!("rate must be positive, got {}", self.rate));
        }
        if self.burst.is_nan() || self.burst < 1.0 {
            return fail(format!("burst must be at least 1, got {}", self.burst));
        }
        if self.max_inflight == 0 {
            return fail("max_inflight must be at least 1".into());
        }
        Ok(())
    }
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy::unlimited()
    }
}

/// Configuration of a [`FairShare`] admission stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdmissionConfig {
    /// Policy of tenants without an explicit entry (and of requests
    /// carrying no tenant key, which share one anonymous bucket).
    pub default_policy: TenantPolicy,
    /// Explicit per-tenant policies.
    pub tenants: Vec<(String, TenantPolicy)>,
}

impl AdmissionConfig {
    /// The all-unlimited configuration.
    pub fn new() -> Self {
        AdmissionConfig::default()
    }

    /// Replaces the default policy.
    pub fn with_default_policy(mut self, policy: TenantPolicy) -> Self {
        self.default_policy = policy;
        self
    }

    /// Adds (or replaces) the policy of `tenant`.
    pub fn with_tenant(mut self, tenant: impl Into<String>, policy: TenantPolicy) -> Self {
        let tenant = tenant.into();
        self.tenants.retain(|(name, _)| *name != tenant);
        self.tenants.push((tenant, policy));
        self
    }

    fn validate(&self) -> Result<(), ServiceError> {
        self.default_policy.validate("<default>")?;
        for (tenant, policy) in &self.tenants {
            policy.validate(tenant)?;
        }
        Ok(())
    }
}

/// Why [`FairShare::submit`] refused a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The tenant's token bucket is empty or its in-flight cap is
    /// reached. Front-ends reply `rejected: rate_limited`.
    RateLimited,
    /// The router itself refused (shutting down).
    Service(ServiceError),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::RateLimited => write!(f, "tenant is over its admission policy"),
            AdmissionError::Service(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Counts of admission decisions, for the metrics rollup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionCounters {
    /// Requests that passed policy and reached a shard queue.
    pub admitted: u64,
    /// Requests refused by a token bucket or in-flight cap.
    pub rate_limited: u64,
    /// Admitted requests that had to park in a lane because their shard
    /// queue was full when they arrived.
    pub lane_waits: u64,
}

/// Decrements its tenant's in-flight count when dropped and records the
/// tenant's admission-to-release latency. Hold it until the request's
/// response has been delivered.
#[derive(Debug)]
pub struct InflightGuard {
    slot: Arc<AtomicUsize>,
    stats: Arc<TenantStats>,
    admitted: Instant,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.stats.latency.record_duration(self.admitted.elapsed());
        self.slot.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Lock-free per-tenant decision counters plus the latency histogram the
/// [`InflightGuard`] feeds on drop.
#[derive(Debug, Default)]
struct TenantStats {
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    latency: Histogram,
}

/// A point-in-time snapshot of one tenant's admission activity, from
/// [`FairShare::tenant_counters`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantCounters {
    /// Requests the tenant offered (admitted + rejected).
    pub submitted: u64,
    /// Requests that passed policy and reached a shard queue.
    pub admitted: u64,
    /// Requests refused by the token bucket or in-flight cap.
    pub rejected: u64,
    /// Admission-to-response-delivered latency (guard lifetime).
    pub latency: HistogramSnapshot,
}

/// Live token-bucket state of one tenant.
struct TenantState {
    policy: TenantPolicy,
    tokens: f64,
    refilled: Instant,
    inflight: Arc<AtomicUsize>,
    stats: Arc<TenantStats>,
}

impl TenantState {
    fn new(policy: TenantPolicy, now: Instant) -> Self {
        TenantState {
            policy,
            tokens: policy.burst,
            refilled: now,
            inflight: Arc::new(AtomicUsize::new(0)),
            stats: Arc::new(TenantStats::default()),
        }
    }

    fn refill(&mut self, now: Instant) {
        let elapsed = now.saturating_duration_since(self.refilled).as_secs_f64();
        self.refilled = now;
        if self.policy.rate.is_infinite() {
            self.tokens = self.policy.burst;
        } else {
            self.tokens = (self.tokens + elapsed * self.policy.rate).min(self.policy.burst);
        }
    }
}

/// One tenant's queue of backlogged (admitted, shard-queue-full) tickets.
struct Lane {
    tenant: String,
    weight: u32,
    deficit: u32,
    tickets: VecDeque<u64>,
}

#[derive(Default)]
struct ShareState {
    tenants: HashMap<String, TenantState>,
    lanes: Vec<Lane>,
    cursor: usize,
    grant: Option<u64>,
    next_ticket: u64,
}

impl ShareState {
    fn lane_mut(&mut self, tenant: &str, weight: u32) -> &mut Lane {
        if let Some(index) = self.lanes.iter().position(|l| l.tenant == tenant) {
            return &mut self.lanes[index];
        }
        self.lanes.push(Lane {
            tenant: tenant.to_string(),
            weight,
            // A new lane arrives with a full quantum, like a lane the
            // round-robin cursor just reached.
            deficit: weight,
            tickets: VecDeque::new(),
        });
        self.lanes.last_mut().expect("just pushed")
    }

    /// Picks the next ticket to grant by weighted deficit round robin:
    /// the cursor lane's head is granted while the lane has deficit, the
    /// cursor moves on (refreshing the next lane's quantum) when it runs
    /// out. No-op while a grant is outstanding.
    fn advance(&mut self) {
        if self.grant.is_some() {
            return;
        }
        self.lanes.retain(|lane| !lane.tickets.is_empty());
        if self.lanes.is_empty() {
            self.cursor = 0;
            return;
        }
        if self.cursor >= self.lanes.len() {
            self.cursor = 0;
        }
        loop {
            let lane = &mut self.lanes[self.cursor];
            if lane.deficit > 0 {
                lane.deficit -= 1;
                self.grant = Some(*lane.tickets.front().expect("lanes are non-empty"));
                return;
            }
            // Quantum spent: move on; the lane the cursor arrives at gets
            // a fresh quantum (>= 1), so this loop serves within two
            // iterations.
            self.cursor = (self.cursor + 1) % self.lanes.len();
            let next = &mut self.lanes[self.cursor];
            next.deficit = next.weight;
        }
    }

    /// Removes `ticket` from its lane (grant consumed, or the waiter is
    /// bailing out) and clears the grant if it was this ticket's.
    fn retire(&mut self, ticket: u64) {
        for lane in &mut self.lanes {
            lane.tickets.retain(|t| *t != ticket);
        }
        if self.grant == Some(ticket) {
            self.grant = None;
        }
    }

    /// The granted ticket's shard queue was still full: yield the turn so
    /// other lanes (whose shards may have room) are not blocked behind
    /// this one.
    fn yield_turn(&mut self, tenant: &str) {
        if let Some(lane) = self.lanes.iter_mut().find(|l| l.tenant == tenant) {
            lane.deficit = 0;
        }
        self.grant = None;
        self.cursor += 1;
    }
}

/// The fair-share admission stage (see the module docs).
///
/// # Example
///
/// ```
/// use rei_service::{
///     AdmissionConfig, AdmissionError, FairShare, RouterConfig, ServiceConfig, ShardRouter,
///     SynthRequest, TenantPolicy,
/// };
/// use rei_lang::Spec;
///
/// let router = ShardRouter::start(RouterConfig::identical(2, ServiceConfig::new(1))).unwrap();
/// let fair = FairShare::new(
///     AdmissionConfig::new().with_tenant("throttled", TenantPolicy::limited(1.0, 1.0)),
/// )
/// .unwrap();
/// let spec = Spec::from_strs(["0", "00"], ["1"]).unwrap();
/// // The first request spends the tenant's one burst token …
/// let (handle, guard) = fair
///     .submit(&router, SynthRequest::new(spec.clone()).with_tenant("throttled"))
///     .unwrap();
/// assert!(handle.wait().outcome.is_ok());
/// drop(guard);
/// // … so an immediate second one is refused, not queued.
/// let refused = fair
///     .submit(&router, SynthRequest::new(spec).with_tenant("throttled"))
///     .unwrap_err();
/// assert_eq!(refused, AdmissionError::RateLimited);
/// assert_eq!(fair.counters().rate_limited, 1);
/// router.shutdown();
/// ```
pub struct FairShare {
    default_policy: TenantPolicy,
    policies: HashMap<String, TenantPolicy>,
    state: Mutex<ShareState>,
    turn: Condvar,
    admitted: AtomicU64,
    rate_limited: AtomicU64,
    lane_waits: AtomicU64,
    traces: Option<Arc<TraceRegistry>>,
}

impl fmt::Debug for FairShare {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FairShare")
            .field("tenants", &self.policies.len())
            .finish_non_exhaustive()
    }
}

/// How long a lane waiter sleeps between submission attempts while its
/// shard queue stays full. Bounds both the retry rate and the latency of
/// noticing a freed slot.
const LANE_RETRY_TICK: Duration = Duration::from_millis(1);

impl FairShare {
    /// Builds the stage from a validated configuration.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidConfig`] when any policy has a zero weight,
    /// non-positive rate, burst below 1, or zero in-flight cap.
    pub fn new(config: AdmissionConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        Ok(FairShare {
            default_policy: config.default_policy,
            policies: config.tenants.into_iter().collect(),
            state: Mutex::new(ShareState::default()),
            turn: Condvar::new(),
            admitted: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            lane_waits: AtomicU64::new(0),
            traces: None,
        })
    }

    /// Attaches a trace registry: every admitted request gets a trace id
    /// and an `admitted` timeline event, and the request's downstream
    /// phases (routing, queueing, level sweeps, completion) land in the
    /// registry's ring.
    pub fn with_traces(mut self, registry: Arc<TraceRegistry>) -> Self {
        self.traces = Some(registry);
        self
    }

    /// The policy `tenant` falls under (`None` = the anonymous bucket).
    pub fn policy(&self, tenant: Option<&str>) -> TenantPolicy {
        tenant
            .and_then(|t| self.policies.get(t).copied())
            .unwrap_or(self.default_policy)
    }

    /// A snapshot of the admission decision counters.
    pub fn counters(&self) -> AdmissionCounters {
        AdmissionCounters {
            admitted: self.admitted.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            lane_waits: self.lane_waits.load(Ordering::Relaxed),
        }
    }

    /// Per-tenant admission counters and latency, sorted by tenant name.
    /// Requests without a tenant key appear under the empty string.
    pub fn tenant_counters(&self) -> Vec<(String, TenantCounters)> {
        let state = self.lock();
        let mut tenants: Vec<(String, TenantCounters)> = state
            .tenants
            .iter()
            .map(|(name, tenant)| {
                (
                    name.clone(),
                    TenantCounters {
                        submitted: tenant.stats.submitted.load(Ordering::Relaxed),
                        admitted: tenant.stats.admitted.load(Ordering::Relaxed),
                        rejected: tenant.stats.rejected.load(Ordering::Relaxed),
                        latency: tenant.stats.latency.snapshot(),
                    },
                )
            })
            .collect();
        tenants.sort_by(|a, b| a.0.cmp(&b.0));
        tenants
    }

    fn lock(&self) -> MutexGuard<'_, ShareState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Submits `request` through admission into `router`.
    ///
    /// Policy check first: no token or in-flight cap reached refuses with
    /// [`AdmissionError::RateLimited`] immediately. An admitted request
    /// goes to its shard with `try_submit`; if that queue is full it
    /// parks in the tenant's lane and the weighted deficit-round-robin
    /// scheduler retries it whenever the lane's turn comes, so a
    /// backlogged heavy tenant cannot monopolise freed slots. Returns the
    /// job handle plus the [`InflightGuard`] releasing the tenant's
    /// in-flight slot — drop the guard once the response is delivered.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::RateLimited`] on policy refusal,
    /// [`AdmissionError::Service`] when the router is shutting down.
    pub fn submit(
        &self,
        router: &ShardRouter,
        request: SynthRequest,
    ) -> Result<(JobHandle, InflightGuard), AdmissionError> {
        let tenant = request.tenant().unwrap_or("").to_string();
        let policy = self.policy(request.tenant());
        let now = Instant::now();
        let (guard, stats) = {
            let mut state = self.lock();
            let entry = state
                .tenants
                .entry(tenant.clone())
                .or_insert_with(|| TenantState::new(policy, now));
            entry.refill(now);
            entry.stats.submitted.fetch_add(1, Ordering::Relaxed);
            if entry.inflight.load(Ordering::Acquire) >= entry.policy.max_inflight
                || entry.tokens < 1.0
            {
                entry.stats.rejected.fetch_add(1, Ordering::Relaxed);
                drop(state);
                self.rate_limited.fetch_add(1, Ordering::Relaxed);
                return Err(AdmissionError::RateLimited);
            }
            entry.tokens -= 1.0;
            entry.inflight.fetch_add(1, Ordering::AcqRel);
            let stats = Arc::clone(&entry.stats);
            (
                InflightGuard {
                    slot: Arc::clone(&entry.inflight),
                    stats: Arc::clone(&entry.stats),
                    admitted: now,
                },
                stats,
            )
        };

        // Policy passed: stamp the request with a trace id before it can
        // reach the router, so every later phase lands in the timeline.
        let request = match &self.traces {
            Some(registry) => {
                let trace = registry.begin();
                trace.record("admitted", format!("tenant={tenant}"));
                request.with_trace(trace)
            }
            None => request,
        };

        // Fast path: the shard queue has room (or the request is a cache
        // hit / coalesce, which consumes no slot at all). The clone keeps
        // a retry copy — `try_submit` consumes its argument.
        let retry = request.clone();
        match router.try_submit(request) {
            Ok(handle) => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                stats.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok((handle, guard));
            }
            Err(ServiceError::QueueFull) => {}
            Err(other) => return Err(AdmissionError::Service(other)),
        }

        // Slow path: park in the tenant's lane until the DRR scheduler
        // grants this ticket a retry that sticks.
        self.lane_waits.fetch_add(1, Ordering::Relaxed);
        let mut state = self.lock();
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state
            .lane_mut(&tenant, policy.weight)
            .tickets
            .push_back(ticket);
        loop {
            state.advance();
            if state.grant != Some(ticket) {
                // Not our turn; the tick also re-polls the queue via the
                // granted waiter, so no freed slot goes unnoticed long.
                state = self
                    .turn
                    .wait_timeout(state, LANE_RETRY_TICK)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
                continue;
            }
            match router.try_submit(retry.clone()) {
                Ok(handle) => {
                    state.retire(ticket);
                    state.advance();
                    drop(state);
                    self.turn.notify_all();
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    stats.admitted.fetch_add(1, Ordering::Relaxed);
                    return Ok((handle, guard));
                }
                Err(ServiceError::QueueFull) => {
                    // Still full: hand the turn to other lanes (their
                    // shards may have room) and retry next round.
                    state.yield_turn(&tenant);
                    state.advance();
                    drop(state);
                    self.turn.notify_all();
                    std::thread::sleep(LANE_RETRY_TICK);
                    state = self.lock();
                }
                Err(other) => {
                    state.retire(ticket);
                    state.advance();
                    drop(state);
                    self.turn.notify_all();
                    return Err(AdmissionError::Service(other));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RouterConfig;
    use crate::service::ServiceConfig;
    use rei_lang::Spec;

    fn tiny_spec(positive: &str) -> Spec {
        Spec::from_strs([positive], []).unwrap()
    }

    fn open_router() -> ShardRouter {
        ShardRouter::start(RouterConfig::identical(1, ServiceConfig::new(1))).unwrap()
    }

    #[test]
    fn policies_are_validated() {
        for (policy, needle) in [
            (TenantPolicy::unlimited().with_weight(0), "weight"),
            (TenantPolicy::limited(0.0, 4.0), "rate"),
            (TenantPolicy::limited(-1.0, 4.0), "rate"),
            (TenantPolicy::limited(f64::NAN, 4.0), "rate"),
            (TenantPolicy::limited(1.0, 0.5), "burst"),
            (
                TenantPolicy::unlimited().with_max_inflight(0),
                "max_inflight",
            ),
        ] {
            let config = AdmissionConfig::new().with_tenant("t", policy);
            let err = FairShare::new(config).unwrap_err();
            match err {
                ServiceError::InvalidConfig(message) => {
                    assert!(message.contains(needle), "{policy:?}: {message}")
                }
                other => panic!("expected InvalidConfig, got {other}"),
            }
        }
        // A bad *default* policy is caught too.
        let config = AdmissionConfig::new().with_default_policy(TenantPolicy::limited(1.0, 0.0));
        assert!(FairShare::new(config).is_err());
    }

    #[test]
    fn token_bucket_refuses_beyond_the_burst() {
        let router = open_router();
        // A burst of 2 and (practically) no refill.
        let fair = FairShare::new(
            AdmissionConfig::new().with_tenant("flood", TenantPolicy::limited(1e-9, 2.0)),
        )
        .unwrap();
        let mut admitted = Vec::new();
        let mut refused = 0;
        for i in 0..5 {
            let request = SynthRequest::new(tiny_spec("0")).with_tenant("flood");
            match fair.submit(&router, request) {
                Ok(ok) => admitted.push(ok),
                Err(AdmissionError::RateLimited) => refused += 1,
                Err(other) => panic!("request {i}: unexpected {other}"),
            }
        }
        assert_eq!(admitted.len(), 2);
        assert_eq!(refused, 3);
        let counters = fair.counters();
        assert_eq!(counters.admitted, 2);
        assert_eq!(counters.rate_limited, 3);
        assert_eq!(counters.lane_waits, 0);
        // Another tenant under the (unlimited) default policy is not
        // affected by the flood's empty bucket.
        let request = SynthRequest::new(tiny_spec("1")).with_tenant("good");
        assert!(fair.submit(&router, request).is_ok());
        router.shutdown();
    }

    #[test]
    fn inflight_cap_counts_unanswered_requests() {
        let router = open_router();
        let fair = FairShare::new(
            AdmissionConfig::new()
                .with_tenant("capped", TenantPolicy::unlimited().with_max_inflight(1)),
        )
        .unwrap();
        let request = || SynthRequest::new(tiny_spec("0")).with_tenant("capped");
        let (handle, guard) = fair.submit(&router, request()).unwrap();
        assert!(handle.wait().outcome.is_ok());
        // The response may be delivered, but the slot is released only
        // when the guard drops.
        assert_eq!(
            fair.submit(&router, request()).unwrap_err(),
            AdmissionError::RateLimited
        );
        drop(guard);
        assert!(fair.submit(&router, request()).is_ok());
        router.shutdown();
    }

    #[test]
    fn drr_grants_follow_lane_weights() {
        let mut state = ShareState::default();
        for ticket in [1u64, 2, 3] {
            state.lane_mut("heavy", 2).tickets.push_back(ticket);
        }
        for ticket in [4u64, 5] {
            state.lane_mut("light", 1).tickets.push_back(ticket);
        }
        let mut order = Vec::new();
        while order.len() < 5 {
            state.advance();
            let granted = state.grant.expect("tickets remain");
            order.push(granted);
            state.retire(granted);
        }
        // Two heavy grants per round for one light grant.
        assert_eq!(order, [1, 2, 4, 3, 5]);
        state.advance();
        assert_eq!(state.grant, None, "all lanes drained");
    }

    #[test]
    fn full_queue_parks_in_a_lane_and_drains() {
        // One worker, one queue slot: concurrent submissions beyond the
        // slot must park in lanes (lane_waits > 0) and still all finish.
        let router = ShardRouter::start(RouterConfig::identical(
            1,
            ServiceConfig::new(1).with_queue_capacity(1),
        ))
        .unwrap();
        let fair = Arc::new(FairShare::new(AdmissionConfig::new()).unwrap());
        let router = Arc::new(router);
        let threads: Vec<_> = (0..6)
            .map(|i| {
                let fair = Arc::clone(&fair);
                let router = Arc::clone(&router);
                std::thread::spawn(move || {
                    let request = SynthRequest::new(tiny_spec(&format!("{i:03b}")))
                        .with_tenant(format!("tenant-{}", i % 3));
                    let (handle, guard) = fair.submit(&router, request).unwrap();
                    let solved = handle.wait().outcome.is_ok();
                    drop(guard);
                    solved
                })
            })
            .collect();
        for thread in threads {
            assert!(thread.join().unwrap());
        }
        let counters = fair.counters();
        assert_eq!(counters.admitted, 6);
        assert_eq!(counters.rate_limited, 0);
        let Ok(router) = Arc::try_unwrap(router) else {
            unreachable!("threads joined; no other owners remain");
        };
        router.shutdown();
    }

    #[test]
    fn tenant_counters_and_traces_follow_admission() {
        let router = open_router();
        let registry = TraceRegistry::new(64, None);
        let fair = FairShare::new(
            AdmissionConfig::new().with_tenant("throttled", TenantPolicy::limited(1e-9, 1.0)),
        )
        .unwrap()
        .with_traces(Arc::clone(&registry));

        let (handle, guard) = fair
            .submit(
                &router,
                SynthRequest::new(tiny_spec("0")).with_tenant("throttled"),
            )
            .unwrap();
        let trace_id = handle.trace().expect("admitted requests get a trace").id();
        assert!(handle.wait().outcome.is_ok());
        drop(guard);
        let phases: Vec<String> = registry
            .events(trace_id)
            .into_iter()
            .map(|event| event.phase.to_string())
            .collect();
        assert_eq!(phases.first().map(String::as_str), Some("admitted"));
        assert!(
            phases.iter().any(|p| p == "enqueued"),
            "fresh request reaches a shard queue: {phases:?}"
        );

        // The empty bucket refuses the second request; the per-tenant
        // ledger sees both decisions and exactly one completed latency.
        let refused = fair
            .submit(
                &router,
                SynthRequest::new(tiny_spec("1")).with_tenant("throttled"),
            )
            .unwrap_err();
        assert_eq!(refused, AdmissionError::RateLimited);
        let tenants = fair.tenant_counters();
        let (name, counters) = &tenants[0];
        assert_eq!(name, "throttled");
        assert_eq!(counters.submitted, 2);
        assert_eq!(counters.admitted, 1);
        assert_eq!(counters.rejected, 1);
        assert_eq!(counters.latency.count, 1);
        router.shutdown();
    }

    #[test]
    fn shutdown_surfaces_as_a_service_error() {
        let router = open_router();
        router.close();
        let fair = FairShare::new(AdmissionConfig::new()).unwrap();
        let err = fair
            .submit(&router, SynthRequest::new(tiny_spec("0")))
            .unwrap_err();
        assert_eq!(err, AdmissionError::Service(ServiceError::ShuttingDown));
        router.shutdown();
    }
}
