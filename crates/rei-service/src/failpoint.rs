//! Deterministic fault injection for the durable cache.
//!
//! A *failpoint* is a named site in the storage engine where a test (or a
//! chaos run of `paresy serve`) can inject a failure. Two kinds of sites
//! exist, distinguished by how the call site consumes them:
//!
//! * **cut** sites ([`cut`]) simulate a kill-9 at exactly that point: the
//!   enclosing disk operation abandons silently, leaving whatever bytes
//!   already reached the filesystem — a torn tail, an unrenamed tmp file,
//!   a manifest not yet updated. The process survives, so a test can
//!   reopen the directory and assert what recovery makes of the wreck.
//! * **error** sites ([`io_error`]) inject a transient `io::Error` (an
//!   ENOSPC/EINTR stand-in) to exercise retry paths.
//!
//! Arming is environmental — `REI_FAILPOINT=name[:count]`, comma-separated
//! for several points, where `count` is how many times the point fires
//! (default 1) — or programmatic and *thread-local* via `arm` (present
//! only with the feature), which is
//! what the test suite uses so parallel tests cannot trip each other.
//!
//! The whole module compiles to inert no-ops unless the crate's
//! `failpoints` feature is enabled: a production build carries zero
//! branches for it. The catalog of points lives in DESIGN.md ("Durability").

#[cfg(feature = "failpoints")]
mod armed {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    thread_local! {
        static LOCAL: RefCell<HashMap<String, u32>> = RefCell::new(HashMap::new());
    }

    static GLOBAL: OnceLock<Mutex<HashMap<String, u32>>> = OnceLock::new();

    fn global() -> &'static Mutex<HashMap<String, u32>> {
        GLOBAL.get_or_init(|| {
            let mut points = HashMap::new();
            if let Ok(spec) = std::env::var("REI_FAILPOINT") {
                for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
                    let (name, count) = match part.split_once(':') {
                        Some((name, count)) => (name, count.parse().unwrap_or(1)),
                        None => (part, 1),
                    };
                    points.insert(name.trim().to_string(), count);
                }
            }
            Mutex::new(points)
        })
    }

    /// Arms `name` to fire on its next `count` evaluations, on this
    /// thread only.
    pub fn arm(name: &str, count: u32) {
        LOCAL.with(|local| local.borrow_mut().insert(name.to_string(), count));
    }

    /// Disarms every thread-locally armed point.
    pub fn clear() {
        LOCAL.with(|local| local.borrow_mut().clear());
    }

    /// True when `name` is armed (thread-local first, then the
    /// `REI_FAILPOINT` environment); consumes one firing.
    pub fn fires(name: &str) -> bool {
        let local = LOCAL.with(|local| {
            let mut local = local.borrow_mut();
            match local.get_mut(name) {
                Some(left) if *left > 0 => {
                    *left -= 1;
                    true
                }
                _ => false,
            }
        });
        if local {
            return true;
        }
        let mut points = global().lock().unwrap_or_else(|e| e.into_inner());
        match points.get_mut(name) {
            Some(left) if *left > 0 => {
                *left -= 1;
                true
            }
            _ => false,
        }
    }
}

/// Arms the failpoint `name` to fire on its next `count` evaluations on
/// the calling thread. A no-op without the `failpoints` feature.
#[cfg(feature = "failpoints")]
pub fn arm(name: &str, count: u32) {
    armed::arm(name, count);
}

/// Disarms every point armed with [`arm`] on the calling thread. A no-op
/// without the `failpoints` feature.
#[cfg(feature = "failpoints")]
pub fn clear() {
    armed::clear();
}

/// A *cut* site: returns `true` when the operation should abandon right
/// here, as if the process had been killed at this instant. Always
/// `false` without the `failpoints` feature.
#[inline]
pub fn cut(name: &str) -> bool {
    #[cfg(feature = "failpoints")]
    {
        if armed::fires(name) {
            rei_obs::log::warn("failpoint", "cut", &[("point", name.to_string())]);
            return true;
        }
    }
    let _ = name;
    false
}

/// An *error* site: returns an injected transient I/O error when armed.
/// Always `None` without the `failpoints` feature.
#[inline]
pub fn io_error(name: &str) -> Option<std::io::Error> {
    #[cfg(feature = "failpoints")]
    {
        if armed::fires(name) {
            return Some(std::io::Error::other(format!(
                "injected I/O error (failpoint {name})"
            )));
        }
    }
    let _ = name;
    None
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn points_fire_count_times_then_disarm() {
        arm("test.point", 2);
        assert!(cut("test.point"));
        assert!(cut("test.point"));
        assert!(!cut("test.point"), "exhausted after `count` firings");
        assert!(!cut("test.other"), "unarmed points never fire");
        arm("test.err", 1);
        assert!(io_error("test.err").is_some());
        assert!(io_error("test.err").is_none());
        clear();
    }

    #[test]
    fn arming_is_thread_local() {
        arm("test.cross-thread", 1);
        let other = std::thread::spawn(|| cut("test.cross-thread"));
        assert!(!other.join().unwrap(), "other threads see nothing");
        assert!(cut("test.cross-thread"), "the arming thread still fires");
        clear();
    }
}
