//! The shard router: several independently-configured service pools
//! behind one submission front-end.
//!
//! A single [`SynthService`] is one queue shared by every tenant: a burst
//! of heavy requests from one tenant delays everyone, and every worker
//! runs one configuration. The [`ShardRouter`] owns N pools — each a full
//! `SynthService` with its own workers, queue, cache and (optionally)
//! persistent cache file — and deterministically routes each request to
//! one of them:
//!
//! * a request carrying an explicit tenant key
//!   ([`SynthRequest::with_tenant`]) is routed by the stable FNV-1a hash
//!   of that key — every request of a tenant lands on the same pool, so
//!   one tenant's backlog stays on one queue;
//! * a request without a tenant falls back to the specification's
//!   [`fingerprint`](rei_lang::Spec::fingerprint) bits — identical
//!   specifications still land on the same pool, which keeps the result
//!   cache and in-flight coalescing effective across anonymous traffic.
//!
//! Pools fail independently: a full queue rejects `try_submit`s to *that*
//! pool only, and the other pools keep accepting. Metrics are reported
//! per pool plus as a cross-pool rollup (see [`RouterSnapshot`]).

use std::path::PathBuf;

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::request::{JobHandle, SynthRequest};
use crate::service::{ServiceConfig, ServiceError, SynthService};

/// One named pool of a [`RouterConfig`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// The pool's name: used in metrics and as the stem of its persistent
    /// cache file (`<cache dir>/<name>.jsonl`).
    pub name: String,
    /// The pool's full service configuration.
    pub service: ServiceConfig,
}

/// Configuration of a [`ShardRouter`]: one entry per pool.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The pools, in routing order. Routing is `key % pools.len()`, so
    /// the order (and count) must be stable across restarts for
    /// persistent caches to warm the right pool.
    pub pools: Vec<PoolConfig>,
}

impl RouterConfig {
    /// A router of differently-configured named pools.
    pub fn new(pools: impl IntoIterator<Item = PoolConfig>) -> Self {
        RouterConfig {
            pools: pools.into_iter().collect(),
        }
    }

    /// The common case: `pools` identical shards of one service
    /// configuration, named `pool-0` … `pool-N-1`.
    pub fn identical(pools: usize, service: ServiceConfig) -> Self {
        RouterConfig {
            pools: (0..pools)
                .map(|index| PoolConfig {
                    name: format!("pool-{index}"),
                    service: service.clone(),
                })
                .collect(),
        }
    }

    /// Gives every pool whose cache is not already persistent a file of
    /// its own under `dir`: `<dir>/<pool name>.jsonl`. Routing is
    /// deterministic, so a restarted router with the same pool list finds
    /// each shard's entries in its own file.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        for pool in &mut self.pools {
            if pool.service.cache_path.is_none() {
                pool.service.cache_path = Some(dir.join(format!("{}.jsonl", pool.name)));
            }
        }
        self
    }

    fn validate(&self) -> Result<(), ServiceError> {
        if self.pools.is_empty() {
            return Err(ServiceError::InvalidConfig(
                "router needs at least one pool".into(),
            ));
        }
        for (index, pool) in self.pools.iter().enumerate() {
            if self.pools[..index].iter().any(|p| p.name == pool.name) {
                return Err(ServiceError::InvalidConfig(format!(
                    "duplicate pool name '{}'",
                    pool.name
                )));
            }
            // Two pools sharing one cache file would clobber each
            // other's records at compaction — each shutdown rewrites the
            // file with only its own entries.
            if let Some(path) = &pool.service.cache_path {
                if self.pools[..index]
                    .iter()
                    .any(|p| p.service.cache_path.as_ref() == Some(path))
                {
                    return Err(ServiceError::InvalidConfig(format!(
                        "pools share the cache file '{}' (give each pool its own, \
                         e.g. via RouterConfig::with_cache_dir)",
                        path.display()
                    )));
                }
            }
        }
        Ok(())
    }
}

struct Pool {
    name: String,
    service: SynthService,
}

/// A shard router over N service pools (see the module docs).
///
/// # Example
///
/// ```
/// use rei_service::{RouterConfig, ServiceConfig, ShardRouter, SynthRequest};
/// use rei_lang::Spec;
///
/// let router = ShardRouter::start(RouterConfig::identical(2, ServiceConfig::new(1))).unwrap();
/// let spec = Spec::from_strs(["0", "00"], ["1"]).unwrap();
/// let handle = router.submit(SynthRequest::new(spec).with_tenant("acme")).unwrap();
/// assert!(handle.wait().outcome.is_ok());
/// let snapshot = router.shutdown();
/// assert_eq!(snapshot.rollup().solved, 1);
/// ```
pub struct ShardRouter {
    pools: Vec<Pool>,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("pools", &self.pools.len())
            .finish_non_exhaustive()
    }
}

impl ShardRouter {
    /// Starts every pool (workers, watchdogs, persistent cache warm-up).
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidConfig`] when the router has no pools, pool
    /// names collide, or any pool's own configuration does not validate;
    /// pools already started are shut down again.
    pub fn start(config: RouterConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        let mut pools = Vec::with_capacity(config.pools.len());
        for pool in config.pools {
            let service = SynthService::start(pool.service).map_err(|err| match err {
                ServiceError::InvalidConfig(message) => {
                    ServiceError::InvalidConfig(format!("pool '{}': {message}", pool.name))
                }
                other => other,
            })?;
            pools.push(Pool {
                name: pool.name,
                service,
            });
        }
        Ok(ShardRouter { pools })
    }

    /// The pool index `request` routes to: the FNV-1a hash of the tenant
    /// key when one is set, the specification fingerprint otherwise,
    /// reduced modulo the pool count. Deterministic across processes.
    pub fn route(&self, request: &SynthRequest) -> usize {
        let key = match request.tenant() {
            Some(tenant) => rei_lang::fnv1a(tenant.as_bytes()),
            None => request.spec().fingerprint(),
        };
        (key % self.pools.len() as u64) as usize
    }

    /// Submits to the routed pool, blocking while that pool's queue is at
    /// capacity (other pools are unaffected).
    ///
    /// # Errors
    ///
    /// [`ServiceError::ShuttingDown`] after [`close`](ShardRouter::close).
    pub fn submit(&self, request: SynthRequest) -> Result<JobHandle, ServiceError> {
        self.pools[self.route(&request)].service.submit(request)
    }

    /// Like [`submit`](ShardRouter::submit), but fails with
    /// [`ServiceError::QueueFull`] when the routed pool's queue is at
    /// capacity instead of blocking. Only that pool rejects; requests
    /// routed elsewhere are unaffected.
    pub fn try_submit(&self, request: SynthRequest) -> Result<JobHandle, ServiceError> {
        self.pools[self.route(&request)].service.try_submit(request)
    }

    /// Number of pools.
    pub fn pools(&self) -> usize {
        self.pools.len()
    }

    /// The name of pool `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= pools()`.
    pub fn pool_name(&self, index: usize) -> &str {
        &self.pools[index].name
    }

    /// The pool at `index`, for direct inspection (metrics, config).
    ///
    /// # Panics
    ///
    /// Panics when `index >= pools()`.
    pub fn pool(&self, index: usize) -> &SynthService {
        &self.pools[index].service
    }

    /// A point-in-time snapshot of every pool's metrics.
    pub fn metrics(&self) -> RouterSnapshot {
        RouterSnapshot {
            pools: self
                .pools
                .iter()
                .map(|pool| (pool.name.clone(), pool.service.metrics()))
                .collect(),
        }
    }

    /// Closes every pool to new submissions (queued and in-flight jobs
    /// keep running; see [`SynthService::close`]).
    pub fn close(&self) {
        for pool in &self.pools {
            pool.service.close();
        }
    }

    /// Graceful shutdown of every pool (drain, join, compact persistent
    /// caches); returns the final per-pool snapshots.
    pub fn shutdown(self) -> RouterSnapshot {
        RouterSnapshot {
            pools: self
                .pools
                .into_iter()
                .map(|pool| (pool.name, pool.service.shutdown()))
                .collect(),
        }
    }
}

/// Per-pool metrics snapshots plus their cross-pool rollup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterSnapshot {
    /// `(pool name, snapshot)` in routing order.
    pub pools: Vec<(String, MetricsSnapshot)>,
}

impl RouterSnapshot {
    /// The cross-pool rollup: every counter summed over the pools, the
    /// worker rollups concatenated in pool order.
    pub fn rollup(&self) -> MetricsSnapshot {
        let mut total = MetricsSnapshot::default();
        for (_, snapshot) in &self.pools {
            total.absorb(snapshot);
        }
        total
    }

    /// The snapshot as a JSON document (schema
    /// `rei-service/router-metrics-v1`): a `pools` array of per-pool
    /// metrics documents plus the `rollup` document.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("schema", Json::str("rei-service/router-metrics-v1")),
            ("pools", Json::uint(self.pools.len() as u64)),
            (
                "per_pool",
                Json::array(self.pools.iter().map(|(name, snapshot)| {
                    let mut doc = Json::object([("pool", Json::str(name))]);
                    if let Json::Object(pairs) = snapshot.to_json() {
                        for (key, value) in pairs {
                            if key != "schema" {
                                doc.set(&key, value);
                            }
                        }
                    }
                    doc
                })),
            ),
            ("rollup", self.rollup().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rei_lang::Spec;

    fn tiny_spec(positive: &str) -> Spec {
        Spec::from_strs([positive], []).unwrap()
    }

    #[test]
    fn routing_is_deterministic_and_tenant_keyed() {
        let router = ShardRouter::start(RouterConfig::identical(3, ServiceConfig::new(1))).unwrap();
        // Same tenant, different specs: always the same pool.
        let by_tenant: Vec<usize> = ["0", "1", "00", "01", "11"]
            .iter()
            .map(|p| router.route(&SynthRequest::new(tiny_spec(p)).with_tenant("acme")))
            .collect();
        assert!(by_tenant.windows(2).all(|w| w[0] == w[1]), "{by_tenant:?}");
        // Without a tenant, the spec fingerprint decides — identical
        // specs agree, and the route matches the fingerprint arithmetic.
        let spec = tiny_spec("010");
        let expected = (spec.fingerprint() % 3) as usize;
        assert_eq!(router.route(&SynthRequest::new(spec.clone())), expected);
        assert_eq!(router.route(&SynthRequest::new(spec)), expected);
        // A reasonable spread: many tenants do not all map to one pool.
        let pools: std::collections::HashSet<usize> = (0..16)
            .map(|i| {
                router.route(&SynthRequest::new(tiny_spec("0")).with_tenant(format!("tenant-{i}")))
            })
            .collect();
        assert!(pools.len() > 1, "{pools:?}");
        router.shutdown();
    }

    #[test]
    fn empty_and_duplicate_pool_configs_are_rejected() {
        let err = ShardRouter::start(RouterConfig::new([])).unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)), "{err}");
        let twice = RouterConfig::new([
            PoolConfig {
                name: "a".into(),
                service: ServiceConfig::new(1),
            },
            PoolConfig {
                name: "a".into(),
                service: ServiceConfig::new(1),
            },
        ]);
        let err = ShardRouter::start(twice).unwrap_err();
        match err {
            ServiceError::InvalidConfig(message) => {
                assert!(message.contains("duplicate"), "{message}")
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
        // A pool's own invalid config is reported with the pool's name.
        let bad = RouterConfig::new([PoolConfig {
            name: "zero".into(),
            service: ServiceConfig::new(0),
        }]);
        let err = ShardRouter::start(bad).unwrap_err();
        match err {
            ServiceError::InvalidConfig(message) => {
                assert!(message.contains("zero"), "{message}")
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
        // Pools must not share one cache file: each shutdown compaction
        // would wipe the others' records. (`identical` over a config
        // whose cache path is already set is the easy way to hit this.)
        let shared = RouterConfig::identical(
            2,
            ServiceConfig::new(1).with_cache_dir(std::env::temp_dir().join("rei-router-shared")),
        );
        let err = ShardRouter::start(shared).unwrap_err();
        match err {
            ServiceError::InvalidConfig(message) => {
                assert!(message.contains("share the cache file"), "{message}")
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }

    #[test]
    fn snapshot_rollup_sums_pools_and_renders_json() {
        let router = ShardRouter::start(RouterConfig::identical(2, ServiceConfig::new(1))).unwrap();
        let handles: Vec<_> = ["0", "1", "00", "11"]
            .iter()
            .map(|p| router.submit(SynthRequest::new(tiny_spec(p))).unwrap())
            .collect();
        for handle in &handles {
            assert!(handle.wait().outcome.is_ok());
        }
        let snapshot = router.shutdown();
        assert_eq!(snapshot.pools.len(), 2);
        assert_eq!(snapshot.pools[0].0, "pool-0");
        let rollup = snapshot.rollup();
        assert_eq!(rollup.submitted, 4);
        assert_eq!(
            rollup.solved,
            snapshot.pools.iter().map(|(_, s)| s.solved).sum::<u64>()
        );
        assert_eq!(rollup.workers.len(), 2, "one worker per pool");

        let json = snapshot.to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("rei-service/router-metrics-v1")
        );
        assert_eq!(json.get("pools").and_then(Json::as_u64), Some(2));
        let per_pool = json.get("per_pool").and_then(Json::as_array).unwrap();
        assert_eq!(per_pool.len(), 2);
        assert_eq!(
            per_pool[1].get("pool").and_then(Json::as_str),
            Some("pool-1")
        );
        let submitted_sum: u64 = per_pool
            .iter()
            .map(|p| {
                p.get("requests")
                    .and_then(|r| r.get("submitted"))
                    .and_then(Json::as_u64)
                    .unwrap()
            })
            .sum();
        assert_eq!(
            json.get("rollup")
                .and_then(|r| r.get("requests"))
                .and_then(|r| r.get("submitted"))
                .and_then(Json::as_u64),
            Some(submitted_sum)
        );
        // The document round-trips through the shared parser.
        assert_eq!(Json::parse(&json.to_pretty()).unwrap(), json);
    }
}
