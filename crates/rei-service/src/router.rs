//! The shard router: several independently-configured service pools
//! behind one submission front-end.
//!
//! A single [`SynthService`] is one queue shared by every tenant: a burst
//! of heavy requests from one tenant delays everyone, and every worker
//! runs one configuration. The [`ShardRouter`] owns N pools — each a full
//! `SynthService` with its own workers, queue, cache and (optionally)
//! persistent cache file — and deterministically routes each request to
//! one of them:
//!
//! * a request carrying an explicit tenant key
//!   ([`SynthRequest::with_tenant`]) is routed by the stable FNV-1a hash
//!   of that key — every request of a tenant lands on the same pool, so
//!   one tenant's backlog stays on one queue;
//! * a request without a tenant falls back to the specification's
//!   [`fingerprint`](rei_lang::Spec::fingerprint) bits — identical
//!   specifications still land on the same pool, which keeps the result
//!   cache and in-flight coalescing effective across anonymous traffic.
//!
//! The key picks a pool through a consistent-hash [`HashRing`] rather
//! than `key % N`: [`add_pool`](ShardRouter::add_pool) and
//! [`remove_pool`](ShardRouter::remove_pool) change the topology at
//! runtime while remapping only ~1/N of the keys, so the other pools'
//! warm (and persistent) caches stay valid across scaling events.
//!
//! Pools fail independently: a full queue rejects `try_submit`s to *that*
//! pool only, and the other pools keep accepting. Metrics are reported
//! per pool plus as a cross-pool rollup (see [`RouterSnapshot`]).

use std::path::PathBuf;
use std::sync::RwLock;

use rei_obs::{PromText, LATENCY_BOUNDS_SECS};

use crate::admission::{AdmissionCounters, TenantCounters};
use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::request::{JobHandle, SynthRequest};
use crate::ring::HashRing;
use crate::service::{ServiceConfig, ServiceError, SynthService};

/// One named pool of a [`RouterConfig`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// The pool's name: the ring position source, the metrics label, and
    /// the name of its persistent store directory (`<cache dir>/<name>/`).
    pub name: String,
    /// The pool's full service configuration.
    pub service: ServiceConfig,
}

/// Configuration of a [`ShardRouter`]: one entry per pool.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The initial pools. Routing is by consistent hash over the pool
    /// *names*, so the same set of names yields the same assignment in
    /// every process — persistent caches warm the right pool after a
    /// restart regardless of the order pools are listed in.
    pub pools: Vec<PoolConfig>,
}

impl RouterConfig {
    /// A router of differently-configured named pools.
    pub fn new(pools: impl IntoIterator<Item = PoolConfig>) -> Self {
        RouterConfig {
            pools: pools.into_iter().collect(),
        }
    }

    /// The common case: `pools` identical shards of one service
    /// configuration, named `pool-0` … `pool-N-1`.
    pub fn identical(pools: usize, service: ServiceConfig) -> Self {
        RouterConfig {
            pools: (0..pools)
                .map(|index| PoolConfig {
                    name: format!("pool-{index}"),
                    service: service.clone(),
                })
                .collect(),
        }
    }

    /// Gives every pool whose cache is not already persistent a store
    /// directory of its own under `dir`: `<dir>/<pool name>/`. Routing
    /// is deterministic, so a restarted router with the same pool list
    /// finds each shard's entries in its own store.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        for pool in &mut self.pools {
            if pool.service.cache_path.is_none() {
                pool.service.cache_path = Some(dir.join(&pool.name));
            }
        }
        self
    }

    fn validate(&self) -> Result<(), ServiceError> {
        if self.pools.is_empty() {
            return Err(ServiceError::InvalidConfig(
                "router needs at least one pool".into(),
            ));
        }
        for (index, pool) in self.pools.iter().enumerate() {
            if self.pools[..index].iter().any(|p| p.name == pool.name) {
                return Err(ServiceError::InvalidConfig(format!(
                    "duplicate pool name '{}'",
                    pool.name
                )));
            }
            // Two pools sharing one store would clobber each other's
            // manifest and records at every seal and fold.
            if let Some(path) = &pool.service.cache_path {
                if self.pools[..index]
                    .iter()
                    .any(|p| p.service.cache_path.as_ref() == Some(path))
                {
                    return Err(ServiceError::InvalidConfig(format!(
                        "pools share the cache store '{}' (give each pool its own, \
                         e.g. via RouterConfig::with_cache_dir)",
                        path.display()
                    )));
                }
            }
        }
        Ok(())
    }
}

struct Pool {
    name: String,
    /// Remembered from the pool's config so later `add_pool`s can refuse
    /// cache-file collisions with live pools.
    cache_path: Option<PathBuf>,
    service: SynthService,
}

struct RouterState {
    pools: Vec<Pool>,
    ring: HashRing,
}

impl RouterState {
    /// Index of the pool the ring assigns `key` to. The ring only ever
    /// names live pools, so the lookup cannot miss.
    fn route_key(&self, key: u64) -> usize {
        let name = self.ring.route(key).expect("router always has a pool");
        self.pools
            .iter()
            .position(|pool| pool.name == name)
            .expect("ring names a live pool")
    }
}

/// A shard router over N service pools (see the module docs).
///
/// # Example
///
/// ```
/// use rei_service::{RouterConfig, ServiceConfig, ShardRouter, SynthRequest};
/// use rei_lang::Spec;
///
/// let router = ShardRouter::start(RouterConfig::identical(2, ServiceConfig::new(1))).unwrap();
/// let spec = Spec::from_strs(["0", "00"], ["1"]).unwrap();
/// let handle = router.submit(SynthRequest::new(spec).with_tenant("acme")).unwrap();
/// assert!(handle.wait().outcome.is_ok());
/// let snapshot = router.shutdown();
/// assert_eq!(snapshot.rollup().solved, 1);
/// ```
pub struct ShardRouter {
    state: RwLock<RouterState>,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("pools", &self.pools())
            .finish_non_exhaustive()
    }
}

impl ShardRouter {
    /// Starts every pool (workers, watchdogs, persistent cache warm-up).
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidConfig`] when the router has no pools, pool
    /// names collide, or any pool's own configuration does not validate;
    /// pools already started are shut down again.
    pub fn start(config: RouterConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        let mut pools = Vec::with_capacity(config.pools.len());
        let mut ring = HashRing::new();
        for pool in config.pools {
            let cache_path = pool.service.cache_path.clone();
            let service = SynthService::start(pool.service).map_err(|err| match err {
                ServiceError::InvalidConfig(message) => {
                    ServiceError::InvalidConfig(format!("pool '{}': {message}", pool.name))
                }
                other => other,
            })?;
            ring.add(&pool.name);
            pools.push(Pool {
                name: pool.name,
                cache_path,
                service,
            });
        }
        Ok(ShardRouter {
            state: RwLock::new(RouterState { pools, ring }),
        })
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, RouterState> {
        self.state.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, RouterState> {
        self.state.write().unwrap_or_else(|e| e.into_inner())
    }

    /// The routing key of `request`: the FNV-1a hash of the tenant key
    /// when one is set; otherwise, for a session refinement, the FNV-1a
    /// hash of the session name — so refines land on the pool that
    /// [opened](ShardRouter::open_session) the session under the same key
    /// — and the specification fingerprint for everything else.
    /// Deterministic across processes.
    pub fn routing_key(request: &SynthRequest) -> u64 {
        match (request.tenant(), request.session()) {
            (Some(tenant), _) => rei_lang::fnv1a(tenant.as_bytes()),
            (None, Some(session)) => rei_lang::fnv1a(session.as_bytes()),
            (None, None) => request.spec().fingerprint(),
        }
    }

    /// The routing key of session verbs (`open_session`/`close_session`):
    /// tenant when given, session name otherwise — the same key
    /// [`routing_key`](ShardRouter::routing_key) derives for the
    /// session's refines.
    fn session_key(name: &str, tenant: Option<&str>) -> u64 {
        match tenant {
            Some(tenant) => rei_lang::fnv1a(tenant.as_bytes()),
            None => rei_lang::fnv1a(name.as_bytes()),
        }
    }

    /// Opens the refinement session `name` on the pool its key routes to
    /// (see [`SynthService::open_session`]). Unlike the single-pool API
    /// the name is required: the router must know the key before it can
    /// pick a pool, so callers (e.g. the network front-end) generate a
    /// name first when the client did not choose one. Pass the same
    /// `tenant` on open, refine and close — the tenant key dominates
    /// routing when present.
    pub fn open_session(&self, name: &str, tenant: Option<&str>) -> Result<String, ServiceError> {
        let state = self.read();
        let index = state.route_key(ShardRouter::session_key(name, tenant));
        state.pools[index].service.open_session(Some(name), tenant)
    }

    /// Closes the refinement session `name` on the pool its key routes to
    /// (see [`SynthService::close_session`]).
    pub fn close_session(&self, name: &str, tenant: Option<&str>) -> Result<(), ServiceError> {
        let state = self.read();
        let index = state.route_key(ShardRouter::session_key(name, tenant));
        state.pools[index].service.close_session(name)
    }

    /// The index (under the current topology) of the pool `request`
    /// routes to — the consistent-hash ring owner of its
    /// [`routing_key`](ShardRouter::routing_key). Stable until the
    /// topology changes, and even then only ~1/N of keys move per
    /// added/removed pool.
    pub fn route(&self, request: &SynthRequest) -> usize {
        self.read().route_key(ShardRouter::routing_key(request))
    }

    /// Submits to the routed pool, blocking while that pool's queue is at
    /// capacity (other pools are unaffected).
    ///
    /// # Errors
    ///
    /// [`ServiceError::ShuttingDown`] after [`close`](ShardRouter::close).
    pub fn submit(&self, request: SynthRequest) -> Result<JobHandle, ServiceError> {
        let state = self.read();
        let index = state.route_key(ShardRouter::routing_key(&request));
        if let Some(trace) = request.trace() {
            trace.record("routed", format!("pool={}", state.pools[index].name));
        }
        state.pools[index].service.submit(request)
    }

    /// Like [`submit`](ShardRouter::submit), but fails with
    /// [`ServiceError::QueueFull`] when the routed pool's queue is at
    /// capacity instead of blocking. Only that pool rejects; requests
    /// routed elsewhere are unaffected.
    pub fn try_submit(&self, request: SynthRequest) -> Result<JobHandle, ServiceError> {
        let state = self.read();
        let index = state.route_key(ShardRouter::routing_key(&request));
        if let Some(trace) = request.trace() {
            trace.record("routed", format!("pool={}", state.pools[index].name));
        }
        state.pools[index].service.try_submit(request)
    }

    /// Starts a new pool and adds it to the ring. Only the tenant keys
    /// the new pool's virtual points capture (~1/(N+1) of them) move;
    /// every other key keeps its pool and its warm cache.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidConfig`] when the name is already taken,
    /// the new pool's cache file collides with a live pool's, or the
    /// pool's own configuration does not validate.
    pub fn add_pool(&self, config: PoolConfig) -> Result<(), ServiceError> {
        let name = config.name;
        let cache_path = config.service.cache_path.clone();
        let check = |state: &RouterState| -> Result<(), ServiceError> {
            if state.pools.iter().any(|p| p.name == name) {
                return Err(ServiceError::InvalidConfig(format!(
                    "duplicate pool name '{name}'"
                )));
            }
            if let Some(path) = &cache_path {
                if state
                    .pools
                    .iter()
                    .any(|p| p.cache_path.as_ref() == Some(path))
                {
                    return Err(ServiceError::InvalidConfig(format!(
                        "pools share the cache store '{}'",
                        path.display()
                    )));
                }
            }
            Ok(())
        };
        check(&self.read())?;
        // Start the service outside the lock — warm-up may read a cache
        // file — then re-check the name: a concurrent add could have
        // taken it while the lock was released.
        let service = SynthService::start(config.service).map_err(|err| match err {
            ServiceError::InvalidConfig(message) => {
                ServiceError::InvalidConfig(format!("pool '{name}': {message}"))
            }
            other => other,
        })?;
        let mut state = self.write();
        if let Err(err) = check(&state) {
            drop(state);
            service.shutdown();
            return Err(err);
        }
        state.ring.add(&name);
        state.pools.push(Pool {
            name,
            cache_path,
            service,
        });
        Ok(())
    }

    /// Removes pool `name` from the ring and shuts it down gracefully
    /// (drain, join, compact its persistent cache), returning its final
    /// metrics. Only the keys its virtual points carried move — they fall
    /// through to the next pool clockwise.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidConfig`] when the name is unknown or the
    /// pool is the router's last — a router never routes into the void.
    pub fn remove_pool(&self, name: &str) -> Result<MetricsSnapshot, ServiceError> {
        let pool = {
            let mut state = self.write();
            let index = state
                .pools
                .iter()
                .position(|p| p.name == name)
                .ok_or_else(|| ServiceError::InvalidConfig(format!("no pool named '{name}'")))?;
            if state.pools.len() == 1 {
                return Err(ServiceError::InvalidConfig(
                    "cannot remove the last pool".into(),
                ));
            }
            state.ring.remove(name);
            state.pools.remove(index)
        };
        // Drain outside the lock: jobs already queued on the leaving pool
        // finish while new traffic routes around it.
        Ok(pool.service.shutdown())
    }

    /// Number of pools.
    pub fn pools(&self) -> usize {
        self.read().pools.len()
    }

    /// The name of pool `index` (under the current topology).
    ///
    /// # Panics
    ///
    /// Panics when `index >= pools()`.
    pub fn pool_name(&self, index: usize) -> String {
        self.read().pools[index].name.clone()
    }

    /// A point-in-time snapshot of every pool's metrics.
    pub fn metrics(&self) -> RouterSnapshot {
        RouterSnapshot {
            pools: self
                .read()
                .pools
                .iter()
                .map(|pool| (pool.name.clone(), pool.service.metrics()))
                .collect(),
            admission: AdmissionCounters::default(),
            tenants: Vec::new(),
        }
    }

    /// Closes every pool to new submissions (queued and in-flight jobs
    /// keep running; see [`SynthService::close`]).
    pub fn close(&self) {
        for pool in &self.read().pools {
            pool.service.close();
        }
    }

    /// Graceful shutdown of every pool (drain, join, compact persistent
    /// caches); returns the final per-pool snapshots.
    pub fn shutdown(self) -> RouterSnapshot {
        let state = self.state.into_inner().unwrap_or_else(|e| e.into_inner());
        RouterSnapshot {
            pools: state
                .pools
                .into_iter()
                .map(|pool| (pool.name, pool.service.shutdown()))
                .collect(),
            admission: AdmissionCounters::default(),
            tenants: Vec::new(),
        }
    }
}

/// Per-pool metrics snapshots plus their cross-pool rollup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterSnapshot {
    /// `(pool name, snapshot)` in pool order.
    pub pools: Vec<(String, MetricsSnapshot)>,
    /// Admission-stage decisions, when a
    /// [`FairShare`](crate::FairShare) front-end sat in front of the
    /// router (all zero otherwise). Pools never see rate-limited
    /// requests, so these live beside the per-pool snapshots rather than
    /// inside any of them.
    pub admission: AdmissionCounters,
    /// Per-tenant admission breakdowns, when a
    /// [`FairShare`](crate::FairShare) front-end supplied them via
    /// [`tenant_counters`](crate::FairShare::tenant_counters) (empty
    /// otherwise). Sorted by tenant name.
    pub tenants: Vec<(String, TenantCounters)>,
}

impl RouterSnapshot {
    /// The cross-pool rollup: every counter summed over the pools, the
    /// worker rollups concatenated in pool order, and the router-level
    /// admission decisions folded into the admission fields.
    pub fn rollup(&self) -> MetricsSnapshot {
        let mut total = MetricsSnapshot::default();
        for (_, snapshot) in &self.pools {
            total.absorb(snapshot);
        }
        total.admitted += self.admission.admitted;
        total.rate_limited += self.admission.rate_limited;
        total.lane_waits += self.admission.lane_waits;
        total
    }

    /// The snapshot as a JSON document (schema
    /// `rei-service/router-metrics-v1`): a `pools` array of per-pool
    /// metrics documents plus the `rollup` document (which carries the
    /// admission counters in its `requests` section).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("schema", Json::str("rei-service/router-metrics-v1")),
            ("pools", Json::uint(self.pools.len() as u64)),
            (
                "per_pool",
                Json::array(self.pools.iter().map(|(name, snapshot)| {
                    let mut doc = Json::object([("pool", Json::str(name))]);
                    if let Json::Object(pairs) = snapshot.to_json() {
                        for (key, value) in pairs {
                            if key != "schema" {
                                doc.set(&key, value);
                            }
                        }
                    }
                    doc
                })),
            ),
            (
                "tenants",
                Json::array(self.tenants.iter().map(|(name, counters)| {
                    Json::object([
                        ("tenant", Json::str(name)),
                        ("submitted", Json::uint(counters.submitted)),
                        ("admitted", Json::uint(counters.admitted)),
                        ("rejected", Json::uint(counters.rejected)),
                        (
                            "latency_p50_ms",
                            Json::fixed(counters.latency.quantile(0.50) as f64 / 1e6, 3),
                        ),
                        (
                            "latency_p99_ms",
                            Json::fixed(counters.latency.quantile(0.99) as f64 / 1e6, 3),
                        ),
                    ])
                })),
            ),
            ("rollup", self.rollup().to_json()),
        ])
    }

    /// The snapshot in Prometheus text format (version 0.0.4): per-pool
    /// request counters and latency histograms, router-level admission
    /// counters, queue/cache gauges, and per-tenant admission families
    /// when the snapshot carries tenant breakdowns.
    pub fn to_prometheus(&self) -> String {
        let mut text = PromText::new();

        type CounterRow = (&'static str, &'static str, fn(&MetricsSnapshot) -> u64);
        let counters: [CounterRow; 11] = [
            ("rei_requests_submitted_total", "Requests submitted.", |s| {
                s.submitted
            }),
            (
                "rei_requests_completed_total",
                "Requests completed by a worker.",
                |s| s.completed,
            ),
            ("rei_requests_solved_total", "Requests solved.", |s| {
                s.solved
            }),
            (
                "rei_requests_rejected_total",
                "Requests rejected at the pool queue.",
                |s| s.rejected,
            ),
            ("rei_cache_hits_total", "Result-cache hits.", |s| {
                s.cache_hits
            }),
            (
                "rei_coalesced_total",
                "Requests coalesced onto an in-flight job.",
                |s| s.coalesced,
            ),
            (
                "rei_fused_batches_total",
                "Fused level-sweep batches executed.",
                |s| s.fused_batches,
            ),
            (
                "rei_fused_requests_total",
                "Requests served through fused batches.",
                |s| s.fused_requests,
            ),
            (
                "rei_cache_append_errors_total",
                "Cache records dropped after exhausting append retries.",
                |s| s.disk_append_errors,
            ),
            (
                "rei_cache_evicted_total",
                "Cache records evicted from disk by the byte cap.",
                |s| s.disk_evicted,
            ),
            (
                "rei_cache_checkpoints_total",
                "Checkpoint folds completed by the cache janitor.",
                |s| s.disk_checkpoints,
            ),
        ];
        for (family, help, pick) in counters {
            text.family(family, "counter", help);
            for (name, snapshot) in &self.pools {
                text.sample(family, &[("pool", name)], pick(snapshot) as f64);
            }
        }

        type GaugeRow = (&'static str, &'static str, fn(&MetricsSnapshot) -> usize);
        let gauges: [GaugeRow; 2] = [
            ("rei_queue_depth", "Jobs waiting in the pool queue.", |s| {
                s.queue_depth
            }),
            ("rei_cache_entries", "Live result-cache entries.", |s| {
                s.cache_entries
            }),
        ];
        for (family, help, pick) in gauges {
            text.family(family, "gauge", help);
            for (name, snapshot) in &self.pools {
                text.sample(family, &[("pool", name)], pick(snapshot) as f64);
            }
        }

        type WideGaugeRow = (&'static str, &'static str, fn(&MetricsSnapshot) -> f64);
        let wide_gauges: [WideGaugeRow; 3] = [
            (
                "rei_cache_disk_bytes",
                "Live bytes of the persistent cache store.",
                |s| s.disk_bytes as f64,
            ),
            (
                "rei_cache_disk_segments",
                "Live segment files of the persistent cache store.",
                |s| s.disk_segments as f64,
            ),
            (
                "rei_recovery_seconds",
                "Wall-clock of the cache recovery replay at start.",
                |s| s.recovery_wall.as_secs_f64(),
            ),
        ];
        for (family, help, pick) in wide_gauges {
            text.family(family, "gauge", help);
            for (name, snapshot) in &self.pools {
                text.sample(family, &[("pool", name)], pick(snapshot));
            }
        }

        text.family(
            "rei_queue_wait_seconds",
            "histogram",
            "Queue wait before a worker picked the job up.",
        );
        text.family("rei_run_seconds", "histogram", "Worker run time per job.");
        text.family(
            "rei_request_seconds",
            "histogram",
            "End-to-end latency, submission to completion.",
        );
        for (name, snapshot) in &self.pools {
            let labels = [("pool", name.as_str())];
            text.histogram(
                "rei_queue_wait_seconds",
                &labels,
                LATENCY_BOUNDS_SECS,
                &snapshot.wait,
            );
            text.histogram(
                "rei_run_seconds",
                &labels,
                LATENCY_BOUNDS_SECS,
                &snapshot.run,
            );
            text.histogram(
                "rei_request_seconds",
                &labels,
                LATENCY_BOUNDS_SECS,
                &snapshot.e2e,
            );
        }

        text.family(
            "rei_admission_admitted_total",
            "counter",
            "Requests admitted by the fair-share stage.",
        );
        text.sample(
            "rei_admission_admitted_total",
            &[],
            self.admission.admitted as f64,
        );
        text.family(
            "rei_admission_rate_limited_total",
            "counter",
            "Requests refused by a token bucket or in-flight cap.",
        );
        text.sample(
            "rei_admission_rate_limited_total",
            &[],
            self.admission.rate_limited as f64,
        );
        text.family(
            "rei_admission_lane_waits_total",
            "counter",
            "Admitted requests that parked in a tenant lane.",
        );
        text.sample(
            "rei_admission_lane_waits_total",
            &[],
            self.admission.lane_waits as f64,
        );

        if !self.tenants.is_empty() {
            text.family(
                "rei_tenant_submitted_total",
                "counter",
                "Requests offered per tenant.",
            );
            text.family(
                "rei_tenant_admitted_total",
                "counter",
                "Requests admitted per tenant.",
            );
            text.family(
                "rei_tenant_rejected_total",
                "counter",
                "Requests refused per tenant.",
            );
            text.family(
                "rei_tenant_request_seconds",
                "histogram",
                "Admission-to-response latency per tenant.",
            );
            for (name, counters) in &self.tenants {
                let labels = [("tenant", name.as_str())];
                text.sample(
                    "rei_tenant_submitted_total",
                    &labels,
                    counters.submitted as f64,
                );
                text.sample(
                    "rei_tenant_admitted_total",
                    &labels,
                    counters.admitted as f64,
                );
                text.sample(
                    "rei_tenant_rejected_total",
                    &labels,
                    counters.rejected as f64,
                );
                text.histogram(
                    "rei_tenant_request_seconds",
                    &labels,
                    LATENCY_BOUNDS_SECS,
                    &counters.latency,
                );
            }
        }

        text.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::VNODES;
    use rei_lang::Spec;

    fn tiny_spec(positive: &str) -> Spec {
        Spec::from_strs([positive], []).unwrap()
    }

    #[test]
    fn routing_is_deterministic_and_tenant_keyed() {
        let router = ShardRouter::start(RouterConfig::identical(3, ServiceConfig::new(1))).unwrap();
        // Same tenant, different specs: always the same pool.
        let by_tenant: Vec<usize> = ["0", "1", "00", "01", "11"]
            .iter()
            .map(|p| router.route(&SynthRequest::new(tiny_spec(p)).with_tenant("acme")))
            .collect();
        assert!(by_tenant.windows(2).all(|w| w[0] == w[1]), "{by_tenant:?}");
        // Without a tenant, the spec fingerprint decides — identical
        // specs agree, and the route matches the ring's assignment of
        // the fingerprint key.
        let spec = tiny_spec("010");
        let mut ring = HashRing::new();
        for index in 0..3 {
            ring.add(&format!("pool-{index}"));
        }
        let expected_name = ring.route(spec.fingerprint()).unwrap();
        let routed = router.route(&SynthRequest::new(spec.clone()));
        assert_eq!(router.pool_name(routed), expected_name);
        assert_eq!(router.route(&SynthRequest::new(spec)), routed);
        // A reasonable spread: many tenants do not all map to one pool.
        let pools: std::collections::HashSet<usize> = (0..16)
            .map(|i| {
                router.route(&SynthRequest::new(tiny_spec("0")).with_tenant(format!("tenant-{i}")))
            })
            .collect();
        assert!(pools.len() > 1, "{pools:?}");
        router.shutdown();
    }

    #[test]
    fn pools_join_and_leave_with_minimal_remap() {
        let router = ShardRouter::start(RouterConfig::identical(3, ServiceConfig::new(1))).unwrap();
        let request =
            |i: usize| SynthRequest::new(tiny_spec("0")).with_tenant(format!("tenant-{i}"));
        let before: Vec<String> = (0..256)
            .map(|i| router.pool_name(router.route(&request(i))))
            .collect();

        router
            .add_pool(PoolConfig {
                name: "joiner".into(),
                service: ServiceConfig::new(1),
            })
            .unwrap();
        assert_eq!(router.pools(), 4);
        let mut moved = 0;
        for (i, was) in before.iter().enumerate() {
            let now = router.pool_name(router.route(&request(i)));
            if now != *was {
                assert_eq!(now, "joiner", "keys only move to the new pool");
                moved += 1;
            }
        }
        assert!(moved > 0, "the joiner takes some load");
        assert!(moved <= 2 * 256 / 3, "~1/N of keys move, got {moved}/256");
        // The joiner serves traffic routed to it.
        let handle = router
            .submit(SynthRequest::new(tiny_spec("0")).with_tenant("probe"))
            .unwrap();
        assert!(handle.wait().outcome.is_ok());

        // Duplicate names are refused, also for racy second adds.
        let err = router
            .add_pool(PoolConfig {
                name: "joiner".into(),
                service: ServiceConfig::new(1),
            })
            .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)), "{err}");

        // Removing the joiner restores the original assignment exactly.
        let final_metrics = router.remove_pool("joiner").unwrap();
        assert!(final_metrics.submitted <= 1 + moved as u64);
        assert_eq!(router.pools(), 3);
        for (i, was) in before.iter().enumerate() {
            assert_eq!(router.pool_name(router.route(&request(i))), *was);
        }
        assert!(matches!(
            router.remove_pool("joiner"),
            Err(ServiceError::InvalidConfig(_))
        ));
        router.shutdown();
    }

    #[test]
    fn the_last_pool_cannot_be_removed() {
        let router = ShardRouter::start(RouterConfig::identical(1, ServiceConfig::new(1))).unwrap();
        let err = router.remove_pool("pool-0").unwrap_err();
        match err {
            ServiceError::InvalidConfig(message) => {
                assert!(message.contains("last pool"), "{message}")
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
        assert_eq!(router.pools(), 1);
        let _ = VNODES; // the ring constant is part of the public contract
        router.shutdown();
    }

    #[test]
    fn empty_and_duplicate_pool_configs_are_rejected() {
        let err = ShardRouter::start(RouterConfig::new([])).unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)), "{err}");
        let twice = RouterConfig::new([
            PoolConfig {
                name: "a".into(),
                service: ServiceConfig::new(1),
            },
            PoolConfig {
                name: "a".into(),
                service: ServiceConfig::new(1),
            },
        ]);
        let err = ShardRouter::start(twice).unwrap_err();
        match err {
            ServiceError::InvalidConfig(message) => {
                assert!(message.contains("duplicate"), "{message}")
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
        // A pool's own invalid config is reported with the pool's name.
        let bad = RouterConfig::new([PoolConfig {
            name: "zero".into(),
            service: ServiceConfig::new(0),
        }]);
        let err = ShardRouter::start(bad).unwrap_err();
        match err {
            ServiceError::InvalidConfig(message) => {
                assert!(message.contains("zero"), "{message}")
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
        // Pools must not share one cache store: they would clobber each
        // other's manifest. (`identical` over a config whose cache path
        // is already set is the easy way to hit this.)
        let shared = RouterConfig::identical(
            2,
            ServiceConfig::new(1).with_cache_dir(std::env::temp_dir().join("rei-router-shared")),
        );
        let err = ShardRouter::start(shared).unwrap_err();
        match err {
            ServiceError::InvalidConfig(message) => {
                assert!(message.contains("share the cache store"), "{message}")
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }

    #[test]
    fn snapshot_rollup_sums_pools_and_renders_json() {
        let router = ShardRouter::start(RouterConfig::identical(2, ServiceConfig::new(1))).unwrap();
        let handles: Vec<_> = ["0", "1", "00", "11"]
            .iter()
            .map(|p| router.submit(SynthRequest::new(tiny_spec(p))).unwrap())
            .collect();
        for handle in &handles {
            assert!(handle.wait().outcome.is_ok());
        }
        let mut snapshot = router.shutdown();
        snapshot.admission = AdmissionCounters {
            admitted: 4,
            rate_limited: 2,
            lane_waits: 1,
        };
        assert_eq!(snapshot.pools.len(), 2);
        assert_eq!(snapshot.pools[0].0, "pool-0");
        let rollup = snapshot.rollup();
        assert_eq!(rollup.submitted, 4);
        assert_eq!(
            rollup.solved,
            snapshot.pools.iter().map(|(_, s)| s.solved).sum::<u64>()
        );
        assert_eq!(rollup.workers.len(), 2, "one worker per pool");
        assert_eq!(rollup.rate_limited, 2, "admission folds into the rollup");

        let json = snapshot.to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("rei-service/router-metrics-v1")
        );
        assert_eq!(json.get("pools").and_then(Json::as_u64), Some(2));
        let per_pool = json.get("per_pool").and_then(Json::as_array).unwrap();
        assert_eq!(per_pool.len(), 2);
        assert_eq!(
            per_pool[1].get("pool").and_then(Json::as_str),
            Some("pool-1")
        );
        let submitted_sum: u64 = per_pool
            .iter()
            .map(|p| {
                p.get("requests")
                    .and_then(|r| r.get("submitted"))
                    .and_then(Json::as_u64)
                    .unwrap()
            })
            .sum();
        let rollup_requests = json.get("rollup").and_then(|r| r.get("requests")).unwrap();
        assert_eq!(
            rollup_requests.get("submitted").and_then(Json::as_u64),
            Some(submitted_sum)
        );
        assert_eq!(
            rollup_requests.get("rate_limited").and_then(Json::as_u64),
            Some(2)
        );
        // The document round-trips through the shared parser.
        assert_eq!(Json::parse(&json.to_pretty()).unwrap(), json);
    }

    #[test]
    fn prometheus_rendering_covers_pools_admission_and_tenants() {
        let router = ShardRouter::start(RouterConfig::identical(2, ServiceConfig::new(1))).unwrap();
        let handle = router.submit(SynthRequest::new(tiny_spec("0"))).unwrap();
        assert!(handle.wait().outcome.is_ok());
        let mut snapshot = router.shutdown();
        snapshot.admission = AdmissionCounters {
            admitted: 1,
            rate_limited: 2,
            lane_waits: 0,
        };
        snapshot.tenants = vec![(
            "acme".to_string(),
            TenantCounters {
                submitted: 3,
                admitted: 2,
                rejected: 1,
                latency: rei_obs::HistogramSnapshot::default(),
            },
        )];
        let body = snapshot.to_prometheus();
        assert!(body.contains("# TYPE rei_requests_submitted_total counter"));
        assert!(body.contains("rei_requests_submitted_total{pool=\"pool-0\"}"));
        assert!(body.contains("rei_admission_rate_limited_total 2\n"));
        assert!(body.contains("rei_tenant_rejected_total{tenant=\"acme\"} 1\n"));
        assert!(body.contains("# TYPE rei_request_seconds histogram"));
        assert!(body.contains("rei_request_seconds_bucket{pool=\"pool-0\",le=\"+Inf\"}"));
        // Every histogram family's buckets are monotone non-decreasing.
        let mut counts: Vec<f64> = Vec::new();
        for line in body.lines() {
            if line.starts_with("rei_request_seconds_bucket{pool=\"pool-0\"") {
                counts.push(line.rsplit(' ').next().unwrap().parse().unwrap());
            }
        }
        assert!(!counts.is_empty());
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        // Across the pools, the +Inf buckets see exactly the one request
        // (whichever pool the fingerprint routed it to).
        let inf_total: f64 = body
            .lines()
            .filter(|line| {
                line.starts_with("rei_request_seconds_bucket") && line.contains("le=\"+Inf\"")
            })
            .map(|line| line.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
            .sum();
        assert_eq!(inf_total, 1.0);
    }
}
