//! Requests, responses and handles of the synthesis service.

use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rei_core::{ReuseDecision, SynthesisError, SynthesisResult};
use rei_lang::Spec;
use rei_obs::Trace;

/// A synthesis request: the specification plus scheduling hints.
///
/// Priority and deadline are *per request*, unlike the cost function and
/// backend, which are properties of the service's
/// [`SynthConfig`](rei_core::SynthConfig) (every worker of a pool runs the
/// same configuration, so results are interchangeable and cacheable).
#[derive(Debug, Clone)]
pub struct SynthRequest {
    pub(crate) spec: Spec,
    pub(crate) priority: i32,
    pub(crate) deadline: Option<Instant>,
    pub(crate) tenant: Option<String>,
    pub(crate) session: Option<String>,
    pub(crate) trace: Option<Trace>,
}

impl SynthRequest {
    /// A request with default scheduling: priority 0, no deadline, no
    /// tenant key.
    pub fn new(spec: Spec) -> Self {
        SynthRequest {
            spec,
            priority: 0,
            deadline: None,
            tenant: None,
            session: None,
            trace: None,
        }
    }

    /// Sets the scheduling priority. Higher runs earlier; equal priorities
    /// are served in submission order.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets an absolute deadline. A job still queued when its deadline
    /// passes fails fast with [`SynthesisError::Cancelled`] instead of
    /// occupying a worker; a job already running is cancelled
    /// cooperatively through its worker's
    /// [`CancelToken`](rei_core::CancelToken).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline relative to now (see
    /// [`with_deadline`](SynthRequest::with_deadline)).
    pub fn with_timeout(self, timeout: Duration) -> Self {
        let deadline = Instant::now() + timeout;
        self.with_deadline(deadline)
    }

    /// Sets the tenant key a [`ShardRouter`](crate::ShardRouter) routes
    /// by: every request carrying the same tenant key lands on the same
    /// pool. Requests without one are routed by the specification's
    /// stable [`fingerprint`](Spec::fingerprint) instead. The key plays
    /// no part in result caching — two tenants of one pool asking for the
    /// same specification still share a cache entry.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Makes this a *refinement* of the named open session (see
    /// [`SynthService::open_session`](crate::SynthService::open_session)):
    /// instead of the cache/coalesce/enqueue path, the request runs
    /// through the session's retained [`RefineState`](rei_core::RefineState),
    /// reusing the previous run's level caches when the new specification
    /// strengthens the old one. The response's
    /// [`reuse`](SynthResponse::reuse) reports what was reused. When
    /// submitting through a [`ShardRouter`](crate::ShardRouter), carry the
    /// same tenant key the session was opened under (or none, both times)
    /// so the refine routes to the pool holding the session.
    pub fn with_session(mut self, session: impl Into<String>) -> Self {
        self.session = Some(session.into());
        self
    }

    /// Attaches a per-request trace handle (normally assigned at
    /// admission by the network front-end). Every layer the request
    /// passes through appends its phase event to the handle; the
    /// response's [`JobHandle`] carries it back out so the caller can
    /// correlate wire responses with timelines.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The attached trace handle, if any.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The specification to synthesise for.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// The tenant routing key, if any.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// The session this request refines, if any.
    pub fn session(&self) -> Option<&str> {
        self.session.as_deref()
    }

    /// The scheduling priority.
    pub fn priority(&self) -> i32 {
        self.priority
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

/// How a response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseSource {
    /// A synthesis ran for this request.
    Fresh,
    /// The result was served from the result cache; no synthesis ran.
    Cache,
    /// The request was coalesced onto an identical in-flight job; one
    /// synthesis served all coalesced requests.
    Coalesced,
    /// The request refined an open session; the response's
    /// [`reuse`](SynthResponse::reuse) says how much of the session's
    /// retained state answered it.
    Session,
}

impl ResponseSource {
    /// A stable lowercase label (`fresh` / `cache` / `coalesced` /
    /// `session`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ResponseSource::Fresh => "fresh",
            ResponseSource::Cache => "cache",
            ResponseSource::Coalesced => "coalesced",
            ResponseSource::Session => "session",
        }
    }
}

impl fmt::Display for ResponseSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The service's answer to one request.
#[derive(Debug, Clone)]
pub struct SynthResponse {
    /// The synthesis outcome. Cache hits and coalesced requests receive a
    /// clone of the original result (same regex, same minimal cost); the
    /// per-run counters in `stats` belong to the run that produced it
    /// (zeroed for pure cache hits — no work happened).
    pub outcome: Result<SynthesisResult, SynthesisError>,
    /// Where the answer came from.
    pub source: ResponseSource,
    /// Time between submission and completion of this request.
    pub waited: Duration,
    /// Wall-clock time of the synthesis run itself (zero when no run
    /// happened: cache hits and jobs whose deadline had already expired).
    pub ran: Duration,
    /// For session refinements ([`ResponseSource::Session`]): how much of
    /// the session's retained state answered the request — unchanged-spec
    /// replay, warm reuse, or a cold fallback with its reason. `None` on
    /// every other path.
    pub reuse: Option<ReuseDecision>,
}

/// The shared completion slot of one job. The worker fills it exactly
/// once; every handle coalesced onto the job blocks on it.
///
/// The state also carries the job's *effective deadline*: the most
/// lenient deadline across every request coalesced onto it. A deadline
/// belongs to a request, not to the specification — so a deadline-free
/// duplicate attaching to a deadlined in-flight job relaxes the job's
/// deadline to "none" rather than inheriting the initiator's budget.
#[derive(Debug)]
pub(crate) struct JobState {
    slot: Mutex<Option<Completion>>,
    done: Condvar,
    deadline: Mutex<DeadlineSlot>,
}

/// The effective deadline of a job (see [`JobState`]). `unbounded` wins
/// permanently once any coalesced request has no deadline.
#[derive(Debug, Clone, Copy)]
struct DeadlineSlot {
    deadline: Option<Instant>,
    unbounded: bool,
}

/// What the worker stores when the job finishes.
#[derive(Debug, Clone)]
pub(crate) struct Completion {
    pub outcome: Result<SynthesisResult, SynthesisError>,
    pub finished: Instant,
    pub ran: Duration,
    pub reuse: Option<ReuseDecision>,
}

impl JobState {
    /// A fresh state whose effective deadline starts as the initiating
    /// request's deadline.
    pub fn new(deadline: Option<Instant>) -> Arc<Self> {
        Arc::new(JobState {
            slot: Mutex::new(None),
            done: Condvar::new(),
            deadline: Mutex::new(DeadlineSlot {
                unbounded: deadline.is_none(),
                deadline,
            }),
        })
    }

    /// A state that is already complete (used for cache hits).
    pub fn completed(outcome: Result<SynthesisResult, SynthesisError>) -> Arc<Self> {
        let state = JobState::new(None);
        state.complete(Completion {
            outcome,
            finished: Instant::now(),
            ran: Duration::ZERO,
            reuse: None,
        });
        state
    }

    /// Relaxes the job's effective deadline with a coalescing request's:
    /// the later of the two wins, and "no deadline" wins outright.
    pub fn relax_deadline(&self, other: Option<Instant>) {
        let mut slot = self.deadline.lock().unwrap_or_else(|e| e.into_inner());
        match other {
            None => {
                slot.unbounded = true;
                slot.deadline = None;
            }
            Some(other) if !slot.unbounded => {
                slot.deadline = Some(slot.deadline.map_or(other, |cur| cur.max(other)));
            }
            Some(_) => {}
        }
    }

    /// The effective deadline at this moment. The worker samples it when
    /// the job is dequeued and once more before arming the watchdog;
    /// requests coalescing *after* the run started cannot relax the
    /// already-armed cancellation (they simply share its outcome, and a
    /// deadline failure is never cached, so a retry runs fresh).
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .deadline
    }

    pub fn complete(&self, completion: Completion) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(slot.is_none(), "a job completes exactly once");
        *slot = Some(completion);
        drop(slot);
        self.done.notify_all();
    }

    fn wait(&self) -> Completion {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(completion) = slot.as_ref() {
                return completion.clone();
            }
            slot = self.done.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn try_get(&self) -> Option<Completion> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// A handle to a submitted request. Obtain the response with
/// [`wait`](JobHandle::wait); dropping the handle does not cancel the job
/// (coalesced requests may share it).
#[derive(Debug, Clone)]
pub struct JobHandle {
    pub(crate) state: Arc<JobState>,
    pub(crate) source: ResponseSource,
    pub(crate) submitted: Instant,
    pub(crate) trace: Option<Trace>,
}

impl JobHandle {
    /// Blocks until the job completes and returns the response.
    pub fn wait(&self) -> SynthResponse {
        self.response(self.state.wait())
    }

    /// The request's trace handle, if one was attached at submission.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Returns the response if the job has already completed.
    pub fn try_wait(&self) -> Option<SynthResponse> {
        self.state.try_get().map(|c| self.response(c))
    }

    /// Where this handle's answer comes from. Known at submission time:
    /// the first request for a spec is [`Fresh`](ResponseSource::Fresh),
    /// later identical ones are coalesced or cache-served.
    pub fn source(&self) -> ResponseSource {
        self.source
    }

    fn response(&self, completion: Completion) -> SynthResponse {
        SynthResponse {
            outcome: completion.outcome,
            source: self.source,
            waited: completion
                .finished
                .saturating_duration_since(self.submitted),
            ran: completion.ran,
            reuse: completion.reuse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rei_core::SynthesisStats;

    fn spec() -> Spec {
        Spec::from_strs(["0"], ["1"]).unwrap()
    }

    #[test]
    fn request_builder_records_scheduling_hints() {
        let deadline = Instant::now() + Duration::from_secs(1);
        let request = SynthRequest::new(spec())
            .with_priority(7)
            .with_deadline(deadline);
        assert_eq!(request.priority(), 7);
        assert_eq!(request.deadline(), Some(deadline));
        assert_eq!(request.spec().num_positive(), 1);
        let timed = SynthRequest::new(spec()).with_timeout(Duration::from_millis(10));
        assert!(timed.deadline().is_some());
        assert_eq!(SynthRequest::new(spec()).deadline(), None);
    }

    #[test]
    fn completed_state_serves_waiters_immediately() {
        let err = SynthesisError::Cancelled {
            stats: SynthesisStats::default(),
        };
        let state = JobState::completed(Err(err));
        let handle = JobHandle {
            state,
            source: ResponseSource::Cache,
            submitted: Instant::now(),
            trace: None,
        };
        let response = handle.try_wait().expect("already complete");
        assert!(matches!(
            response.outcome,
            Err(SynthesisError::Cancelled { .. })
        ));
        assert_eq!(response.source, ResponseSource::Cache);
        assert_eq!(response.ran, Duration::ZERO);
        assert_eq!(handle.wait().source, ResponseSource::Cache);
    }

    #[test]
    fn waiters_block_until_completion() {
        let state = JobState::new(None);
        let handle = JobHandle {
            state: Arc::clone(&state),
            source: ResponseSource::Fresh,
            submitted: Instant::now(),
            trace: None,
        };
        assert!(handle.try_wait().is_none());
        let waiter = std::thread::spawn({
            let handle = handle.clone();
            move || handle.wait()
        });
        state.complete(Completion {
            outcome: Err(SynthesisError::Cancelled {
                stats: SynthesisStats::default(),
            }),
            finished: Instant::now(),
            ran: Duration::from_millis(3),
            reuse: None,
        });
        let response = waiter.join().unwrap();
        assert_eq!(response.ran, Duration::from_millis(3));
        assert_eq!(response.source, ResponseSource::Fresh);
    }

    #[test]
    fn deadline_relaxation_takes_the_most_lenient() {
        let early = Instant::now();
        let late = early + Duration::from_secs(1);
        let state = JobState::new(Some(early));
        assert_eq!(state.deadline(), Some(early));
        state.relax_deadline(Some(late));
        assert_eq!(state.deadline(), Some(late));
        state.relax_deadline(Some(early));
        assert_eq!(state.deadline(), Some(late), "earlier deadlines lose");
        state.relax_deadline(None);
        assert_eq!(state.deadline(), None);
        state.relax_deadline(Some(late));
        assert_eq!(state.deadline(), None, "unbounded wins permanently");
        assert_eq!(JobState::new(None).deadline(), None);
    }

    #[test]
    fn source_labels_are_stable() {
        assert_eq!(ResponseSource::Fresh.to_string(), "fresh");
        assert_eq!(ResponseSource::Cache.as_str(), "cache");
        assert_eq!(ResponseSource::Coalesced.as_str(), "coalesced");
        assert_eq!(ResponseSource::Session.as_str(), "session");
    }
}
