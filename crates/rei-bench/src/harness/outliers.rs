//! The outlier table: fraction of benchmarks finishing under each duration
//! threshold (Section 4, "A note on outliers").

use serde::{Deserialize, Serialize};

use crate::harness::Figure1Row;

/// The duration thresholds (seconds) reported by the paper's outlier table.
pub const PAPER_THRESHOLDS: [f64; 11] = [
    2.0, 3.0, 4.0, 5.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0,
];

/// One row of the outlier table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutlierRow {
    /// The duration threshold, in seconds.
    pub threshold_seconds: f64,
    /// Percentage of benchmark runs that finished within the threshold.
    pub percent_below: f64,
}

/// Computes the cumulative duration distribution over the Figure 1 rows.
/// Runs that timed out or ran out of memory count as *not* finishing within
/// any threshold, matching the paper's treatment.
pub fn outlier_distribution(rows: &[Figure1Row], thresholds: &[f64]) -> Vec<OutlierRow> {
    let total = rows.len();
    thresholds
        .iter()
        .map(|&threshold_seconds| {
            let below = rows
                .iter()
                .filter(|r| matches!(r.outcome.seconds(), Some(s) if s < threshold_seconds))
                .count();
            let percent_below = if total == 0 {
                0.0
            } else {
                100.0 * below as f64 / total as f64
            };
            OutlierRow {
                threshold_seconds,
                percent_below,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::RunOutcome;

    fn row(seconds: Option<f64>) -> Figure1Row {
        Figure1Row {
            benchmark: "T1-000".into(),
            scheme: 1,
            num_positive: 4,
            num_negative: 4,
            max_len: 4,
            cost_label: "(1, 1, 1, 1, 1)".into(),
            outcome: match seconds {
                Some(seconds) => RunOutcome::Solved {
                    seconds,
                    cost: 5,
                    candidates: 10,
                    regex: "0*".into(),
                },
                None => RunOutcome::Timeout,
            },
        }
    }

    #[test]
    fn distribution_is_cumulative_and_caps_at_100() {
        let rows = vec![row(Some(0.5)), row(Some(2.5)), row(Some(9.0)), row(None)];
        let dist = outlier_distribution(&rows, &[1.0, 3.0, 10.0, 1000.0]);
        let percents: Vec<f64> = dist.iter().map(|r| r.percent_below).collect();
        assert_eq!(percents, vec![25.0, 50.0, 75.0, 75.0]);
        // Monotone non-decreasing.
        assert!(percents.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_input_yields_zero_percentages() {
        let dist = outlier_distribution(&[], &PAPER_THRESHOLDS);
        assert_eq!(dist.len(), PAPER_THRESHOLDS.len());
        assert!(dist.iter().all(|r| r.percent_below == 0.0));
    }
}
