//! Table 2: Paresy versus AlphaRegex on the 25-task suite.

use alpharegex::{AlphaRegex, AlphaRegexConfig, AlphaRegexError};
use rei_core::SynthSession;
use rei_syntax::CostFn;
use serde::{Deserialize, Serialize};

use crate::harness::{run_paresy, HarnessConfig, RunOutcome, Scale};
use crate::suite::{alpharegex_suite, easy_tasks, Task};

/// One row of Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Task name (`no01` … `no25`).
    pub task: String,
    /// English description of the target language.
    pub description: String,
    /// Whether AlphaRegex ran with its wild-card heuristic (`†`).
    pub wildcard: bool,
    /// Outcome of the AlphaRegex baseline.
    pub alpha: RunOutcome,
    /// Outcome of Paresy (sequential engine, same cost scale).
    pub paresy: RunOutcome,
    /// `alpha seconds / paresy seconds` when both solved.
    pub speedup: Option<f64>,
    /// Ratio of candidate expressions checked, `paresy / alpha`.
    pub res_increase: Option<f64>,
    /// Whether AlphaRegex's result is cost-minimal (it matches Paresy's
    /// cost); `None` when either tool failed.
    pub alpha_minimal: Option<bool>,
}

fn run_alpharegex(config: &HarnessConfig, task: &Task) -> RunOutcome {
    let alpha_config = AlphaRegexConfig {
        costs: CostFn::ALPHAREGEX,
        use_wildcard: task.wildcard,
        time_budget: Some(config.time_budget * 4),
        ..AlphaRegexConfig::default()
    };
    let started = std::time::Instant::now();
    match AlphaRegex::with_config(alpha_config).run(&task.spec()) {
        Ok(result) => RunOutcome::Solved {
            seconds: started.elapsed().as_secs_f64(),
            cost: result.cost,
            candidates: result.res_checked,
            regex: result.regex.to_string(),
        },
        Err(AlphaRegexError::EpsilonExample) => RunOutcome::NotFound,
        Err(AlphaRegexError::SearchExhausted { .. }) => RunOutcome::Timeout,
    }
}

/// Runs the Table 2 comparison. In `Quick` scale only the easier tasks are
/// used so the whole table fits in seconds; `Full` scale runs all 25 tasks.
pub fn run_table2(config: &HarnessConfig) -> Vec<Table2Row> {
    let tasks = match config.scale {
        Scale::Full => alpharegex_suite(),
        Scale::Quick => easy_tasks(8),
    };
    let mut rows = Vec::with_capacity(tasks.len());
    // Paresy on the laptop-CPU setting of the paper: sequential backend,
    // same cost scale as AlphaRegex so the Cost(RE) columns compare. One
    // session serves all tasks of the table.
    let paresy_config = config
        .synth_config(CostFn::ALPHAREGEX)
        .with_time_budget(config.time_budget * 4);
    let mut paresy_session = SynthSession::new(paresy_config).expect("harness config is valid");
    for task in &tasks {
        let alpha = run_alpharegex(config, task);
        let paresy = run_paresy(&mut paresy_session, &task.spec());

        let speedup = match (alpha.seconds(), paresy.seconds()) {
            (Some(a), Some(p)) if p > 0.0 => Some(a / p),
            _ => None,
        };
        let res_increase = match (alpha.candidates(), paresy.candidates()) {
            (Some(a), Some(p)) if a > 0 => Some(p as f64 / a as f64),
            _ => None,
        };
        let alpha_minimal = match (alpha.cost(), paresy.cost()) {
            (Some(a), Some(p)) => Some(a <= p),
            _ => None,
        };
        rows.push(Table2Row {
            task: task.name(),
            description: task.description.to_string(),
            wildcard: task.wildcard,
            alpha,
            paresy,
            speedup,
            res_increase,
            alpha_minimal,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table2_solves_easy_tasks_with_both_tools() {
        let mut config = HarnessConfig::quick();
        config.time_budget = std::time::Duration::from_millis(500);
        let rows = run_table2(&config);
        assert!(!rows.is_empty());
        let paresy_solved = rows.iter().filter(|r| r.paresy.is_solved()).count();
        assert!(
            paresy_solved * 2 >= rows.len(),
            "Paresy solved only {paresy_solved} of {} quick tasks",
            rows.len()
        );
        for row in &rows {
            // Whenever both tools solved a task, Paresy's result is never
            // more expensive than AlphaRegex's (Paresy is minimal).
            if let (Some(a), Some(p)) = (row.alpha.cost(), row.paresy.cost()) {
                assert!(p <= a, "{}: paresy {} vs alpharegex {}", row.task, p, a);
            }
        }
    }
}
