//! The allowed-error table of Section 5.2: dependency of synthesis cost on
//! the allowed error.

use rei_lang::Spec;
use rei_syntax::CostFn;
use serde::{Deserialize, Serialize};

use crate::harness::{run_paresy, HarnessConfig, RunOutcome, Scale};

/// One row of the allowed-error table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorRow {
    /// The allowed error as a percentage of `#(P ∪ N)`.
    pub allowed_error_percent: u32,
    /// The outcome of the run (candidates checked, result, cost).
    pub outcome: RunOutcome,
}

/// The specification used in Section 5.2 of the paper (the top row of
/// Table 1).
pub fn paper_error_spec() -> Spec {
    Spec::from_strs(
        [
            "00", "1101", "0001", "0111", "001", "1", "10", "1100", "111", "1010",
        ],
        [
            "", "0", "0000", "0011", "01", "010", "011", "100", "1000", "1001", "11", "1110",
        ],
    )
    .expect("the paper's §5.2 example sets are disjoint")
}

/// Runs the allowed-error sweep on the paper's specification with the
/// uniform cost function.
///
/// In `Quick` scale the sweep starts at 15 % (the exact-synthesis end of
/// the sweep needs billions of candidates and is only attempted in `Full`
/// scale, where runs that exceed the time budget are reported as
/// timeouts).
pub fn run_error_table(config: &HarnessConfig) -> Vec<ErrorRow> {
    let spec = paper_error_spec();
    let percentages: Vec<u32> = match config.scale {
        Scale::Quick => (15..=50).step_by(5).collect(),
        Scale::Full => (0..=50).step_by(5).collect(),
    };
    // The whole sweep shares one device; each allowed-error setting is its
    // own session (the config differs), built over that device.
    let device = config.device();
    percentages
        .into_iter()
        .map(|percent| {
            let relaxed = config
                .synth_config(CostFn::UNIFORM)
                .with_allowed_error(percent as f64 / 100.0);
            let mut session = config.parallel_session_with(relaxed, &device);
            ErrorRow {
                allowed_error_percent: percent,
                outcome: run_paresy(&mut session, &spec),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_matches_the_published_sizes() {
        let spec = paper_error_spec();
        assert_eq!(spec.num_positive(), 10);
        assert_eq!(spec.num_negative(), 12);
        assert_eq!(spec.max_example_len(), 4);
    }

    #[test]
    fn quick_sweep_shows_monotone_cost_decrease() {
        let config = HarnessConfig::quick();
        let rows = run_error_table(&config);
        assert_eq!(rows.first().unwrap().allowed_error_percent, 15);
        assert_eq!(rows.last().unwrap().allowed_error_percent, 50);
        // Costs are non-increasing as the allowed error grows (whenever the
        // runs solved), and the 50 % row degenerates to ∅ as in the paper.
        let costs: Vec<u64> = rows.iter().filter_map(|r| r.outcome.cost()).collect();
        assert!(
            costs.windows(2).all(|w| w[0] >= w[1]),
            "costs not monotone: {costs:?}"
        );
        if let RunOutcome::Solved { regex, .. } = &rows.last().unwrap().outcome {
            assert_eq!(regex, "∅");
        } else {
            panic!("50% row should solve trivially");
        }
    }
}
