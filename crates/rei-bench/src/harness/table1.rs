//! Table 1: sequential (CPU) versus data-parallel (simulated GPU) engine
//! on the hardest benchmark per (scheme, cost function).

use serde::{Deserialize, Serialize};

use crate::costs::PAPER_COST_FUNCTIONS;
use crate::harness::figure1::benchmark_pool;
use crate::harness::{run_paresy, HarnessConfig, RunOutcome};

/// One row of Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Benchmark generation scheme (1 or 2).
    pub scheme: u8,
    /// Benchmark name.
    pub benchmark: String,
    /// Number of positive examples.
    pub num_positive: usize,
    /// Number of negative examples.
    pub num_negative: usize,
    /// Label of the cost function.
    pub cost_label: String,
    /// Outcome of the sequential engine.
    pub cpu: RunOutcome,
    /// Outcome of the data-parallel engine.
    pub gpu: RunOutcome,
    /// `cpu seconds / gpu seconds` when both solved.
    pub speedup: Option<f64>,
    /// Number of candidate expressions generated (from the parallel run).
    pub candidates: Option<u64>,
}

/// Runs the Table 1 comparison.
///
/// Following the paper's protocol, for each pair (scheme, cost function)
/// the hardest benchmark of the pool that the parallel backend still
/// solves within the time budget is selected (hardness measured by the
/// number of generated candidates); that instance is then timed on both
/// backends. The sequential run gets a generously larger time budget so
/// that the comparison is not cut short.
///
/// The whole table shares one simulated device: each (scheme, cost
/// function) pair gets a session over it, so device setup is paid once per
/// suite instead of once per probed benchmark as before.
pub fn run_table1(config: &HarnessConfig) -> Vec<Table1Row> {
    let pool = benchmark_pool(config);
    let device = config.device();
    let mut rows = Vec::new();
    for scheme in [1u8, 2u8] {
        for named in PAPER_COST_FUNCTIONS {
            let mut gpu_session = config.parallel_session(named.costs, &device);
            // Select the hardest solvable instance for this combination.
            let mut hardest: Option<(&crate::generator::Benchmark, RunOutcome)> = None;
            for benchmark in pool.iter().filter(|b| b.scheme == scheme) {
                let outcome = run_paresy(&mut gpu_session, &benchmark.spec);
                if !outcome.is_solved() {
                    continue;
                }
                let harder = match &hardest {
                    None => true,
                    Some((_, best)) => outcome.candidates() > best.candidates(),
                };
                if harder {
                    hardest = Some((benchmark, outcome));
                }
            }
            let Some((benchmark, gpu_probe)) = hardest else {
                continue;
            };

            // Re-time both backends on the selected instance. The
            // sequential run gets 20x the budget, mirroring the paper where
            // the CPU runs take ~1000x longer and are not subject to the
            // 5-second GPU timeout.
            let gpu = run_paresy(&mut gpu_session, &benchmark.spec);
            let cpu_config = config
                .synth_config(named.costs)
                .with_time_budget(config.time_budget * 20);
            let mut cpu_session =
                rei_core::SynthSession::new(cpu_config).expect("harness config is valid");
            let cpu = run_paresy(&mut cpu_session, &benchmark.spec);
            let speedup = match (cpu.seconds(), gpu.seconds()) {
                (Some(c), Some(g)) if g > 0.0 => Some(c / g),
                _ => None,
            };
            rows.push(Table1Row {
                scheme,
                benchmark: benchmark.name.clone(),
                num_positive: benchmark.spec.num_positive(),
                num_negative: benchmark.spec.num_negative(),
                cost_label: named.label.to_string(),
                candidates: gpu.candidates().or_else(|| gpu_probe.candidates()),
                cpu,
                gpu,
                speedup,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn quick_table1_has_rows_for_both_schemes() {
        let mut config = HarnessConfig::quick();
        config.time_budget = std::time::Duration::from_millis(250);
        let rows = run_table1(&config);
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| r.scheme == 1 || r.scheme == 2));
        // Where both engines solved, the result costs agree (both engines
        // are minimal), even though the expressions may differ.
        for row in &rows {
            if let (Some(c), Some(g)) = (row.cpu.cost(), row.gpu.cost()) {
                assert_eq!(
                    c, g,
                    "engines disagree on {} / {}",
                    row.benchmark, row.cost_label
                );
            }
        }
        assert_eq!(config.scale, Scale::Quick);
    }
}
