//! The `serve` experiment: service throughput over the Table 1 pool.
//!
//! Replays the shared benchmark pool through a [`ShardRouter`] of
//! [`SynthService`](rei_service::SynthService) pools three times:
//!
//! * a **cold pass** that submits every specification twice from empty
//!   caches — the duplicates exercise in-flight coalescing (or, when the
//!   original already finished, the result cache), so the pool's worth of
//!   duplicate traffic triggers no duplicate synthesis;
//! * a **warm pass** that resubmits the whole pool against the populated
//!   caches — the replay should be answered (almost) entirely from cache
//!   and therefore run in strictly less wall-clock than the cold pass;
//! * a **restart pass** through a *fresh* router over the same persistent
//!   cache directory — the first router's shutdown compacted each shard's
//!   JSONL file, so the new router (a new process, as far as the caches
//!   can tell) answers the replay from disk-warmed caches without
//!   running a single synthesis;
//! * a **fused pass** that bursts the whole pool at a standalone
//!   single-worker service — every request behind the first queues up, so
//!   the worker drains them into fused level sweeps and the batch
//!   counters prove cross-request fusion fired (`fused_requests` strictly
//!   above `fused_batches`);
//! * a **recovery pass** that fabricates a multi-segment write-ahead log
//!   of synthetic records (small `roll_bytes`, as a crashed server would
//!   leave behind) and times the read-only [`replay`] of it serially
//!   (one thread) versus in parallel (one thread per core), minimum of
//!   three rounds each — the number behind the claim that a restarted
//!   server warms up faster than a serial log scan;
//! * a **refine pass** that replays each benchmark as an *interactive
//!   refinement chain*: the maximal examples (those that are not infixes
//!   of other examples) open a session, the remaining examples arrive
//!   one at a time as `refine` requests against the warm session, and
//!   every step is cold re-solved on a second, sessionless service for
//!   comparison — the number behind the claim that refining a session
//!   beats re-solving the strengthened specification from scratch.
//!
//! The report lands in the `service` section of `BENCH_core.json` next to
//! the kernel and backend baselines (see `reproduce serve`), including a
//! per-pool breakdown of the sharded traffic.

use std::collections::BTreeSet;
use std::path::Path;
use std::time::{Duration, Instant};

use rei_lang::{Spec, Word};
use rei_service::json::Json;
use rei_service::{
    replay, RouterConfig, RouterSnapshot, ServiceConfig, ShardRouter, SynthRequest, SynthService,
    WalOptions, WalStore,
};

use crate::costs::REFERENCE;
use crate::harness::figure1::benchmark_pool;
use crate::harness::HarnessConfig;

/// Counters of one pass over the pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServePass {
    /// Requests submitted in this pass.
    pub submitted: u64,
    /// Wall-clock seconds from first submission to last response.
    pub wall_seconds: f64,
    /// Responses carrying an expression.
    pub solved: usize,
    /// Responses carrying an error (timeout, not found, …).
    pub failed: usize,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Requests coalesced onto an identical in-flight job.
    pub coalesced: u64,
}

impl ServePass {
    /// `cache_hits / submitted` — the acceptance gauge of the warm and
    /// restart passes.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.submitted as f64
        }
    }

    fn to_json(self) -> Json {
        Json::object([
            ("submitted", Json::uint(self.submitted)),
            ("wall_seconds", Json::fixed(self.wall_seconds, 4)),
            ("solved", Json::uint(self.solved as u64)),
            ("failed", Json::uint(self.failed as u64)),
            ("cache_hits", Json::uint(self.cache_hits)),
            ("coalesced", Json::uint(self.coalesced)),
            ("cache_hit_rate", Json::fixed(self.cache_hit_rate(), 4)),
        ])
    }
}

/// Final counters of one pool of the sharded cold+warm router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolBreakdown {
    /// The pool's name (`pool-0` …).
    pub name: String,
    /// Requests routed to this pool across the cold and warm passes.
    pub submitted: u64,
    /// Cache-served requests of this pool.
    pub cache_hits: u64,
    /// Coalesced requests of this pool.
    pub coalesced: u64,
    /// Fresh jobs this pool's workers completed.
    pub completed: u64,
    /// Worker threads of this pool.
    pub workers: usize,
}

impl PoolBreakdown {
    fn to_json(&self) -> Json {
        Json::object([
            ("pool", Json::str(&self.name)),
            ("submitted", Json::uint(self.submitted)),
            ("cache_hits", Json::uint(self.cache_hits)),
            ("coalesced", Json::uint(self.coalesced)),
            ("completed", Json::uint(self.completed)),
            ("workers", Json::uint(self.workers as u64)),
        ])
    }
}

/// Exact nearest-rank percentiles over one pass's end-to-end request
/// latencies, measured client-side from each response's `waited`
/// (submission to completion). These are ground truth for the ≤ 1/16
/// relative error the service-side histograms guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of requests sampled.
    pub count: usize,
    /// Median end-to-end latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile end-to-end latency in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile end-to-end latency in milliseconds.
    pub p99_ms: f64,
}

impl LatencySummary {
    /// Sorts the samples and reads exact nearest-rank quantiles.
    fn from_samples(samples: &[Duration]) -> Self {
        let mut ms: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        ms.sort_by(f64::total_cmp);
        let pick = |q: f64| -> f64 {
            match ms.len() {
                0 => 0.0,
                len => ms[((q * len as f64).ceil() as usize).clamp(1, len) - 1],
            }
        };
        Self {
            count: ms.len(),
            p50_ms: pick(0.50),
            p95_ms: pick(0.95),
            p99_ms: pick(0.99),
        }
    }

    fn to_json(self) -> Json {
        Json::object([
            ("count", Json::uint(self.count as u64)),
            ("p50_ms", Json::fixed(self.p50_ms, 3)),
            ("p95_ms", Json::fixed(self.p95_ms, 3)),
            ("p99_ms", Json::fixed(self.p99_ms, 3)),
        ])
    }
}

/// Counters of the fused-batch pass: the pool burst at a single-worker
/// service so the queue backs up and the worker drains fused batches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedPass {
    /// Requests submitted in the burst.
    pub submitted: u64,
    /// Wall-clock seconds from first submission to last response.
    pub wall_seconds: f64,
    /// Responses carrying an expression.
    pub solved: usize,
    /// Responses carrying an error.
    pub failed: usize,
    /// The service's fuse limit (batch size cap).
    pub fuse_limit: usize,
    /// Fused level sweeps the worker ran (batches of ≥ 2 requests).
    pub fused_batches: u64,
    /// Requests served by those sweeps. Strictly above `fused_batches`
    /// whenever fusion genuinely shared a sweep.
    pub fused_requests: u64,
}

impl FusedPass {
    fn to_json(self) -> Json {
        Json::object([
            ("submitted", Json::uint(self.submitted)),
            ("wall_seconds", Json::fixed(self.wall_seconds, 4)),
            ("solved", Json::uint(self.solved as u64)),
            ("failed", Json::uint(self.failed as u64)),
            ("fuse_limit", Json::uint(self.fuse_limit as u64)),
            ("fused_batches", Json::uint(self.fused_batches)),
            ("fused_requests", Json::uint(self.fused_requests)),
        ])
    }
}

/// Serial-versus-parallel recovery timings over a fabricated
/// multi-segment write-ahead log (see [`run_recovery`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryBench {
    /// Synthetic records written into the fabricated store.
    pub records: u64,
    /// Segment files the replay reads.
    pub segments: usize,
    /// Distinct records a recovery loads (all of them: keys are unique).
    pub loaded: u64,
    /// Best-of-rounds wall seconds of the one-thread replay.
    pub serial_seconds: f64,
    /// Best-of-rounds wall seconds of the one-thread-per-core replay.
    pub parallel_seconds: f64,
    /// Threads the parallel replay actually used.
    pub threads: usize,
    /// Cores the machine offered (`available_parallelism`).
    pub available_cores: usize,
    /// Timing rounds per mode (the minimum is reported).
    pub rounds: usize,
}

impl RecoveryBench {
    /// `serial_seconds / parallel_seconds` (0 when parallel is 0).
    pub fn speedup(&self) -> f64 {
        if self.parallel_seconds > 0.0 {
            self.serial_seconds / self.parallel_seconds
        } else {
            0.0
        }
    }

    fn to_json(self) -> Json {
        Json::object([
            ("records", Json::uint(self.records)),
            ("segments", Json::uint(self.segments as u64)),
            ("loaded", Json::uint(self.loaded)),
            ("serial_seconds", Json::fixed(self.serial_seconds, 6)),
            ("parallel_seconds", Json::fixed(self.parallel_seconds, 6)),
            ("threads", Json::uint(self.threads as u64)),
            ("available_cores", Json::uint(self.available_cores as u64)),
            ("rounds", Json::uint(self.rounds as u64)),
            ("speedup", Json::fixed(self.speedup(), 2)),
        ])
    }
}

/// Fabricates a store of `records` synthetic results spread over many
/// small segments under `dir` (as a crashed server's unfolded history
/// would look), then times the read-only [`replay`] of it with one
/// thread versus one per core — the minimum of three rounds each, so a
/// scheduling hiccup cannot fake a regression. The fabricated store is
/// removed afterwards.
pub fn run_recovery(dir: &Path, records: u64) -> RecoveryBench {
    let root = dir.join("recovery-bench");
    std::fs::remove_dir_all(&root).ok();
    {
        let (store, _) = WalStore::open(
            &root,
            "bench",
            WalOptions {
                roll_bytes: 16 * 1024,
                ..WalOptions::default()
            },
        )
        .expect("the recovery bench store opens");
        for i in 0..records {
            assert!(
                store.append(&format!("bench-spec-{i:06}"), "(0+1)*", i % 17 + 1),
                "fabricated append {i} failed"
            );
        }
        store.seal();
    }
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let rounds = 3;
    let time = |threads: usize| {
        (0..rounds)
            .map(|_| replay(&root, "bench", threads))
            .min_by(|a, b| a.wall.cmp(&b.wall))
            .expect("at least one round ran")
    };
    let serial = time(1);
    let parallel = time(0);
    std::fs::remove_dir_all(&root).ok();
    RecoveryBench {
        records,
        segments: parallel.segments,
        loaded: parallel.loaded,
        serial_seconds: serial.wall.as_secs_f64(),
        parallel_seconds: parallel.wall.as_secs_f64(),
        threads: parallel.threads,
        available_cores: available,
        rounds,
    }
}

/// Per-chain counters of the interactive-refinement pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainStat {
    /// Examples in the chain's base (maximal-word) specification.
    pub base_examples: usize,
    /// Refinement steps the chain played (one example added per step).
    pub steps: usize,
    /// Wall seconds the warm session spent answering all steps.
    pub refine_seconds: f64,
    /// Wall seconds the sessionless service spent cold re-solving the
    /// same strengthened specifications.
    pub cold_seconds: f64,
}

impl ChainStat {
    fn to_json(&self) -> Json {
        Json::object([
            ("base_examples", Json::uint(self.base_examples as u64)),
            ("steps", Json::uint(self.steps as u64)),
            ("refine_seconds", Json::fixed(self.refine_seconds, 6)),
            ("cold_seconds", Json::fixed(self.cold_seconds, 6)),
        ])
    }
}

/// Counters of the interactive-refinement pass: warm `refine` steps
/// against a session versus cold re-solves of the same strengthened
/// specifications.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinePass {
    /// Benchmarks that yielded a refinement chain (a solvable base with
    /// at least one deferred example).
    pub chains: usize,
    /// Total refinement steps across all chains.
    pub steps: u64,
    /// Steps the session answered with warm reuse (retained state).
    pub warm: u64,
    /// Wall seconds of all warm refine steps.
    pub refine_seconds_total: f64,
    /// Wall seconds of all cold re-solves of the same specifications.
    pub cold_seconds_total: f64,
    /// Per-chain breakdown.
    pub per_chain: Vec<ChainStat>,
}

impl RefinePass {
    /// `cold_seconds_total / refine_seconds_total` (0 when refine is 0).
    pub fn speedup(&self) -> f64 {
        if self.refine_seconds_total > 0.0 {
            self.cold_seconds_total / self.refine_seconds_total
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("chains", Json::uint(self.chains as u64)),
            ("steps", Json::uint(self.steps)),
            ("warm", Json::uint(self.warm)),
            (
                "refine_seconds_total",
                Json::fixed(self.refine_seconds_total, 6),
            ),
            (
                "cold_seconds_total",
                Json::fixed(self.cold_seconds_total, 6),
            ),
            ("speedup", Json::fixed(self.speedup(), 2)),
            (
                "per_chain",
                Json::array(self.per_chain.iter().map(ChainStat::to_json)),
            ),
        ])
    }
}

/// Splits a specification into a refinement chain: the *base* keeps the
/// maximal examples — words that are not proper infixes of any other
/// example — and the remaining (infix) examples arrive one at a time as
/// refinement steps. Because the maximal words already fix the infix
/// closure, every step strengthens the base without growing the closure,
/// which is exactly the case a warm session resumes instead of falling
/// back cold. Specifications whose base would lose every positive
/// example, or with nothing to defer, yield no chain.
pub fn refinement_chain(spec: &Spec) -> Option<(Spec, Vec<Spec>)> {
    let all: Vec<(&Word, bool)> = spec
        .positive()
        .iter()
        .map(|word| (word, true))
        .chain(spec.negative().iter().map(|word| (word, false)))
        .collect();
    // pos/neg are disjoint sets, so words are unique and "proper infix
    // of another example" is simply "infix of a different example".
    let deferred_word = |word: &Word| {
        all.iter()
            .any(|(other, _)| *other != word && other.contains_infix(word))
    };
    let mut pos: BTreeSet<Word> = BTreeSet::new();
    let mut neg: BTreeSet<Word> = BTreeSet::new();
    let mut deferred: Vec<(Word, bool)> = Vec::new();
    for (word, positive) in &all {
        if deferred_word(word) {
            deferred.push(((*word).clone(), *positive));
        } else if *positive {
            pos.insert((*word).clone());
        } else {
            neg.insert((*word).clone());
        }
    }
    if pos.is_empty() || deferred.is_empty() {
        return None;
    }
    let base = Spec::new(pos.clone(), neg.clone()).ok()?;
    let mut steps = Vec::with_capacity(deferred.len());
    for (word, positive) in deferred {
        if positive {
            pos.insert(word);
        } else {
            neg.insert(word);
        }
        steps.push(Spec::new(pos.clone(), neg.clone()).ok()?);
    }
    Some((base, steps))
}

/// Replays every chain-able benchmark as an interactive refinement: one
/// single-worker service holds the warm sessions, a second, identically
/// configured service cold re-solves each strengthened specification.
/// Both sides run the same backend and budgets, and every step waits for
/// its answer before the next example is added — the interactive usage
/// pattern the session API exists for.
pub fn run_refine_pass(config: &HarnessConfig) -> RefinePass {
    let pool = benchmark_pool(config);
    let synth = config.synth_config(REFERENCE.costs);
    let service_config = || {
        ServiceConfig::new(1)
            .with_queue_capacity(pool.len().max(1))
            .with_synth(synth.clone())
    };
    let warm_service = SynthService::start(service_config()).expect("harness config is valid");
    let cold_service = SynthService::start(service_config()).expect("harness config is valid");

    let mut pass = RefinePass {
        chains: 0,
        steps: 0,
        warm: 0,
        refine_seconds_total: 0.0,
        cold_seconds_total: 0.0,
        per_chain: Vec::new(),
    };
    for (index, bench) in pool.iter().enumerate() {
        let Some((base, steps)) = refinement_chain(&bench.spec) else {
            continue;
        };
        let name = format!("chain-{index}");
        warm_service
            .open_session(Some(&name), None)
            .expect("service accepts sessions while open");
        // Solve the base through the session (untimed: both sides would
        // pay it identically) and skip chains whose base fails — a
        // failed previous run never retains state to refine from.
        let base_request = SynthRequest::new(base).with_session(&name);
        let solved = warm_service
            .submit(base_request)
            .expect("session was just opened")
            .wait()
            .outcome
            .is_ok();
        if !solved {
            warm_service.close_session(&name).expect("session is live");
            continue;
        }
        let mut chain = ChainStat {
            base_examples: 0,
            steps: 0,
            refine_seconds: 0.0,
            cold_seconds: 0.0,
        };
        chain.base_examples = bench.spec.len() - steps.len();
        for step in steps {
            let started = Instant::now();
            let refined = warm_service
                .submit(SynthRequest::new(step.clone()).with_session(&name))
                .expect("session is live")
                .wait();
            chain.refine_seconds += started.elapsed().as_secs_f64();
            if refined
                .reuse
                .as_ref()
                .is_some_and(|reuse| reuse.label() == "warm")
            {
                pass.warm += 1;
            }
            let started = Instant::now();
            let _ = cold_service
                .submit(SynthRequest::new(step))
                .expect("cold service accepts while open")
                .wait();
            chain.cold_seconds += started.elapsed().as_secs_f64();
            chain.steps += 1;
        }
        warm_service.close_session(&name).expect("session is live");
        pass.chains += 1;
        pass.steps += chain.steps as u64;
        pass.refine_seconds_total += chain.refine_seconds;
        pass.cold_seconds_total += chain.cold_seconds;
        pass.per_chain.push(chain);
    }
    warm_service.shutdown();
    cold_service.shutdown();
    pass
}

/// The full serve-throughput report.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Worker threads of each pool.
    pub workers: usize,
    /// Canonical backend name each worker session runs.
    pub backend: String,
    /// Job-queue capacity of each pool.
    pub queue_capacity: usize,
    /// Number of distinct specifications in the pool.
    pub pool_size: usize,
    /// The cold pass (duplicated submissions, empty caches).
    pub cold: ServePass,
    /// The warm replay pass (one submission per spec, populated caches).
    pub warm: ServePass,
    /// The replay through a fresh router warmed from the persistent
    /// cache files the first router compacted at shutdown.
    pub restart: ServePass,
    /// Persisted records that warmed the restarted router's caches.
    pub restart_disk_loaded: u64,
    /// End-to-end latency percentiles of the cold pass.
    pub cold_latency: LatencySummary,
    /// End-to-end latency percentiles of the warm replay pass.
    pub warm_latency: LatencySummary,
    /// The fused-batch pass through a standalone single-worker service.
    pub fused: FusedPass,
    /// Serial-versus-parallel recovery timings over a fabricated
    /// multi-segment write-ahead log.
    pub recovery: RecoveryBench,
    /// The interactive-refinement pass: warm session refines versus cold
    /// re-solves of the same strengthened specifications.
    pub refine: RefinePass,
    /// Per-pool breakdown of the cold+warm router.
    pub pools: Vec<PoolBreakdown>,
}

impl ServeReport {
    /// `cold.wall_seconds / warm.wall_seconds` (∞-safe: 0 when warm is 0).
    pub fn replay_speedup(&self) -> f64 {
        if self.warm.wall_seconds > 0.0 {
            self.cold.wall_seconds / self.warm.wall_seconds
        } else {
            0.0
        }
    }

    /// The `service` section merged into `BENCH_core.json`. v3 added the
    /// `fused` pass: cross-request batch-fusion counters from a
    /// single-worker burst. v4 added the `latency` section: exact
    /// client-side end-to-end p50/p95/p99 of the cold and warm passes.
    /// v5 added the `recovery` section: serial-versus-parallel replay of
    /// a fabricated multi-segment write-ahead log. v6 adds the `refine`
    /// section: interactive refinement chains against warm sessions
    /// versus cold re-solves.
    pub fn to_json_value(&self) -> Json {
        Json::object([
            ("schema", Json::str("rei-bench/service-v6")),
            ("workers", Json::uint(self.workers as u64)),
            ("backend", Json::str(&self.backend)),
            ("queue_capacity", Json::uint(self.queue_capacity as u64)),
            ("pool", Json::uint(self.pool_size as u64)),
            ("cold", self.cold.to_json()),
            ("warm", self.warm.to_json()),
            ("restart", self.restart.to_json()),
            ("restart_disk_loaded", Json::uint(self.restart_disk_loaded)),
            (
                "latency",
                Json::object([
                    ("cold", self.cold_latency.to_json()),
                    ("warm", self.warm_latency.to_json()),
                ]),
            ),
            ("fused", self.fused.to_json()),
            ("recovery", self.recovery.to_json()),
            ("refine", self.refine.to_json()),
            ("replay_speedup", Json::fixed(self.replay_speedup(), 2)),
            (
                "pools",
                Json::array(self.pools.iter().map(PoolBreakdown::to_json)),
            ),
        ])
    }
}

fn run_pass(
    router: &ShardRouter,
    specs: impl Iterator<Item = rei_lang::Spec>,
) -> (f64, usize, usize, LatencySummary) {
    let started = Instant::now();
    let handles: Vec<_> = specs
        .map(|spec| {
            router
                .submit(SynthRequest::new(spec))
                .expect("router accepts while open")
        })
        .collect();
    let (mut solved, mut failed) = (0, 0);
    let mut latencies = Vec::with_capacity(handles.len());
    for handle in &handles {
        let response = handle.wait();
        latencies.push(response.waited);
        match response.outcome {
            Ok(_) => solved += 1,
            Err(_) => failed += 1,
        }
    }
    let latency = LatencySummary::from_samples(&latencies);
    (started.elapsed().as_secs_f64(), solved, failed, latency)
}

fn pass_counters(
    snapshot: &RouterSnapshot,
    baseline: &RouterSnapshot,
    wall_seconds: f64,
    solved: usize,
    failed: usize,
) -> ServePass {
    let (now, before) = (snapshot.rollup(), baseline.rollup());
    ServePass {
        submitted: now.submitted - before.submitted,
        wall_seconds,
        solved,
        failed,
        cache_hits: now.cache_hits - before.cache_hits,
        coalesced: now.coalesced - before.coalesced,
    }
}

/// Bursts the whole pool at a standalone single-worker service so every
/// request behind the first backs up in the queue and the worker drains
/// them as fused level sweeps. One worker makes the backlog — and with
/// it `fused_requests > fused_batches` — deterministic: submission takes
/// microseconds, the first synthesis milliseconds.
fn run_fused_pass(config: &HarnessConfig, fuse_limit: usize) -> FusedPass {
    let pool = benchmark_pool(config);
    let service = ServiceConfig::new(1)
        .with_queue_capacity(pool.len().max(1))
        .with_fuse_limit(fuse_limit)
        .with_synth(config.synth_config(REFERENCE.costs));
    let service = SynthService::start(service).expect("harness service config is valid");
    let started = Instant::now();
    let handles: Vec<_> = pool
        .iter()
        .map(|b| {
            service
                .submit(SynthRequest::new(b.spec.clone()))
                .expect("queue sized for the whole burst")
        })
        .collect();
    let (mut solved, mut failed) = (0, 0);
    for handle in &handles {
        match handle.wait().outcome {
            Ok(_) => solved += 1,
            Err(_) => failed += 1,
        }
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    let snapshot = service.shutdown();
    FusedPass {
        submitted: handles.len() as u64,
        wall_seconds,
        solved,
        failed,
        fuse_limit,
        fused_batches: snapshot.fused_batches,
        fused_requests: snapshot.fused_requests,
    }
}

/// Runs the serve experiment: the Table 1 pool through a shard router of
/// `pools` pools with `workers` workers each (cold with duplicates, a
/// cache-warm replay, then a disk-warm replay through a fresh router
/// restarted over `cache_dir`), plus the fused-batch burst through a
/// standalone single-worker service.
pub fn run_serve(
    config: &HarnessConfig,
    workers: usize,
    pools: usize,
    cache_dir: &Path,
) -> ServeReport {
    let pool = benchmark_pool(config);
    let synth = config.synth_config(REFERENCE.costs);
    let backend = synth.backend().name().to_string();
    // Room for the duplicated cold pass without submit-side blocking.
    let queue_capacity = (2 * pool.len()).max(1);
    let service = ServiceConfig::new(workers)
        .with_queue_capacity(queue_capacity)
        .with_synth(synth);
    let router_config = RouterConfig::identical(pools, service).with_cache_dir(cache_dir);
    let router = ShardRouter::start(router_config.clone()).expect("harness router config is valid");

    let cold_specs = pool.iter().flat_map(|b| [b.spec.clone(), b.spec.clone()]);
    let (cold_wall, cold_solved, cold_failed, cold_latency) = run_pass(&router, cold_specs);
    let after_cold = router.metrics();
    let cold = pass_counters(
        &after_cold,
        &RouterSnapshot::default(),
        cold_wall,
        cold_solved,
        cold_failed,
    );

    let warm_specs = pool.iter().map(|b| b.spec.clone());
    let (warm_wall, warm_solved, warm_failed, warm_latency) = run_pass(&router, warm_specs);
    // Shutdown compacts each shard's persistent cache file.
    let after_warm = router.shutdown();
    let warm = pass_counters(
        &after_warm,
        &after_cold,
        warm_wall,
        warm_solved,
        warm_failed,
    );
    let pools_breakdown = after_warm
        .pools
        .iter()
        .map(|(name, snapshot)| PoolBreakdown {
            name: name.clone(),
            submitted: snapshot.submitted,
            cache_hits: snapshot.cache_hits,
            coalesced: snapshot.coalesced,
            completed: snapshot.completed,
            workers: snapshot.workers.len(),
        })
        .collect();

    // "Restart": a fresh router over the same cache directory. Its pools
    // warm from the compacted files, so the replay is disk-served.
    let restarted = ShardRouter::start(router_config).expect("harness router config is valid");
    let restart_specs = pool.iter().map(|b| b.spec.clone());
    let (restart_wall, restart_solved, restart_failed, _) = run_pass(&restarted, restart_specs);
    let after_restart = restarted.shutdown();
    let restart = pass_counters(
        &after_restart,
        &RouterSnapshot::default(),
        restart_wall,
        restart_solved,
        restart_failed,
    );
    let restart_disk_loaded = after_restart.rollup().disk_loaded;

    let fused = run_fused_pass(config, rei_service::DEFAULT_FUSE_LIMIT);

    // The fabricated recovery store lives (briefly) beside the pool
    // stores; `pool-K` and `recovery-bench` never collide.
    let recovery_records = match config.scale {
        crate::harness::Scale::Quick => 5_000,
        crate::harness::Scale::Full => 40_000,
    };
    let recovery = run_recovery(cache_dir, recovery_records);

    let refine = run_refine_pass(config);

    ServeReport {
        workers,
        backend,
        queue_capacity,
        pool_size: pool.len(),
        cold,
        warm,
        restart,
        restart_disk_loaded,
        cold_latency,
        warm_latency,
        fused,
        recovery,
        refine,
        pools: pools_breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> HarnessConfig {
        let mut config = HarnessConfig::quick();
        config.time_budget = std::time::Duration::from_millis(500);
        config
    }

    fn temp_cache_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rei-bench-serve-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn warm_and_restart_replays_are_cache_served_and_faster() {
        let config = tiny_config();
        let dir = temp_cache_dir("warm");
        let report = run_serve(&config, 4, 2, &dir);
        assert_eq!(report.workers, 4);
        assert_eq!(report.backend, "cpu-sequential");
        assert_eq!(report.cold.submitted, 2 * report.pool_size as u64);
        // The duplicated cold submissions never trigger a second run.
        assert_eq!(
            report.cold.cache_hits + report.cold.coalesced,
            report.pool_size as u64
        );
        // Every benchmark the cold pass solved is served from cache on
        // replay; the quick pool solves fully, so the rate is 1.0.
        assert_eq!(report.warm.submitted, report.pool_size as u64);
        assert!(
            report.warm.cache_hit_rate() >= 0.9,
            "warm hit rate {:.2}",
            report.warm.cache_hit_rate()
        );
        assert!(
            report.warm.wall_seconds < report.cold.wall_seconds,
            "warm {} vs cold {}",
            report.warm.wall_seconds,
            report.cold.wall_seconds
        );
        assert!(report.replay_speedup() > 1.0);
        // The restarted router never saw the first router's memory; its
        // hits all come from the compacted cache files on disk.
        assert_eq!(report.restart.submitted, report.pool_size as u64);
        assert!(
            report.restart.cache_hit_rate() >= 0.9,
            "restart hit rate {:.2}",
            report.restart.cache_hit_rate()
        );
        assert!(report.restart_disk_loaded >= report.restart.cache_hits);
        // The single-worker burst backs up the queue, so the worker
        // drains genuinely fused batches: strictly more requests than
        // sweeps.
        assert_eq!(report.fused.submitted, report.pool_size as u64);
        assert!(report.fused.fused_batches > 0, "no fused sweeps ran");
        assert!(
            report.fused.fused_requests > report.fused.fused_batches,
            "fusion never shared a sweep: {} requests in {} batches",
            report.fused.fused_requests,
            report.fused.fused_batches
        );
        // Client-side latency percentiles cover every request, are
        // ordered, and the cache-served replay beats the cold tail.
        assert_eq!(report.cold_latency.count as u64, report.cold.submitted);
        assert_eq!(report.warm_latency.count as u64, report.warm.submitted);
        assert!(report.cold_latency.p50_ms <= report.cold_latency.p95_ms);
        assert!(report.cold_latency.p95_ms <= report.cold_latency.p99_ms);
        assert!(
            report.warm_latency.p99_ms < report.cold_latency.p99_ms,
            "warm p99 {} vs cold p99 {}",
            report.warm_latency.p99_ms,
            report.cold_latency.p99_ms
        );
        // The sharded traffic is accounted per pool and sums back up.
        assert_eq!(report.pools.len(), 2);
        let submitted: u64 = report.pools.iter().map(|p| p.submitted).sum();
        assert_eq!(submitted, report.cold.submitted + report.warm.submitted);
        // The recovery pass replayed a genuinely multi-segment store and
        // loaded every fabricated record, in both modes.
        assert!(report.recovery.segments >= 4, "{:?}", report.recovery);
        assert_eq!(report.recovery.loaded, report.recovery.records);
        assert!(report.recovery.serial_seconds > 0.0);
        assert!(report.recovery.parallel_seconds > 0.0);
        // The refine pass played real chains, the warm session engaged,
        // and refining beat cold re-solving the same strengthened specs.
        assert!(report.refine.chains > 0, "no benchmark yielded a chain");
        assert!(report.refine.steps > 0);
        assert!(report.refine.warm > 0, "no refine step reused state");
        assert_eq!(report.refine.per_chain.len(), report.refine.chains);
        assert!(
            report.refine.refine_seconds_total < report.refine.cold_seconds_total,
            "refine {} vs cold {}",
            report.refine.refine_seconds_total,
            report.refine.cold_seconds_total
        );
        assert!(report.refine.speedup() > 1.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refinement_chains_defer_only_infix_examples() {
        // "101"/"100" keep the closure; "10", "", "0" and "1" are all
        // infixes of them and become the refinement steps.
        let spec = Spec::from_strs(["10", "101", "100"], ["", "0", "1"]).unwrap();
        let (base, steps) = refinement_chain(&spec).expect("the intro spec chains");
        assert_eq!(base.num_positive(), 2);
        assert_eq!(base.num_negative(), 0);
        assert_eq!(steps.len(), 4);
        // Each step adds exactly one example; the last step is the
        // original specification.
        for (index, step) in steps.iter().enumerate() {
            assert_eq!(step.len(), base.len() + index + 1);
        }
        assert_eq!(steps.last().unwrap().canonicalize(), spec.canonicalize());
        // A spec of incomparable words has nothing to defer.
        let flat = Spec::from_strs(["01"], ["10"]).unwrap();
        assert!(refinement_chain(&flat).is_none());
        // A spec whose positives are all infixes of a negative would
        // leave a positive-free base: no chain.
        let swallowed = Spec::from_strs(["0"], ["00"]).unwrap();
        assert!(refinement_chain(&swallowed).is_none());
    }

    #[test]
    fn the_recovery_bench_cleans_up_and_uses_every_core() {
        let dir = temp_cache_dir("recovery");
        std::fs::create_dir_all(&dir).unwrap();
        let bench = run_recovery(&dir, 2_000);
        assert_eq!(bench.records, 2_000);
        assert_eq!(bench.loaded, 2_000, "unique keys all survive the merge");
        assert!(bench.segments >= 4, "{bench:?}");
        assert!(bench.threads >= 1 && bench.threads <= bench.available_cores);
        assert!(bench.rounds == 3);
        assert!(
            !dir.join("recovery-bench").exists(),
            "the fabricated store is removed"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_json_has_the_service_shape() {
        let pass = |submitted, wall_seconds, solved, cache_hits, coalesced| ServePass {
            submitted,
            wall_seconds,
            solved,
            failed: 0,
            cache_hits,
            coalesced,
        };
        let report = ServeReport {
            workers: 4,
            backend: "cpu-sequential".into(),
            queue_capacity: 10,
            pool_size: 5,
            cold: pass(10, 1.5, 10, 2, 3),
            warm: pass(5, 0.1, 5, 5, 0),
            restart: pass(5, 0.1, 5, 5, 0),
            restart_disk_loaded: 5,
            cold_latency: LatencySummary {
                count: 10,
                p50_ms: 2.0,
                p95_ms: 9.0,
                p99_ms: 12.0,
            },
            warm_latency: LatencySummary {
                count: 5,
                p50_ms: 0.05,
                p95_ms: 0.2,
                p99_ms: 0.2,
            },
            fused: FusedPass {
                submitted: 5,
                wall_seconds: 0.8,
                solved: 5,
                failed: 0,
                fuse_limit: 4,
                fused_batches: 2,
                fused_requests: 4,
            },
            recovery: RecoveryBench {
                records: 5000,
                segments: 12,
                loaded: 5000,
                serial_seconds: 0.040,
                parallel_seconds: 0.010,
                threads: 4,
                available_cores: 8,
                rounds: 3,
            },
            refine: RefinePass {
                chains: 2,
                steps: 6,
                warm: 5,
                refine_seconds_total: 0.25,
                cold_seconds_total: 1.0,
                per_chain: vec![ChainStat {
                    base_examples: 3,
                    steps: 3,
                    refine_seconds: 0.1,
                    cold_seconds: 0.5,
                }],
            },
            pools: vec![
                PoolBreakdown {
                    name: "pool-0".into(),
                    submitted: 9,
                    cache_hits: 4,
                    coalesced: 2,
                    completed: 3,
                    workers: 4,
                },
                PoolBreakdown {
                    name: "pool-1".into(),
                    submitted: 6,
                    cache_hits: 3,
                    coalesced: 1,
                    completed: 2,
                    workers: 4,
                },
            ],
        };
        let json = report.to_json_value();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("rei-bench/service-v6")
        );
        let refine = json.get("refine").unwrap();
        assert_eq!(refine.get("chains").and_then(Json::as_u64), Some(2));
        assert_eq!(refine.get("steps").and_then(Json::as_u64), Some(6));
        assert_eq!(refine.get("warm").and_then(Json::as_u64), Some(5));
        assert_eq!(refine.get("speedup").and_then(Json::as_f64), Some(4.0));
        assert_eq!(
            refine
                .get("per_chain")
                .and_then(Json::as_array)
                .map(|chains| chains.len()),
            Some(1)
        );
        let recovery = json.get("recovery").unwrap();
        assert_eq!(recovery.get("records").and_then(Json::as_u64), Some(5000));
        assert_eq!(recovery.get("segments").and_then(Json::as_u64), Some(12));
        assert_eq!(recovery.get("speedup").and_then(Json::as_f64), Some(4.0));
        assert_eq!(
            recovery.get("available_cores").and_then(Json::as_u64),
            Some(8)
        );
        let latency = json.get("latency").unwrap();
        assert_eq!(
            latency
                .get("cold")
                .and_then(|c| c.get("p99_ms"))
                .and_then(Json::as_f64),
            Some(12.0)
        );
        assert_eq!(
            latency
                .get("warm")
                .and_then(|w| w.get("count"))
                .and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(
            json.get("fused")
                .and_then(|f| f.get("fused_requests"))
                .and_then(Json::as_u64),
            Some(4)
        );
        assert_eq!(
            json.get("fused")
                .and_then(|f| f.get("fuse_limit"))
                .and_then(Json::as_u64),
            Some(4)
        );
        assert_eq!(
            json.get("warm")
                .and_then(|w| w.get("cache_hit_rate"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            json.get("restart")
                .and_then(|r| r.get("cache_hits"))
                .and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(
            json.get("restart_disk_loaded").and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(
            json.get("replay_speedup").and_then(Json::as_f64),
            Some(15.0)
        );
        let pools = json.get("pools").and_then(Json::as_array).unwrap();
        assert_eq!(pools.len(), 2);
        assert_eq!(pools[1].get("pool").and_then(Json::as_str), Some("pool-1"));
        let parsed = Json::parse(&json.to_pretty()).unwrap();
        assert_eq!(parsed, json);
    }
}
