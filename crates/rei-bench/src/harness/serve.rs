//! The `serve` experiment: service throughput over the Table 1 pool.
//!
//! Replays the shared benchmark pool through a
//! [`SynthService`](rei_service::SynthService) twice:
//!
//! * a **cold pass** that submits every specification twice from an empty
//!   cache — the duplicates exercise in-flight coalescing (or, when the
//!   original already finished, the result cache), so the pool's worth of
//!   duplicate traffic triggers no duplicate synthesis;
//! * a **warm pass** that resubmits the whole pool against the populated
//!   cache — the replay should be answered (almost) entirely from cache
//!   and therefore run in strictly less wall-clock than the cold pass.
//!
//! The report lands in the `service` section of `BENCH_core.json` next to
//! the kernel and backend baselines (see `reproduce serve`).

use std::time::Instant;

use rei_service::json::Json;
use rei_service::{ServiceConfig, SynthRequest, SynthService};

use crate::costs::REFERENCE;
use crate::harness::figure1::benchmark_pool;
use crate::harness::HarnessConfig;

/// Counters of one pass over the pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServePass {
    /// Requests submitted in this pass.
    pub submitted: u64,
    /// Wall-clock seconds from first submission to last response.
    pub wall_seconds: f64,
    /// Responses carrying an expression.
    pub solved: usize,
    /// Responses carrying an error (timeout, not found, …).
    pub failed: usize,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Requests coalesced onto an identical in-flight job.
    pub coalesced: u64,
}

impl ServePass {
    /// `cache_hits / submitted` — the acceptance gauge of the warm pass.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.submitted as f64
        }
    }

    fn to_json(self) -> Json {
        Json::object([
            ("submitted", Json::uint(self.submitted)),
            ("wall_seconds", Json::fixed(self.wall_seconds, 4)),
            ("solved", Json::uint(self.solved as u64)),
            ("failed", Json::uint(self.failed as u64)),
            ("cache_hits", Json::uint(self.cache_hits)),
            ("coalesced", Json::uint(self.coalesced)),
            ("cache_hit_rate", Json::fixed(self.cache_hit_rate(), 4)),
        ])
    }
}

/// The full serve-throughput report.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Worker threads of the pool.
    pub workers: usize,
    /// Canonical backend name each worker session runs.
    pub backend: String,
    /// Job-queue capacity used.
    pub queue_capacity: usize,
    /// Number of distinct specifications in the pool.
    pub pool_size: usize,
    /// The cold pass (duplicated submissions, empty cache).
    pub cold: ServePass,
    /// The warm replay pass (one submission per spec, populated cache).
    pub warm: ServePass,
}

impl ServeReport {
    /// `cold.wall_seconds / warm.wall_seconds` (∞-safe: 0 when warm is 0).
    pub fn replay_speedup(&self) -> f64 {
        if self.warm.wall_seconds > 0.0 {
            self.cold.wall_seconds / self.warm.wall_seconds
        } else {
            0.0
        }
    }

    /// The `service` section merged into `BENCH_core.json`.
    pub fn to_json_value(&self) -> Json {
        Json::object([
            ("schema", Json::str("rei-bench/service-v1")),
            ("workers", Json::uint(self.workers as u64)),
            ("backend", Json::str(&self.backend)),
            ("queue_capacity", Json::uint(self.queue_capacity as u64)),
            ("pool", Json::uint(self.pool_size as u64)),
            ("cold", self.cold.to_json()),
            ("warm", self.warm.to_json()),
            ("replay_speedup", Json::fixed(self.replay_speedup(), 2)),
        ])
    }
}

fn run_pass(
    service: &SynthService,
    specs: impl Iterator<Item = rei_lang::Spec>,
) -> (f64, usize, usize) {
    let started = Instant::now();
    let handles: Vec<_> = specs
        .map(|spec| {
            service
                .submit(SynthRequest::new(spec))
                .expect("service accepts while open")
        })
        .collect();
    let (mut solved, mut failed) = (0, 0);
    for handle in &handles {
        match handle.wait().outcome {
            Ok(_) => solved += 1,
            Err(_) => failed += 1,
        }
    }
    (started.elapsed().as_secs_f64(), solved, failed)
}

/// Runs the serve experiment: the Table 1 pool through a service with
/// `workers` workers (cold with duplicates, then a cache-warm replay).
pub fn run_serve(config: &HarnessConfig, workers: usize) -> ServeReport {
    let pool = benchmark_pool(config);
    let synth = config.synth_config(REFERENCE.costs);
    let backend = synth.backend().name().to_string();
    // Room for the duplicated cold pass without submit-side blocking.
    let queue_capacity = (2 * pool.len()).max(1);
    let service = SynthService::start(
        ServiceConfig::new(workers)
            .with_queue_capacity(queue_capacity)
            .with_synth(synth),
    )
    .expect("harness service config is valid");

    let cold_specs = pool.iter().flat_map(|b| [b.spec.clone(), b.spec.clone()]);
    let (cold_wall, cold_solved, cold_failed) = run_pass(&service, cold_specs);
    let after_cold = service.metrics();
    let cold = ServePass {
        submitted: after_cold.submitted,
        wall_seconds: cold_wall,
        solved: cold_solved,
        failed: cold_failed,
        cache_hits: after_cold.cache_hits,
        coalesced: after_cold.coalesced,
    };

    let warm_specs = pool.iter().map(|b| b.spec.clone());
    let (warm_wall, warm_solved, warm_failed) = run_pass(&service, warm_specs);
    let after_warm = service.shutdown();
    let warm = ServePass {
        submitted: after_warm.submitted - after_cold.submitted,
        wall_seconds: warm_wall,
        solved: warm_solved,
        failed: warm_failed,
        cache_hits: after_warm.cache_hits - after_cold.cache_hits,
        coalesced: after_warm.coalesced - after_cold.coalesced,
    };

    ServeReport {
        workers,
        backend,
        queue_capacity,
        pool_size: pool.len(),
        cold,
        warm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> HarnessConfig {
        let mut config = HarnessConfig::quick();
        config.time_budget = std::time::Duration::from_millis(500);
        config
    }

    #[test]
    fn warm_replay_is_cache_served_and_faster() {
        let config = tiny_config();
        let report = run_serve(&config, 4);
        assert_eq!(report.workers, 4);
        assert_eq!(report.backend, "cpu-sequential");
        assert_eq!(report.cold.submitted, 2 * report.pool_size as u64);
        // The duplicated cold submissions never trigger a second run.
        assert_eq!(
            report.cold.cache_hits + report.cold.coalesced,
            report.pool_size as u64
        );
        // Every benchmark the cold pass solved is served from cache on
        // replay; the quick pool solves fully, so the rate is 1.0.
        assert_eq!(report.warm.submitted, report.pool_size as u64);
        assert!(
            report.warm.cache_hit_rate() >= 0.9,
            "warm hit rate {:.2}",
            report.warm.cache_hit_rate()
        );
        assert!(
            report.warm.wall_seconds < report.cold.wall_seconds,
            "warm {} vs cold {}",
            report.warm.wall_seconds,
            report.cold.wall_seconds
        );
        assert!(report.replay_speedup() > 1.0);
    }

    #[test]
    fn report_json_has_the_service_shape() {
        let report = ServeReport {
            workers: 4,
            backend: "cpu-sequential".into(),
            queue_capacity: 10,
            pool_size: 5,
            cold: ServePass {
                submitted: 10,
                wall_seconds: 1.5,
                solved: 10,
                failed: 0,
                cache_hits: 2,
                coalesced: 3,
            },
            warm: ServePass {
                submitted: 5,
                wall_seconds: 0.1,
                solved: 5,
                failed: 0,
                cache_hits: 5,
                coalesced: 0,
            },
        };
        let json = report.to_json_value();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("rei-bench/service-v1")
        );
        assert_eq!(
            json.get("warm")
                .and_then(|w| w.get("cache_hit_rate"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            json.get("replay_speedup").and_then(Json::as_f64),
            Some(15.0)
        );
        let parsed = Json::parse(&json.to_pretty()).unwrap();
        assert_eq!(parsed, json);
    }
}
