//! The experiment harness: one function per table/figure of the paper.
//!
//! Every experiment takes a [`HarnessConfig`] and returns plain row
//! structures; the `reproduce` binary and the Criterion benches only format
//! and print them. All randomness is seeded, so runs are reproducible.

mod error_table;
mod figure1;
mod net;
mod outliers;
mod perf;
mod serve;
mod table1;
mod table2;

pub use error_table::{paper_error_spec, run_error_table, ErrorRow};
pub use figure1::{run_figure1, Figure1Row};
pub use net::{run_net, NetConnection, NetPass, NetReport, FLOOD_BURST, NET_CONNECTIONS};
pub use outliers::{outlier_distribution, OutlierRow, PAPER_THRESHOLDS};
pub use perf::{run_perf, BackendPerfRow, KernelPerfRow, PerfReport};
pub use serve::{
    refinement_chain, run_recovery, run_refine_pass, run_serve, ChainStat, LatencySummary,
    PoolBreakdown, RecoveryBench, RefinePass, ServePass, ServeReport,
};
pub use table1::{run_table1, Table1Row};
pub use table2::{run_table2, Table2Row};

use std::time::Duration;

use gpu_sim::Device;
use rei_core::{
    BackendChoice, DeviceParallel, Sequential, SynthConfig, SynthSession, SynthesisError,
    SynthesisResult,
};
use rei_lang::Spec;
use rei_syntax::CostFn;
use serde::{Deserialize, Serialize};

/// How much work an experiment should do.
///
/// `Quick` keeps every experiment in the range of seconds so that it can
/// run inside the test suite and Criterion; `Full` approaches the paper's
/// parameters and can take considerably longer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds-scale experiments (default for tests and benches).
    Quick,
    /// Paper-scale experiments (use from the `reproduce` binary).
    Full,
}

/// Configuration shared by all experiments.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// How much work to do.
    pub scale: Scale,
    /// Seed for all random benchmark generation.
    pub seed: u64,
    /// Per-run wall-clock budget (the paper uses 5 seconds for Figure 1).
    pub time_budget: Duration,
    /// Memory budget of the language cache per run, in bytes.
    pub memory_budget: usize,
    /// Number of worker threads of the simulated GPU device.
    pub device_threads: usize,
}

impl HarnessConfig {
    /// A quick configuration suitable for tests and Criterion benches.
    pub fn quick() -> Self {
        HarnessConfig {
            scale: Scale::Quick,
            seed: 0xC0FFEE,
            time_budget: Duration::from_millis(1500),
            memory_budget: 64 * 1024 * 1024,
            device_threads: available_threads(),
        }
    }

    /// A paper-scale configuration (5-second timeout per run).
    pub fn full() -> Self {
        HarnessConfig {
            scale: Scale::Full,
            seed: 0xC0FFEE,
            time_budget: Duration::from_secs(5),
            memory_budget: 512 * 1024 * 1024,
            device_threads: available_threads(),
        }
    }

    /// A session configuration for this harness with the given cost
    /// function: harness memory and time budgets, sequential backend.
    pub fn synth_config(&self, costs: CostFn) -> SynthConfig {
        SynthConfig::new(costs)
            .with_memory_budget(self.memory_budget)
            .with_time_budget(self.time_budget)
    }

    /// The simulated device an experiment shares across all of its
    /// data-parallel sessions. Creating it once per suite — rather than
    /// once per run, as the old `Synthesizer`-based harness did — is the
    /// batching win of the session API: thread-pool setup and device
    /// statistics are paid and accumulated per experiment.
    pub fn device(&self) -> Device {
        Device::with_threads(self.device_threads)
    }

    /// A reusable sequential session for this configuration.
    pub fn sequential_session(&self, costs: CostFn) -> SynthSession {
        let config = self.synth_config(costs);
        SynthSession::with_backend(config, Box::new(Sequential)).expect("harness config is valid")
    }

    /// A reusable data-parallel session sharing `device` with the rest of
    /// the experiment.
    pub fn parallel_session(&self, costs: CostFn, device: &Device) -> SynthSession {
        self.parallel_session_with(self.synth_config(costs), device)
    }

    /// Like [`parallel_session`](HarnessConfig::parallel_session) but for
    /// an experiment-specific config (different allowed error, budget, …);
    /// the config's own backend choice is overridden by the shared device.
    pub fn parallel_session_with(&self, config: SynthConfig, device: &Device) -> SynthSession {
        let config = config.with_backend(BackendChoice::DeviceParallel {
            threads: Some(self.device_threads),
        });
        SynthSession::with_backend(
            config,
            Box::new(DeviceParallel::with_device(device.clone())),
        )
        .expect("harness config is valid")
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The outcome of running one synthesis task inside the harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The run produced an expression.
    Solved {
        /// Wall-clock seconds.
        seconds: f64,
        /// Cost of the result under the run's cost function.
        cost: u64,
        /// Number of candidate expressions generated/checked.
        candidates: u64,
        /// The result, pretty printed.
        regex: String,
    },
    /// The run exceeded its wall-clock budget.
    Timeout,
    /// The run exceeded its memory budget.
    OutOfMemory,
    /// The search space was exhausted without a solution.
    NotFound,
    /// The run was cancelled through its session's cancel token.
    Cancelled,
}

impl RunOutcome {
    /// The wall-clock seconds of a solved run.
    pub fn seconds(&self) -> Option<f64> {
        match self {
            RunOutcome::Solved { seconds, .. } => Some(*seconds),
            _ => None,
        }
    }

    /// The number of candidates of a solved run.
    pub fn candidates(&self) -> Option<u64> {
        match self {
            RunOutcome::Solved { candidates, .. } => Some(*candidates),
            _ => None,
        }
    }

    /// The result cost of a solved run.
    pub fn cost(&self) -> Option<u64> {
        match self {
            RunOutcome::Solved { cost, .. } => Some(*cost),
            _ => None,
        }
    }

    /// Returns `true` if the run produced an expression.
    pub fn is_solved(&self) -> bool {
        matches!(self, RunOutcome::Solved { .. })
    }

    /// A short status label for reports.
    pub fn label(&self) -> String {
        match self {
            RunOutcome::Solved { seconds, .. } => format!("{seconds:.4}s"),
            RunOutcome::Timeout => "timeout".to_string(),
            RunOutcome::OutOfMemory => "oom".to_string(),
            RunOutcome::NotFound => "not-found".to_string(),
            RunOutcome::Cancelled => "cancelled".to_string(),
        }
    }
}

/// Runs one Paresy synthesis through a session and converts the result
/// into a [`RunOutcome`].
///
/// # Panics
///
/// Panics on [`SynthesisError::InvalidConfig`]: the harness builds its own
/// configurations, so an invalid one is a bug, not a benchmark outcome.
pub fn run_paresy(session: &mut SynthSession, spec: &Spec) -> RunOutcome {
    match session.run(spec) {
        Ok(SynthesisResult { regex, cost, stats }) => RunOutcome::Solved {
            seconds: stats.elapsed.as_secs_f64(),
            cost,
            candidates: stats.candidates_generated,
            regex: regex.to_string(),
        },
        Err(SynthesisError::Timeout { .. }) => RunOutcome::Timeout,
        Err(SynthesisError::OutOfMemory { .. }) => RunOutcome::OutOfMemory,
        Err(SynthesisError::NotFound { .. }) => RunOutcome::NotFound,
        Err(SynthesisError::Cancelled { .. }) => RunOutcome::Cancelled,
        Err(err @ SynthesisError::InvalidConfig { .. }) => {
            panic!("harness produced an invalid configuration: {err}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_bounded() {
        let config = HarnessConfig::quick();
        assert_eq!(config.scale, Scale::Quick);
        assert!(config.time_budget <= Duration::from_secs(2));
        assert!(config.device_threads >= 1);
    }

    #[test]
    fn outcome_accessors() {
        let solved = RunOutcome::Solved {
            seconds: 0.25,
            cost: 8,
            candidates: 100,
            regex: "10(0+1)*".into(),
        };
        assert!(solved.is_solved());
        assert_eq!(solved.seconds(), Some(0.25));
        assert_eq!(solved.cost(), Some(8));
        assert_eq!(solved.candidates(), Some(100));
        assert_eq!(solved.label(), "0.2500s");
        assert_eq!(RunOutcome::Timeout.seconds(), None);
        assert_eq!(RunOutcome::OutOfMemory.label(), "oom");
        assert!(!RunOutcome::NotFound.is_solved());
    }

    #[test]
    fn run_paresy_reports_solved_and_timeout() {
        let config = HarnessConfig::quick();
        let spec = Spec::from_strs(["0", "00"], ["1", "10"]).unwrap();
        let mut session = config.sequential_session(CostFn::UNIFORM);
        assert!(run_paresy(&mut session, &spec).is_solved());

        let spec = Spec::from_strs(
            ["10", "101", "100", "1010", "1011", "1000", "1001"],
            ["", "0", "1", "00", "11", "010"],
        )
        .unwrap();
        let strict = SynthConfig::new(CostFn::UNIFORM).with_time_budget(Duration::ZERO);
        let mut strict = SynthSession::new(strict).unwrap();
        assert_eq!(run_paresy(&mut strict, &spec), RunOutcome::Timeout);
        assert_eq!(session.stats().runs, 1);
        assert_eq!(strict.stats().failed, 1);
    }

    #[test]
    fn cancelled_runs_have_their_own_outcome() {
        let config = HarnessConfig::quick();
        let spec = Spec::from_strs(["0", "00"], ["1", "10"]).unwrap();
        let mut session = config.sequential_session(CostFn::UNIFORM);
        session.cancel_token().cancel();
        assert_eq!(run_paresy(&mut session, &spec), RunOutcome::Cancelled);
        assert_eq!(RunOutcome::Cancelled.label(), "cancelled");
    }
}
