//! The `net` experiment: serve throughput over real TCP sockets.
//!
//! Where the `serve` experiment measures the in-process router, this one
//! drives the full network stack of `rei-net` — a bound listener, the
//! handler pool, the JSONL wire format and the fair-share admission
//! stage — with several concurrent client threads on real sockets:
//!
//! * a **cold pass** splits the benchmark pool across concurrent
//!   streaming connections (one tenant per connection) against empty
//!   caches and measures the wall clock plus each connection's own
//!   throughput;
//! * a **warm pass** replays the same split against the populated
//!   caches — the replay must be answered (almost) entirely from cache,
//!   proving the cache pipeline works end-to-end through TCP;
//! * a **flood pass** hammers the server from one deliberately
//!   over-limit tenant whose token bucket allows a small burst — every
//!   request beyond it must come back as an explicit `rate_limited`
//!   rejection, never hang.
//!
//! The report lands in the `service.net` section of `BENCH_core.json`
//! (see `reproduce serve --listen`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use rei_net::{NetConfig, NetServer};
use rei_service::json::Json;
use rei_service::{AdmissionConfig, RouterConfig, ServiceConfig, ShardRouter, TenantPolicy};

use crate::costs::REFERENCE;
use crate::harness::figure1::benchmark_pool;
use crate::harness::HarnessConfig;

/// Concurrent client connections of the cold and warm passes.
pub const NET_CONNECTIONS: usize = 3;

/// Requests the flood tenant's token bucket admits before rejecting.
pub const FLOOD_BURST: u64 = 2;

/// What one client connection saw during one pass.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConnection {
    /// The tenant the connection submitted as (also its shard key).
    pub tenant: String,
    /// Requests written to the socket.
    pub submitted: u64,
    /// Answers carrying a synthesis result (any status but `rejected`).
    pub answered: u64,
    /// Explicit `rate_limited` rejections received.
    pub rejected_rate_limited: u64,
    /// Wall-clock seconds from first write to last answer.
    pub wall_seconds: f64,
}

impl NetConnection {
    /// Answered requests per second of this connection (0 when instant).
    pub fn throughput(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            (self.answered + self.rejected_rate_limited) as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("tenant", Json::str(&self.tenant)),
            ("submitted", Json::uint(self.submitted)),
            ("answered", Json::uint(self.answered)),
            (
                "rejected_rate_limited",
                Json::uint(self.rejected_rate_limited),
            ),
            ("wall_seconds", Json::fixed(self.wall_seconds, 4)),
            ("throughput_rps", Json::fixed(self.throughput(), 2)),
        ])
    }
}

/// One multi-connection pass over the pool.
#[derive(Debug, Clone, PartialEq)]
pub struct NetPass {
    /// Wall-clock seconds across all connections of the pass.
    pub wall_seconds: f64,
    /// Requests this pass answered from the result cache (measured
    /// through the `metrics` control verb before and after).
    pub cache_hits: u64,
    /// The per-connection breakdown.
    pub connections: Vec<NetConnection>,
}

impl NetPass {
    /// Requests submitted across all connections.
    pub fn submitted(&self) -> u64 {
        self.connections.iter().map(|c| c.submitted).sum()
    }

    /// `cache_hits / submitted` — the warm pass's acceptance gauge.
    pub fn cache_hit_rate(&self) -> f64 {
        let submitted = self.submitted();
        if submitted == 0 {
            0.0
        } else {
            self.cache_hits as f64 / submitted as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("wall_seconds", Json::fixed(self.wall_seconds, 4)),
            ("submitted", Json::uint(self.submitted())),
            ("cache_hits", Json::uint(self.cache_hits)),
            ("cache_hit_rate", Json::fixed(self.cache_hit_rate(), 4)),
            (
                "connections",
                Json::array(self.connections.iter().map(NetConnection::to_json)),
            ),
        ])
    }
}

/// The full TCP-serving report.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Size of the server's connection-handler pool.
    pub net_threads: usize,
    /// Concurrent client connections of the cold and warm passes.
    pub connections: usize,
    /// Number of distinct specifications in the pool.
    pub pool_size: usize,
    /// The cold pass against empty caches.
    pub cold: NetPass,
    /// The warm replay of the same split.
    pub warm: NetPass,
    /// The over-limit tenant's flood (single connection).
    pub flood: NetConnection,
    /// Requests the admission stage admitted, over the server's life.
    pub admitted: u64,
    /// Requests the admission stage rejected as over-limit.
    pub rate_limited: u64,
}

impl NetReport {
    /// The `service.net` section merged into `BENCH_core.json`.
    pub fn to_json_value(&self) -> Json {
        Json::object([
            ("schema", Json::str("rei-bench/service-net-v1")),
            ("net_threads", Json::uint(self.net_threads as u64)),
            ("connections", Json::uint(self.connections as u64)),
            ("pool", Json::uint(self.pool_size as u64)),
            ("cold", self.cold.to_json()),
            ("warm", self.warm.to_json()),
            ("flood", self.flood.to_json()),
            ("admitted", Json::uint(self.admitted)),
            ("rate_limited", Json::uint(self.rate_limited)),
        ])
    }
}

/// Renders one request line; examples use the protocol's `ε` spelling
/// for the empty word (the `Word` display form already does).
fn request_line(id: usize, spec: &rei_lang::Spec, tenant: &str) -> String {
    let words = |set: &std::collections::BTreeSet<rei_lang::Word>| {
        Json::array(set.iter().map(|w| Json::str(w.to_string())))
    };
    let line = Json::object([
        ("id", Json::uint(id as u64)),
        ("pos", words(spec.positive())),
        ("neg", words(spec.negative())),
        ("tenant", Json::str(tenant)),
    ]);
    let mut line = line.to_compact();
    line.push('\n');
    line
}

/// One streaming client connection: switches to stream mode, writes all
/// its requests, then reads until every one is answered.
fn drive_connection(
    addr: std::net::SocketAddr,
    tenant: &str,
    requests: &[String],
) -> NetConnection {
    let mut stream = TcpStream::connect(addr).expect("connect to the bench server");
    let mut reader = BufReader::new(stream.try_clone().expect("clone the socket"));
    let mut line = String::new();
    stream
        .write_all(b"{\"op\": \"mode\", \"value\": \"stream\"}\n")
        .expect("write the mode verb");
    reader.read_line(&mut line).expect("mode ack");

    let started = Instant::now();
    for request in requests {
        stream
            .write_all(request.as_bytes())
            .expect("write a request");
    }
    let (mut answered, mut rejected) = (0u64, 0u64);
    for _ in 0..requests.len() {
        line.clear();
        reader.read_line(&mut line).expect("read an answer");
        let answer = Json::parse(line.trim()).expect("answer is JSON");
        match answer.get("status").and_then(Json::as_str) {
            Some("rejected") => rejected += 1,
            _ => answered += 1,
        }
    }
    NetConnection {
        tenant: tenant.to_string(),
        submitted: requests.len() as u64,
        answered,
        rejected_rate_limited: rejected,
        wall_seconds: started.elapsed().as_secs_f64(),
    }
}

/// Reads the router's current rollup cache hits through the `metrics`
/// control verb — the same path a monitoring client would use.
fn cache_hits_now(addr: std::net::SocketAddr) -> u64 {
    let mut stream = TcpStream::connect(addr).expect("connect for metrics");
    stream
        .write_all(b"{\"op\": \"metrics\"}\n")
        .expect("write the metrics verb");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("metrics line");
    Json::parse(line.trim())
        .expect("metrics is JSON")
        .get("rollup")
        .and_then(|r| r.get("requests"))
        .and_then(|r| r.get("cache_hits"))
        .and_then(Json::as_u64)
        .expect("rollup carries cache_hits")
}

/// Runs one multi-connection pass: the pool's request lines split
/// round-robin across [`NET_CONNECTIONS`] concurrent client threads.
fn run_net_pass(addr: std::net::SocketAddr, requests: &[Vec<String>]) -> NetPass {
    let before = cache_hits_now(addr);
    let started = Instant::now();
    let clients: Vec<_> = requests
        .iter()
        .enumerate()
        .map(|(index, slice)| {
            let slice = slice.clone();
            std::thread::spawn(move || drive_connection(addr, &format!("bench-{index}"), &slice))
        })
        .collect();
    let connections: Vec<NetConnection> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    NetPass {
        wall_seconds: started.elapsed().as_secs_f64(),
        cache_hits: cache_hits_now(addr) - before,
        connections,
    }
}

/// Runs the net experiment: the Table 1 pool through a real TCP server
/// of `pools` pools with `workers` workers each, served by `net_threads`
/// handler threads, then a rate-limited flood.
pub fn run_net(
    config: &HarnessConfig,
    workers: usize,
    pools: usize,
    net_threads: usize,
) -> NetReport {
    let pool = benchmark_pool(config);
    let synth = config.synth_config(REFERENCE.costs);
    let queue_capacity = (2 * pool.len()).max(1);
    let service = ServiceConfig::new(workers)
        .with_queue_capacity(queue_capacity)
        .with_synth(synth);
    let router = ShardRouter::start(RouterConfig::identical(pools, service))
        .expect("harness router config is valid");

    // The flood tenant's bucket admits FLOOD_BURST requests and then
    // refills so slowly that everything else must be rejected.
    let admission = AdmissionConfig::new()
        .with_tenant("flooder", TenantPolicy::limited(1e-9, FLOOD_BURST as f64));
    let net_config = NetConfig::new("127.0.0.1:0")
        .with_handler_threads(net_threads)
        .with_admission(admission);
    let server = NetServer::bind(net_config, router).expect("bind the bench server");
    let addr = server.local_addr();
    let serving = std::thread::spawn(move || server.run().expect("bench server runs"));

    // Round-robin split of the pool across the concurrent connections.
    let mut split: Vec<Vec<String>> = vec![Vec::new(); NET_CONNECTIONS];
    for (index, benchmark) in pool.iter().enumerate() {
        let tenant = format!("bench-{}", index % NET_CONNECTIONS);
        split[index % NET_CONNECTIONS].push(request_line(index, &benchmark.spec, &tenant));
    }

    let cold = run_net_pass(addr, &split);
    let warm = run_net_pass(addr, &split);

    // The flood replays the whole pool as one over-limit tenant.
    let flood_requests: Vec<String> = pool
        .iter()
        .enumerate()
        .map(|(index, benchmark)| request_line(index, &benchmark.spec, "flooder"))
        .collect();
    let flood = drive_connection(addr, "flooder", &flood_requests);

    // A clean shutdown through the wire, like any client would do it.
    let mut closer = TcpStream::connect(addr).expect("connect for shutdown");
    closer
        .write_all(b"{\"op\": \"shutdown\"}\n")
        .expect("write the shutdown verb");
    let snapshot = serving.join().expect("bench server thread");

    NetReport {
        net_threads,
        connections: NET_CONNECTIONS,
        pool_size: pool.len(),
        cold,
        warm,
        flood,
        admitted: snapshot.admission.admitted,
        rate_limited: snapshot.admission.rate_limited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> HarnessConfig {
        let mut config = HarnessConfig::quick();
        config.time_budget = std::time::Duration::from_millis(500);
        config
    }

    #[test]
    fn tcp_passes_cover_cache_reuse_and_rate_limiting() {
        let config = tiny_config();
        let report = run_net(&config, 2, 2, 4);
        assert_eq!(report.connections, NET_CONNECTIONS);
        assert_eq!(report.cold.connections.len(), NET_CONNECTIONS);
        assert_eq!(report.cold.submitted(), report.pool_size as u64);
        // Nothing in the cold or warm passes is rejected.
        for pass in [&report.cold, &report.warm] {
            for connection in &pass.connections {
                assert_eq!(connection.rejected_rate_limited, 0, "{connection:?}");
                assert_eq!(connection.answered, connection.submitted);
            }
        }
        // The warm replay is served from cache through the wire.
        assert!(
            report.warm.cache_hit_rate() >= 0.9,
            "warm hit rate {:.2}",
            report.warm.cache_hit_rate()
        );
        // The flood tenant gets its burst and explicit rejections for
        // the rest — nothing hangs, everything is answered.
        assert_eq!(report.flood.submitted, report.pool_size as u64);
        assert_eq!(report.flood.answered, FLOOD_BURST);
        assert_eq!(
            report.flood.rejected_rate_limited,
            report.flood.submitted - FLOOD_BURST
        );
        assert_eq!(report.rate_limited, report.flood.rejected_rate_limited);
        assert!(report.admitted >= report.cold.submitted() + report.warm.submitted());
    }

    #[test]
    fn report_json_has_the_net_shape() {
        let connection = |tenant: &str, submitted, answered, rejected| NetConnection {
            tenant: tenant.into(),
            submitted,
            answered,
            rejected_rate_limited: rejected,
            wall_seconds: 0.5,
        };
        let report = NetReport {
            net_threads: 4,
            connections: 2,
            pool_size: 10,
            cold: NetPass {
                wall_seconds: 1.0,
                cache_hits: 0,
                connections: vec![
                    connection("bench-0", 5, 5, 0),
                    connection("bench-1", 5, 5, 0),
                ],
            },
            warm: NetPass {
                wall_seconds: 0.2,
                cache_hits: 10,
                connections: vec![
                    connection("bench-0", 5, 5, 0),
                    connection("bench-1", 5, 5, 0),
                ],
            },
            flood: connection("flooder", 10, 2, 8),
            admitted: 22,
            rate_limited: 8,
        };
        let json = report.to_json_value();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("rei-bench/service-net-v1")
        );
        assert_eq!(
            json.get("warm")
                .and_then(|w| w.get("cache_hit_rate"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            json.get("flood")
                .and_then(|f| f.get("rejected_rate_limited"))
                .and_then(Json::as_u64),
            Some(8)
        );
        let throughput = json
            .get("flood")
            .and_then(|f| f.get("throughput_rps"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((throughput - 20.0).abs() < 1e-9, "{throughput}");
        assert_eq!(json.get("rate_limited").and_then(Json::as_u64), Some(8));
        let parsed = Json::parse(&json.to_pretty()).unwrap();
        assert_eq!(parsed, json);
    }
}
