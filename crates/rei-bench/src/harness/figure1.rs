//! Figure 1: synthesis time of random benchmarks across 12 cost functions.

use rei_lang::Alphabet;
use serde::{Deserialize, Serialize};

use crate::costs::PAPER_COST_FUNCTIONS;
use crate::generator::{generate_pool, Benchmark};
use crate::harness::{run_paresy, HarnessConfig, RunOutcome, Scale};

/// One measurement of Figure 1: a benchmark run under one cost function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure1Row {
    /// Benchmark name (`T1-…` / `T2-…`).
    pub benchmark: String,
    /// Which generation scheme produced the benchmark (1 or 2).
    pub scheme: u8,
    /// Number of positive examples.
    pub num_positive: usize,
    /// Number of negative examples.
    pub num_negative: usize,
    /// Maximal example length.
    pub max_len: usize,
    /// Label of the cost function.
    pub cost_label: String,
    /// The measured outcome.
    pub outcome: RunOutcome,
}

/// The benchmark pool used by Figure 1 and Table 1 for a configuration.
pub(crate) fn benchmark_pool(config: &HarnessConfig) -> Vec<Benchmark> {
    let alphabet = Alphabet::binary();
    match config.scale {
        // Paper parameters: Type 1 with p, n ∈ 8..12 and le ≤ 7; Type 2
        // with p, n ∈ 7..14 and le ≤ 10.
        Scale::Full => generate_pool(
            &alphabet,
            25,
            (4, 7),
            (8, 12),
            (4, 10),
            (7, 14),
            config.seed,
        ),
        // Quick: smaller example counts and lengths so a full sweep stays
        // in the seconds range.
        Scale::Quick => generate_pool(&alphabet, 5, (2, 4), (3, 5), (2, 5), (3, 5), config.seed),
    }
}

/// Runs the Figure 1 sweep: every benchmark of the pool under every cost
/// function, on the data-parallel backend, with the configured per-run
/// timeout.
///
/// One device and one session per cost function serve the whole pool, so
/// device setup is amortised across the sweep.
pub fn run_figure1(config: &HarnessConfig) -> Vec<Figure1Row> {
    let pool = benchmark_pool(config);
    let device = config.device();
    let mut rows = Vec::with_capacity(pool.len() * PAPER_COST_FUNCTIONS.len());
    let mut sessions: Vec<_> = PAPER_COST_FUNCTIONS
        .iter()
        .map(|named| config.parallel_session(named.costs, &device))
        .collect();
    for benchmark in &pool {
        for (named, session) in PAPER_COST_FUNCTIONS.iter().zip(&mut sessions) {
            let outcome = run_paresy(session, &benchmark.spec);
            rows.push(Figure1Row {
                benchmark: benchmark.name.clone(),
                scheme: benchmark.scheme,
                num_positive: benchmark.spec.num_positive(),
                num_negative: benchmark.spec.num_negative(),
                max_len: benchmark.spec.max_example_len(),
                cost_label: named.label.to_string(),
                outcome,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_pool_is_small_and_named() {
        let pool = benchmark_pool(&HarnessConfig::quick());
        assert!(!pool.is_empty());
        assert!(pool.len() <= 10);
        assert!(pool
            .iter()
            .all(|b| b.name.starts_with("T1-") || b.name.starts_with("T2-")));
    }

    #[test]
    fn quick_sweep_produces_a_row_per_cost_function() {
        let mut config = HarnessConfig::quick();
        // Keep this unit test fast: tiny pool via a different seed range is
        // not possible, so shrink the timeout instead.
        config.time_budget = std::time::Duration::from_millis(250);
        let rows = run_figure1(&config);
        let pool = benchmark_pool(&config);
        assert_eq!(rows.len(), pool.len() * 12);
        assert!(rows.iter().any(|r| r.outcome.is_solved()));
        // Every benchmark appears with all 12 cost functions.
        let per_bench = rows
            .iter()
            .filter(|r| r.benchmark == rows[0].benchmark)
            .count();
        assert_eq!(per_bench, 12);
    }
}
