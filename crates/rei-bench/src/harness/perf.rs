//! The `perf` experiment: a machine-readable performance baseline.
//!
//! Unlike the paper-reproduction experiments, this one tracks the
//! repository's *own* performance trajectory: per-benchmark kernel
//! micro-timings (the mask-based concatenation and squared star against
//! the split-gather and linear-iteration kernels they replaced) and a
//! per-backend wall-clock comparison over the Table 1 benchmark pool.
//! The `reproduce perf` command serialises the report to
//! `BENCH_core.json` (see [`PerfReport::to_json`]); a copy of the file is
//! committed at the repository root so every PR has a baseline to beat,
//! and CI regenerates it as an artifact on every push.

use std::time::Instant;

use rei_core::{BackendChoice, SynthSession, SynthesisStats};
use rei_lang::{csops, Cs, GuideMasks, GuideTable, InfixClosure};
use rei_service::json::Json;
use rei_syntax::parse;

use crate::costs::REFERENCE;
use crate::harness::figure1::benchmark_pool;
use crate::harness::{HarnessConfig, Scale};

/// Kernel micro-timings on one benchmark's infix closure.
#[derive(Debug, Clone)]
pub struct KernelPerfRow {
    /// Benchmark name (`T1-…` / `T2-…`).
    pub benchmark: String,
    /// Size of the infix closure the kernels operate over.
    pub closure_size: usize,
    /// Mean nanoseconds per split-gather concatenation (the seed kernel).
    pub concat_gather_ns: f64,
    /// Mean nanoseconds per mask-based concatenation.
    pub concat_masked_ns: f64,
    /// `concat_gather_ns / concat_masked_ns`.
    pub concat_speedup: f64,
    /// Mean nanoseconds per linear-iteration star (the seed kernel).
    pub star_linear_ns: f64,
    /// Mean nanoseconds per squared star.
    pub star_squared_ns: f64,
    /// `star_linear_ns / star_squared_ns`.
    pub star_speedup: f64,
}

/// Wall-clock and search statistics of one backend over the whole pool.
#[derive(Debug, Clone)]
pub struct BackendPerfRow {
    /// Canonical backend name (`Backend::name()`).
    pub backend: String,
    /// Wall-clock seconds across every run of the pool.
    pub wall_seconds: f64,
    /// Runs that produced an expression.
    pub solved: usize,
    /// Total runs.
    pub total: usize,
    /// Candidate languages constructed across all runs.
    pub candidates: u64,
    /// Unique languages (rows built) across all runs.
    pub rows_built: u64,
    /// Fraction of candidates rejected as duplicates:
    /// `1 − rows_built / candidates`.
    pub dedup_hit_rate: f64,
    /// Work chunks claimed by the level execution engine (streamed level
    /// chunks, or work-stealing claims on the thread-parallel backend).
    pub chunks_claimed: u64,
    /// Chunks a thread-parallel worker stole from a peer's range.
    pub chunks_stolen: u64,
    /// Rows whose full satisfaction check the admission prefilter
    /// skipped.
    pub prefilter_rejects: u64,
    /// `prefilter_rejects / candidates` (0 when no candidates ran).
    pub prefilter_reject_rate: f64,
    /// Uniqueness-filter insertions that overflowed its table.
    pub dedup_overflowed: u64,
}

/// The full perf baseline: kernel micro-timings plus the per-backend
/// comparison, with geometric-mean summaries.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// Seed the benchmark pool was generated from.
    pub seed: u64,
    /// Worker threads used by the parallel backends.
    pub threads: usize,
    /// Cores the host reported; the thread-parallel vs sequential
    /// wall-clock comparison is only meaningful when this is ≥ 2.
    pub available_cores: usize,
    /// Per-benchmark kernel rows.
    pub kernels: Vec<KernelPerfRow>,
    /// Geometric mean of the per-benchmark concat speedups.
    pub geomean_concat_speedup: f64,
    /// Geometric mean of the per-benchmark star speedups.
    pub geomean_star_speedup: f64,
    /// One row per backend over the shared pool.
    pub backends: Vec<BackendPerfRow>,
}

/// Times `f` and returns the nanoseconds per operation of the *fastest*
/// of several measurement rounds (the minimum is the standard scheduler-
/// noise-resistant estimator for micro-benchmarks), where each call of
/// `f` performs `ops_per_call` operations. One warm-up call precedes the
/// measurements.
fn time_per_op<F: FnMut()>(calls: usize, ops_per_call: usize, mut f: F) -> f64 {
    const ROUNDS: usize = 5;
    f();
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        for _ in 0..calls {
            f();
        }
        let per_op = start.elapsed().as_nanos() as f64 / (calls * ops_per_call) as f64;
        best = best.min(per_op);
    }
    best
}

/// A mixed bag of operand rows over `ic`: sparse literals, mid-density
/// concatenations and dense starred languages, mirroring what a real
/// cost level combines.
fn operand_rows(ic: &InfixClosure) -> Vec<Cs> {
    [
        "0",
        "1",
        "01",
        "0?1",
        "(0+1)(0+1)",
        "1(0+1)*",
        "(0?1)*",
        "(0+11)*1",
        "(10)*",
    ]
    .iter()
    .map(|e| ic.cs_of_regex(&parse(e).expect("operand regex parses")))
    .collect()
}

fn kernel_row(name: &str, spec: &rei_lang::Spec, calls: usize) -> KernelPerfRow {
    let ic = InfixClosure::of_spec(spec);
    let gt = GuideTable::build(&ic);
    let gm = GuideMasks::build(&ic);
    let eps = ic.eps_index().expect("non-empty spec closure");
    let rows = operand_rows(&ic);
    let width = ic.width();
    let pairs = rows.len() * rows.len();

    let mut dst = Cs::zero(width);
    let concat_gather_ns = time_per_op(calls, pairs, || {
        for a in &rows {
            for b in &rows {
                csops::concat_into_gather(dst.blocks_mut(), a.blocks(), b.blocks(), &gt);
            }
        }
    });
    let concat_masked_ns = time_per_op(calls, pairs, || {
        for a in &rows {
            for b in &rows {
                csops::concat_into(dst.blocks_mut(), a.blocks(), b.blocks(), &gm);
            }
        }
    });

    let mut scratch = vec![0u64; width.blocks()];
    let star_linear_ns = time_per_op(calls, rows.len(), || {
        for a in &rows {
            csops::star_into_linear(dst.blocks_mut(), a.blocks(), &gt, eps, &mut scratch);
        }
    });
    let star_squared_ns = time_per_op(calls, rows.len(), || {
        for a in &rows {
            csops::star_into(dst.blocks_mut(), a.blocks(), &gm, eps, &mut scratch);
        }
    });

    KernelPerfRow {
        benchmark: name.to_string(),
        closure_size: ic.len(),
        concat_gather_ns,
        concat_masked_ns,
        concat_speedup: concat_gather_ns / concat_masked_ns,
        star_linear_ns,
        star_squared_ns,
        star_speedup: star_linear_ns / star_squared_ns,
    }
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, count) = values.fold((0.0f64, 0usize), |(s, c), v| (s + v.ln(), c + 1));
    if count == 0 {
        1.0
    } else {
        (sum / count as f64).exp()
    }
}

fn backend_row(
    config: &HarnessConfig,
    choice: BackendChoice,
    specs: &[rei_lang::Spec],
) -> BackendPerfRow {
    let synth_config = config.synth_config(REFERENCE.costs).with_backend(choice);
    let mut session = SynthSession::new(synth_config).expect("perf config is valid");
    let started = Instant::now();
    let mut solved = 0usize;
    let mut candidates = 0u64;
    let mut rows_built = 0u64;
    for spec in specs {
        let stats: Option<SynthesisStats> = match session.run(spec) {
            Ok(result) => {
                solved += 1;
                Some(result.stats)
            }
            Err(err) => err.stats().cloned(),
        };
        if let Some(stats) = stats {
            candidates += stats.candidates_generated;
            rows_built += stats.unique_languages;
        }
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    // The scheduler and prefilter counters accumulate on the session
    // across the whole pool — exactly the per-backend totals the report
    // wants.
    let totals = *session.stats();
    BackendPerfRow {
        backend: session.backend_name().to_string(),
        wall_seconds,
        solved,
        total: specs.len(),
        candidates,
        rows_built,
        dedup_hit_rate: if candidates == 0 {
            0.0
        } else {
            1.0 - rows_built as f64 / candidates as f64
        },
        chunks_claimed: totals.chunks_claimed,
        chunks_stolen: totals.chunks_stolen,
        prefilter_rejects: totals.prefilter_rejects,
        prefilter_reject_rate: if candidates == 0 {
            0.0
        } else {
            totals.prefilter_rejects as f64 / candidates as f64
        },
        dedup_overflowed: totals.dedup_overflowed,
    }
}

/// Runs the perf baseline: kernel micro-timings on every benchmark of the
/// Table 1 pool, then the pool end-to-end on each backend.
pub fn run_perf(config: &HarnessConfig) -> PerfReport {
    let pool = benchmark_pool(config);
    let calls = match config.scale {
        Scale::Quick => 200,
        Scale::Full => 1000,
    };
    let kernels: Vec<KernelPerfRow> = pool
        .iter()
        .map(|b| kernel_row(&b.name, &b.spec, calls))
        .collect();

    let specs: Vec<rei_lang::Spec> = pool.iter().map(|b| b.spec.clone()).collect();
    let threads = config.device_threads;
    let backends = vec![
        backend_row(config, BackendChoice::Sequential, &specs),
        backend_row(
            config,
            BackendChoice::ThreadParallel {
                threads: Some(threads),
            },
            &specs,
        ),
        backend_row(
            config,
            BackendChoice::DeviceParallel {
                threads: Some(threads),
            },
            &specs,
        ),
    ];

    PerfReport {
        scale: match config.scale {
            Scale::Quick => "quick".to_string(),
            Scale::Full => "full".to_string(),
        },
        seed: config.seed,
        threads,
        available_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        geomean_concat_speedup: geomean(kernels.iter().map(|k| k.concat_speedup)),
        geomean_star_speedup: geomean(kernels.iter().map(|k| k.star_speedup)),
        kernels,
        backends,
    }
}

impl PerfReport {
    /// The report as a JSON document (schema `rei-bench/perf-v4`), built
    /// with the shared writer in [`rei_service::json`] — the workspace's
    /// serde shim provides no serializer. The `reproduce` binary merges
    /// this object into `BENCH_core.json`, preserving sections other
    /// experiments own (such as `service`). v3 added the level-execution
    /// counters per backend: chunks claimed, chunks stolen, prefilter
    /// rejects (plus rate) and dedup overflow. v4 marks the document
    /// whose `service` section (owned by `reproduce serve`) carries the
    /// sharded-pool breakdown and the disk-warm restart pass.
    pub fn to_json_value(&self) -> Json {
        Json::object([
            ("schema", Json::str("rei-bench/perf-v4")),
            ("scale", Json::str(&self.scale)),
            ("seed", Json::uint(self.seed)),
            ("threads", Json::uint(self.threads as u64)),
            ("available_cores", Json::uint(self.available_cores as u64)),
            (
                "kernels",
                Json::object([
                    (
                        "geomean_concat_speedup",
                        Json::fixed(self.geomean_concat_speedup, 2),
                    ),
                    (
                        "geomean_star_speedup",
                        Json::fixed(self.geomean_star_speedup, 2),
                    ),
                    (
                        "per_benchmark",
                        Json::array(self.kernels.iter().map(|k| {
                            Json::object([
                                ("benchmark", Json::str(&k.benchmark)),
                                ("closure_size", Json::uint(k.closure_size as u64)),
                                ("concat_gather_ns", Json::fixed(k.concat_gather_ns, 1)),
                                ("concat_masked_ns", Json::fixed(k.concat_masked_ns, 1)),
                                ("concat_speedup", Json::fixed(k.concat_speedup, 2)),
                                ("star_linear_ns", Json::fixed(k.star_linear_ns, 1)),
                                ("star_squared_ns", Json::fixed(k.star_squared_ns, 1)),
                                ("star_speedup", Json::fixed(k.star_speedup, 2)),
                            ])
                        })),
                    ),
                ]),
            ),
            (
                "backends",
                Json::array(self.backends.iter().map(|b| {
                    Json::object([
                        ("backend", Json::str(&b.backend)),
                        ("wall_seconds", Json::fixed(b.wall_seconds, 4)),
                        ("solved", Json::uint(b.solved as u64)),
                        ("total", Json::uint(b.total as u64)),
                        ("candidates", Json::uint(b.candidates)),
                        ("rows_built", Json::uint(b.rows_built)),
                        ("dedup_hit_rate", Json::fixed(b.dedup_hit_rate, 4)),
                        ("chunks_claimed", Json::uint(b.chunks_claimed)),
                        ("chunks_stolen", Json::uint(b.chunks_stolen)),
                        ("prefilter_rejects", Json::uint(b.prefilter_rejects)),
                        (
                            "prefilter_reject_rate",
                            Json::fixed(b.prefilter_reject_rate, 4),
                        ),
                        ("dedup_overflowed", Json::uint(b.dedup_overflowed)),
                    ])
                })),
            ),
        ])
    }

    /// The report rendered as a standalone pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> HarnessConfig {
        let mut config = HarnessConfig::quick();
        config.time_budget = std::time::Duration::from_millis(250);
        config
    }

    #[test]
    fn perf_report_covers_every_backend_and_benchmark() {
        let config = tiny_config();
        let report = run_perf(&config);
        assert_eq!(report.backends.len(), 3);
        assert!(!report.kernels.is_empty());
        let names: Vec<&str> = report.backends.iter().map(|b| b.backend.as_str()).collect();
        assert_eq!(
            names,
            ["cpu-sequential", "cpu-thread-parallel", "gpu-sim-parallel"]
        );
        for b in &report.backends {
            assert_eq!(b.total, benchmark_pool(&config).len());
            assert!(b.wall_seconds > 0.0);
            assert!((0.0..=1.0).contains(&b.dedup_hit_rate));
            assert!(b.chunks_claimed > 0, "{}: no chunks claimed", b.backend);
            assert!(
                (0.0..=1.0).contains(&b.prefilter_reject_rate),
                "{}: reject rate {}",
                b.backend,
                b.prefilter_reject_rate
            );
            assert!(
                b.prefilter_rejects <= b.candidates,
                "{}: more rejects than candidates",
                b.backend
            );
        }
        for k in &report.kernels {
            assert!(k.concat_masked_ns > 0.0 && k.concat_gather_ns > 0.0);
            assert!(k.star_squared_ns > 0.0 && k.star_linear_ns > 0.0);
        }
    }

    #[test]
    fn json_round_trips_through_the_shared_parser() {
        let config = tiny_config();
        let report = run_perf(&config);
        let text = report.to_json();
        assert!(text.starts_with("{\n"));
        assert!(text.ends_with("}\n"));
        let doc = Json::parse(&text).expect("report renders valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("rei-bench/perf-v4")
        );
        let backends = doc.get("backends").and_then(Json::as_array).unwrap();
        assert_eq!(backends.len(), 3);
        assert_eq!(
            backends[1].get("backend").and_then(Json::as_str),
            Some("cpu-thread-parallel")
        );
        for row in backends {
            for key in [
                "chunks_claimed",
                "chunks_stolen",
                "prefilter_rejects",
                "prefilter_reject_rate",
                "dedup_overflowed",
            ] {
                assert!(row.get(key).is_some(), "missing {key}: {row:?}");
            }
        }
        let kernels = doc.get("kernels").unwrap();
        assert!(kernels
            .get("geomean_concat_speedup")
            .unwrap()
            .as_f64()
            .is_some());
        assert!(!kernels
            .get("per_benchmark")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn geomean_of_equal_values_is_the_value() {
        let g = geomean([2.0, 2.0, 2.0].into_iter());
        assert!((g - 2.0).abs() < 1e-9);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }
}
