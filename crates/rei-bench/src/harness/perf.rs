//! The `perf` experiment: a machine-readable performance baseline.
//!
//! Unlike the paper-reproduction experiments, this one tracks the
//! repository's *own* performance trajectory: per-benchmark kernel
//! micro-timings (the mask-based concatenation and squared star against
//! the split-gather and linear-iteration kernels they replaced) and a
//! per-backend wall-clock comparison over the Table 1 benchmark pool.
//! The `reproduce perf` command serialises the report to
//! `BENCH_core.json` (see [`PerfReport::to_json`]); a copy of the file is
//! committed at the repository root so every PR has a baseline to beat,
//! and CI regenerates it as an artifact on every push.

use std::hint::black_box;
use std::time::Instant;

use rei_core::{BackendChoice, SynthSession, SynthesisStats};
use rei_lang::{csops, simd, Cs, GuideMasks, GuideTable, InfixClosure, Word};
use rei_service::json::Json;
use rei_syntax::parse;

use crate::costs::REFERENCE;
use crate::harness::figure1::benchmark_pool;
use crate::harness::{HarnessConfig, Scale};

/// Kernel micro-timings on one benchmark's infix closure.
#[derive(Debug, Clone)]
pub struct KernelPerfRow {
    /// Benchmark name (`T1-…` / `T2-…`).
    pub benchmark: String,
    /// Size of the infix closure the kernels operate over.
    pub closure_size: usize,
    /// Mean nanoseconds per split-gather concatenation (the seed kernel).
    pub concat_gather_ns: f64,
    /// Mean nanoseconds per mask-based concatenation.
    pub concat_masked_ns: f64,
    /// `concat_gather_ns / concat_masked_ns`.
    pub concat_speedup: f64,
    /// Mean nanoseconds per linear-iteration star (the seed kernel).
    pub star_linear_ns: f64,
    /// Mean nanoseconds per squared star.
    pub star_squared_ns: f64,
    /// `star_linear_ns / star_squared_ns`.
    pub star_speedup: f64,
}

/// SIMD-tier-vs-scalar micro-timings on one synthetic wide closure.
///
/// The Table 1 closures are a single `u64` block wide, below the lane
/// thresholds of the SIMD tier, so those rows exercise the scalar kernels
/// on every host. These rows instead use closures of all binary words up
/// to a length bound — 8 to 32 blocks per row — where the lane kernels
/// genuinely engage, and pit the dispatched entry points against the
/// pinned-scalar references on identical operands.
#[derive(Debug, Clone)]
pub struct SimdPerfRow {
    /// Closure label (`"words-len<=8"` …).
    pub closure: String,
    /// Words in the infix closure.
    pub closure_size: usize,
    /// `u64` blocks per characteristic-sequence row.
    pub blocks: usize,
    /// Whether funnel staging found profitable segments on this closure,
    /// i.e. the lane concat/star kernels take the vector path at all.
    /// Narrow closures stage nothing (their runs lose to segment setup)
    /// and dispatch straight to scalar; their concat/star speedups are
    /// pinned to 1.0.
    pub concat_lanes: bool,
    /// Mean nanoseconds per pinned-scalar concatenation.
    pub concat_scalar_ns: f64,
    /// Mean nanoseconds per dispatched concatenation.
    pub concat_simd_ns: f64,
    /// `concat_scalar_ns / concat_simd_ns` (pinned to 1.0 on scalar-tier
    /// hosts, where both entry points run the same code).
    pub concat_speedup: f64,
    /// Mean nanoseconds per pinned-scalar squared star.
    pub star_scalar_ns: f64,
    /// Mean nanoseconds per dispatched squared star.
    pub star_simd_ns: f64,
    /// `star_scalar_ns / star_simd_ns` (pinned like the concat speedup).
    pub star_speedup: f64,
    /// Mean nanoseconds per pinned-scalar satisfy + misclassified fold.
    pub satisfy_scalar_ns: f64,
    /// Mean nanoseconds per dispatched satisfy + misclassified fold.
    pub satisfy_simd_ns: f64,
    /// `satisfy_scalar_ns / satisfy_simd_ns` (pinned like the others).
    pub satisfy_speedup: f64,
}

/// The SIMD kernel-tier summary: which tier the runtime probe selected,
/// whether every dispatched kernel agreed bit-for-bit with its scalar
/// reference, and the speedup rows on the synthetic wide closures.
#[derive(Debug, Clone)]
pub struct SimdPerfSection {
    /// Probe result label (`"scalar"`, `"avx2"`, `"neon"`).
    pub tier: String,
    /// Whether the probe found a lane tier at all.
    pub accelerated: bool,
    /// `true` when every dispatched kernel output matched the pinned
    /// scalar kernel on every operand pair of every row.
    pub scalar_parity: bool,
    /// Geometric mean of the per-closure concat speedups.
    pub geomean_concat_speedup: f64,
    /// Geometric mean of the per-closure star speedups.
    pub geomean_star_speedup: f64,
    /// Geometric mean of the per-closure satisfy-fold speedups.
    pub geomean_satisfy_speedup: f64,
    /// One row per synthetic closure.
    pub per_benchmark: Vec<SimdPerfRow>,
}

/// Wall-clock and search statistics of one backend over the whole pool.
#[derive(Debug, Clone)]
pub struct BackendPerfRow {
    /// Canonical backend name (`Backend::name()`).
    pub backend: String,
    /// Wall-clock seconds across every run of the pool.
    pub wall_seconds: f64,
    /// Runs that produced an expression.
    pub solved: usize,
    /// Total runs.
    pub total: usize,
    /// Candidate languages constructed across all runs.
    pub candidates: u64,
    /// Unique languages (rows built) across all runs.
    pub rows_built: u64,
    /// Fraction of candidates rejected as duplicates:
    /// `1 − rows_built / candidates`.
    pub dedup_hit_rate: f64,
    /// Work chunks claimed by the level execution engine (streamed level
    /// chunks, or work-stealing claims on the thread-parallel backend).
    pub chunks_claimed: u64,
    /// Chunks a thread-parallel worker stole from a peer's range.
    pub chunks_stolen: u64,
    /// Rows whose full satisfaction check the admission prefilter
    /// skipped.
    pub prefilter_rejects: u64,
    /// `prefilter_rejects / candidates` (0 when no candidates ran).
    pub prefilter_reject_rate: f64,
    /// Uniqueness-filter insertions that overflowed its table.
    pub dedup_overflowed: u64,
}

/// The full perf baseline: kernel micro-timings plus the per-backend
/// comparison, with geometric-mean summaries.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// Seed the benchmark pool was generated from.
    pub seed: u64,
    /// Worker threads used by the parallel backends.
    pub threads: usize,
    /// Cores the host reported; the thread-parallel vs sequential
    /// wall-clock comparison is only meaningful when this is ≥ 2.
    pub available_cores: usize,
    /// Per-benchmark kernel rows.
    pub kernels: Vec<KernelPerfRow>,
    /// SIMD tier timings on synthetic wide closures.
    pub simd: SimdPerfSection,
    /// Geometric mean of the per-benchmark concat speedups.
    pub geomean_concat_speedup: f64,
    /// Geometric mean of the per-benchmark star speedups.
    pub geomean_star_speedup: f64,
    /// One row per backend over the shared pool.
    pub backends: Vec<BackendPerfRow>,
}

/// Times `f` and returns the nanoseconds per operation of the *fastest*
/// of several measurement rounds (the minimum is the standard scheduler-
/// noise-resistant estimator for micro-benchmarks), where each call of
/// `f` performs `ops_per_call` operations. One warm-up call precedes the
/// measurements.
fn time_per_op<F: FnMut()>(calls: usize, ops_per_call: usize, mut f: F) -> f64 {
    const ROUNDS: usize = 5;
    f();
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        for _ in 0..calls {
            f();
        }
        let per_op = start.elapsed().as_nanos() as f64 / (calls * ops_per_call) as f64;
        best = best.min(per_op);
    }
    best
}

/// A mixed bag of operand rows over `ic`: sparse literals, mid-density
/// concatenations and dense starred languages, mirroring what a real
/// cost level combines.
fn operand_rows(ic: &InfixClosure) -> Vec<Cs> {
    [
        "0",
        "1",
        "01",
        "0?1",
        "(0+1)(0+1)",
        "1(0+1)*",
        "(0?1)*",
        "(0+11)*1",
        "(10)*",
    ]
    .iter()
    .map(|e| ic.cs_of_regex(&parse(e).expect("operand regex parses")))
    .collect()
}

fn kernel_row(name: &str, spec: &rei_lang::Spec, calls: usize) -> KernelPerfRow {
    let ic = InfixClosure::of_spec(spec);
    let gt = GuideTable::build(&ic);
    let gm = GuideMasks::build(&ic);
    let eps = ic.eps_index().expect("non-empty spec closure");
    let rows = operand_rows(&ic);
    let width = ic.width();
    let pairs = rows.len() * rows.len();

    let mut dst = Cs::zero(width);
    let concat_gather_ns = time_per_op(calls, pairs, || {
        for a in &rows {
            for b in &rows {
                csops::concat_into_gather(dst.blocks_mut(), a.blocks(), b.blocks(), &gt);
            }
        }
    });
    let concat_masked_ns = time_per_op(calls, pairs, || {
        for a in &rows {
            for b in &rows {
                csops::concat_into(dst.blocks_mut(), a.blocks(), b.blocks(), &gm);
            }
        }
    });

    let mut scratch = vec![0u64; width.blocks()];
    let star_linear_ns = time_per_op(calls, rows.len(), || {
        for a in &rows {
            csops::star_into_linear(dst.blocks_mut(), a.blocks(), &gt, eps, &mut scratch);
        }
    });
    let star_squared_ns = time_per_op(calls, rows.len(), || {
        for a in &rows {
            csops::star_into(dst.blocks_mut(), a.blocks(), &gm, eps, &mut scratch);
        }
    });

    KernelPerfRow {
        benchmark: name.to_string(),
        closure_size: ic.len(),
        concat_gather_ns,
        concat_masked_ns,
        concat_speedup: concat_gather_ns / concat_masked_ns,
        star_linear_ns,
        star_squared_ns,
        star_speedup: star_linear_ns / star_squared_ns,
    }
}

/// All binary words of length ≤ `max_len` — an infix-closed set whose
/// rows are wide enough (8 blocks at `max_len = 8`, 32 at `10`) for the
/// lane kernels to engage. Mirrors the parity-test closure in
/// `rei_lang::csops`.
fn wide_closure(max_len: u32) -> InfixClosure {
    let words = (0..=max_len).flat_map(|len| {
        (0..(1u32 << len)).map(move |bits| {
            Word::new((0..len).map(|i| if bits >> i & 1 == 1 { '1' } else { '0' }))
        })
    });
    InfixClosure::of_words(words)
}

/// Times the dispatched kernels against the pinned-scalar references on
/// one synthetic wide closure and verifies their outputs agree.
/// `parity` accumulates: it stays `true` only while every comparison on
/// every row matches.
fn simd_row(max_len: u32, calls: usize, parity: &mut bool) -> SimdPerfRow {
    let ic = wide_closure(max_len);
    let gm = GuideMasks::build(&ic);
    let eps = ic.eps_index().expect("wide closure contains ε");
    let rows = operand_rows(&ic);
    let width = ic.width();
    let pairs = rows.len() * rows.len();

    let mut scalar = Cs::zero(width);
    let mut dispatched = Cs::zero(width);
    let mut scratch = vec![0u64; width.blocks()];

    // Parity sweep first: every dispatched output against its scalar
    // reference on the same operands the timings use.
    for a in &rows {
        for b in &rows {
            csops::concat_into_scalar(scalar.blocks_mut(), a.blocks(), b.blocks(), &gm);
            csops::concat_into_simd(dispatched.blocks_mut(), a.blocks(), b.blocks(), &gm);
            *parity &= scalar == dispatched;
            *parity &= csops::satisfies_scalar(a.blocks(), b.blocks(), scalar.blocks())
                == csops::satisfies_simd(a.blocks(), b.blocks(), scalar.blocks());
            *parity &= csops::misclassified_scalar(a.blocks(), b.blocks(), scalar.blocks())
                == csops::misclassified_simd(a.blocks(), b.blocks(), scalar.blocks());
        }
        csops::star_into_scalar(scalar.blocks_mut(), a.blocks(), &gm, eps, &mut scratch);
        csops::star_into_simd(dispatched.blocks_mut(), a.blocks(), &gm, eps, &mut scratch);
        *parity &= scalar == dispatched;
    }

    let mut dst = Cs::zero(width);
    let concat_scalar_ns = time_per_op(calls, pairs, || {
        for a in &rows {
            for b in &rows {
                csops::concat_into_scalar(dst.blocks_mut(), a.blocks(), b.blocks(), &gm);
            }
        }
    });
    let concat_simd_ns = time_per_op(calls, pairs, || {
        for a in &rows {
            for b in &rows {
                csops::concat_into_simd(dst.blocks_mut(), a.blocks(), b.blocks(), &gm);
            }
        }
    });

    let star_scalar_ns = time_per_op(calls, rows.len(), || {
        for a in &rows {
            csops::star_into_scalar(dst.blocks_mut(), a.blocks(), &gm, eps, &mut scratch);
        }
    });
    let star_simd_ns = time_per_op(calls, rows.len(), || {
        for a in &rows {
            csops::star_into_simd(dst.blocks_mut(), a.blocks(), &gm, eps, &mut scratch);
        }
    });

    // The fold operands reuse the operand rows: `a` plays the candidate,
    // the neighbouring rows play the positive/negative masks. `black_box`
    // keeps the optimiser from discarding the fold results.
    let fold_ops = rows.len();
    let satisfy_scalar_ns = time_per_op(calls, fold_ops, || {
        for (i, a) in rows.iter().enumerate() {
            let pos = &rows[(i + 1) % rows.len()];
            let neg = &rows[(i + 2) % rows.len()];
            black_box(csops::satisfies_scalar(
                a.blocks(),
                pos.blocks(),
                neg.blocks(),
            ));
            black_box(csops::misclassified_scalar(
                a.blocks(),
                pos.blocks(),
                neg.blocks(),
            ));
        }
    });
    let satisfy_simd_ns = time_per_op(calls, fold_ops, || {
        for (i, a) in rows.iter().enumerate() {
            let pos = &rows[(i + 1) % rows.len()];
            let neg = &rows[(i + 2) % rows.len()];
            black_box(csops::satisfies_simd(
                a.blocks(),
                pos.blocks(),
                neg.blocks(),
            ));
            black_box(csops::misclassified_simd(
                a.blocks(),
                pos.blocks(),
                neg.blocks(),
            ));
        }
    });

    // On scalar-tier hosts the dispatched entry points fall straight back
    // to the scalar kernels; any measured ratio is pure noise, so the
    // speedups are pinned to exactly 1.0 there. Likewise for concat and
    // star on closures where funnel staging found nothing profitable:
    // the dispatched kernel *is* the scalar kernel then.
    let accelerated = simd::tier().is_accelerated();
    let concat_lanes = accelerated && gm.simd_has_segments();
    let ratio = |engaged: bool, scalar_ns: f64, simd_ns: f64| {
        if engaged {
            scalar_ns / simd_ns
        } else {
            1.0
        }
    };

    SimdPerfRow {
        closure: format!("words-len<={max_len}"),
        closure_size: ic.len(),
        blocks: width.blocks(),
        concat_lanes,
        concat_scalar_ns,
        concat_simd_ns,
        concat_speedup: ratio(concat_lanes, concat_scalar_ns, concat_simd_ns),
        star_scalar_ns,
        star_simd_ns,
        star_speedup: ratio(concat_lanes, star_scalar_ns, star_simd_ns),
        satisfy_scalar_ns,
        satisfy_simd_ns,
        satisfy_speedup: ratio(accelerated, satisfy_scalar_ns, satisfy_simd_ns),
    }
}

/// Runs the SIMD tier timings over the synthetic wide closures.
fn simd_section(calls: usize) -> SimdPerfSection {
    let tier = simd::tier();
    let mut parity = true;
    let per_benchmark: Vec<SimdPerfRow> = [8u32, 9, 10]
        .iter()
        .map(|&max_len| simd_row(max_len, calls, &mut parity))
        .collect();
    SimdPerfSection {
        tier: tier.label().to_string(),
        accelerated: tier.is_accelerated(),
        scalar_parity: parity,
        geomean_concat_speedup: geomean(per_benchmark.iter().map(|r| r.concat_speedup)),
        geomean_star_speedup: geomean(per_benchmark.iter().map(|r| r.star_speedup)),
        geomean_satisfy_speedup: geomean(per_benchmark.iter().map(|r| r.satisfy_speedup)),
        per_benchmark,
    }
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, count) = values.fold((0.0f64, 0usize), |(s, c), v| (s + v.ln(), c + 1));
    if count == 0 {
        1.0
    } else {
        (sum / count as f64).exp()
    }
}

fn backend_row(
    config: &HarnessConfig,
    choice: BackendChoice,
    specs: &[rei_lang::Spec],
) -> BackendPerfRow {
    let synth_config = config.synth_config(REFERENCE.costs).with_backend(choice);
    let mut session = SynthSession::new(synth_config).expect("perf config is valid");
    let started = Instant::now();
    let mut solved = 0usize;
    let mut candidates = 0u64;
    let mut rows_built = 0u64;
    for spec in specs {
        let stats: Option<SynthesisStats> = match session.run(spec) {
            Ok(result) => {
                solved += 1;
                Some(result.stats)
            }
            Err(err) => err.stats().cloned(),
        };
        if let Some(stats) = stats {
            candidates += stats.candidates_generated;
            rows_built += stats.unique_languages;
        }
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    // The scheduler and prefilter counters accumulate on the session
    // across the whole pool — exactly the per-backend totals the report
    // wants.
    let totals = *session.stats();
    BackendPerfRow {
        backend: session.backend_name().to_string(),
        wall_seconds,
        solved,
        total: specs.len(),
        candidates,
        rows_built,
        dedup_hit_rate: if candidates == 0 {
            0.0
        } else {
            1.0 - rows_built as f64 / candidates as f64
        },
        chunks_claimed: totals.chunks_claimed,
        chunks_stolen: totals.chunks_stolen,
        prefilter_rejects: totals.prefilter_rejects,
        prefilter_reject_rate: if candidates == 0 {
            0.0
        } else {
            totals.prefilter_rejects as f64 / candidates as f64
        },
        dedup_overflowed: totals.dedup_overflowed,
    }
}

/// Runs the perf baseline: kernel micro-timings on every benchmark of the
/// Table 1 pool, then the pool end-to-end on each backend.
pub fn run_perf(config: &HarnessConfig) -> PerfReport {
    let pool = benchmark_pool(config);
    let calls = match config.scale {
        Scale::Quick => 200,
        Scale::Full => 1000,
    };
    let kernels: Vec<KernelPerfRow> = pool
        .iter()
        .map(|b| kernel_row(&b.name, &b.spec, calls))
        .collect();
    // The wide closures cost far more per operation than the Table 1
    // closures; fewer calls keep the measurement rounds comparable.
    let simd = simd_section((calls / 10).max(10));

    let specs: Vec<rei_lang::Spec> = pool.iter().map(|b| b.spec.clone()).collect();
    let threads = config.device_threads;
    let backends = vec![
        backend_row(config, BackendChoice::Sequential, &specs),
        backend_row(
            config,
            BackendChoice::ThreadParallel {
                threads: Some(threads),
            },
            &specs,
        ),
        backend_row(
            config,
            BackendChoice::DeviceParallel {
                threads: Some(threads),
            },
            &specs,
        ),
    ];

    PerfReport {
        scale: match config.scale {
            Scale::Quick => "quick".to_string(),
            Scale::Full => "full".to_string(),
        },
        seed: config.seed,
        threads,
        available_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        geomean_concat_speedup: geomean(kernels.iter().map(|k| k.concat_speedup)),
        geomean_star_speedup: geomean(kernels.iter().map(|k| k.star_speedup)),
        kernels,
        simd,
        backends,
    }
}

impl PerfReport {
    /// The report as a JSON document (schema `rei-bench/perf-v5`), built
    /// with the shared writer in [`rei_service::json`] — the workspace's
    /// serde shim provides no serializer. The `reproduce` binary merges
    /// this object into `BENCH_core.json`, preserving sections other
    /// experiments own (such as `service`). v3 added the level-execution
    /// counters per backend: chunks claimed, chunks stolen, prefilter
    /// rejects (plus rate) and dedup overflow. v4 marks the document
    /// whose `service` section (owned by `reproduce serve`) carries the
    /// sharded-pool breakdown and the disk-warm restart pass. v5 adds
    /// `kernels.simd`: the runtime kernel-tier probe result, the
    /// scalar-parity verdict and dispatched-vs-scalar speedups on
    /// synthetic wide closures.
    pub fn to_json_value(&self) -> Json {
        Json::object([
            ("schema", Json::str("rei-bench/perf-v5")),
            ("scale", Json::str(&self.scale)),
            ("seed", Json::uint(self.seed)),
            ("threads", Json::uint(self.threads as u64)),
            ("available_cores", Json::uint(self.available_cores as u64)),
            (
                "kernels",
                Json::object([
                    (
                        "geomean_concat_speedup",
                        Json::fixed(self.geomean_concat_speedup, 2),
                    ),
                    (
                        "geomean_star_speedup",
                        Json::fixed(self.geomean_star_speedup, 2),
                    ),
                    (
                        "per_benchmark",
                        Json::array(self.kernels.iter().map(|k| {
                            Json::object([
                                ("benchmark", Json::str(&k.benchmark)),
                                ("closure_size", Json::uint(k.closure_size as u64)),
                                ("concat_gather_ns", Json::fixed(k.concat_gather_ns, 1)),
                                ("concat_masked_ns", Json::fixed(k.concat_masked_ns, 1)),
                                ("concat_speedup", Json::fixed(k.concat_speedup, 2)),
                                ("star_linear_ns", Json::fixed(k.star_linear_ns, 1)),
                                ("star_squared_ns", Json::fixed(k.star_squared_ns, 1)),
                                ("star_speedup", Json::fixed(k.star_speedup, 2)),
                            ])
                        })),
                    ),
                    (
                        "simd",
                        Json::object([
                            ("tier", Json::str(&self.simd.tier)),
                            ("accelerated", Json::Bool(self.simd.accelerated)),
                            ("scalar_parity", Json::Bool(self.simd.scalar_parity)),
                            (
                                "geomean_concat_speedup",
                                Json::fixed(self.simd.geomean_concat_speedup, 2),
                            ),
                            (
                                "geomean_star_speedup",
                                Json::fixed(self.simd.geomean_star_speedup, 2),
                            ),
                            (
                                "geomean_satisfy_speedup",
                                Json::fixed(self.simd.geomean_satisfy_speedup, 2),
                            ),
                            (
                                "per_benchmark",
                                Json::array(self.simd.per_benchmark.iter().map(|r| {
                                    Json::object([
                                        ("closure", Json::str(&r.closure)),
                                        ("closure_size", Json::uint(r.closure_size as u64)),
                                        ("blocks", Json::uint(r.blocks as u64)),
                                        ("concat_lanes", Json::Bool(r.concat_lanes)),
                                        ("concat_scalar_ns", Json::fixed(r.concat_scalar_ns, 1)),
                                        ("concat_simd_ns", Json::fixed(r.concat_simd_ns, 1)),
                                        ("concat_speedup", Json::fixed(r.concat_speedup, 2)),
                                        ("star_scalar_ns", Json::fixed(r.star_scalar_ns, 1)),
                                        ("star_simd_ns", Json::fixed(r.star_simd_ns, 1)),
                                        ("star_speedup", Json::fixed(r.star_speedup, 2)),
                                        ("satisfy_scalar_ns", Json::fixed(r.satisfy_scalar_ns, 1)),
                                        ("satisfy_simd_ns", Json::fixed(r.satisfy_simd_ns, 1)),
                                        ("satisfy_speedup", Json::fixed(r.satisfy_speedup, 2)),
                                    ])
                                })),
                            ),
                        ]),
                    ),
                ]),
            ),
            (
                "backends",
                Json::array(self.backends.iter().map(|b| {
                    Json::object([
                        ("backend", Json::str(&b.backend)),
                        ("wall_seconds", Json::fixed(b.wall_seconds, 4)),
                        ("solved", Json::uint(b.solved as u64)),
                        ("total", Json::uint(b.total as u64)),
                        ("candidates", Json::uint(b.candidates)),
                        ("rows_built", Json::uint(b.rows_built)),
                        ("dedup_hit_rate", Json::fixed(b.dedup_hit_rate, 4)),
                        ("chunks_claimed", Json::uint(b.chunks_claimed)),
                        ("chunks_stolen", Json::uint(b.chunks_stolen)),
                        ("prefilter_rejects", Json::uint(b.prefilter_rejects)),
                        (
                            "prefilter_reject_rate",
                            Json::fixed(b.prefilter_reject_rate, 4),
                        ),
                        ("dedup_overflowed", Json::uint(b.dedup_overflowed)),
                    ])
                })),
            ),
        ])
    }

    /// The report rendered as a standalone pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> HarnessConfig {
        let mut config = HarnessConfig::quick();
        config.time_budget = std::time::Duration::from_millis(250);
        config
    }

    #[test]
    fn perf_report_covers_every_backend_and_benchmark() {
        let config = tiny_config();
        let report = run_perf(&config);
        assert_eq!(report.backends.len(), 3);
        assert!(!report.kernels.is_empty());
        let names: Vec<&str> = report.backends.iter().map(|b| b.backend.as_str()).collect();
        assert_eq!(
            names,
            ["cpu-sequential", "cpu-thread-parallel", "gpu-sim-parallel"]
        );
        for b in &report.backends {
            assert_eq!(b.total, benchmark_pool(&config).len());
            assert!(b.wall_seconds > 0.0);
            assert!((0.0..=1.0).contains(&b.dedup_hit_rate));
            assert!(b.chunks_claimed > 0, "{}: no chunks claimed", b.backend);
            assert!(
                (0.0..=1.0).contains(&b.prefilter_reject_rate),
                "{}: reject rate {}",
                b.backend,
                b.prefilter_reject_rate
            );
            assert!(
                b.prefilter_rejects <= b.candidates,
                "{}: more rejects than candidates",
                b.backend
            );
        }
        for k in &report.kernels {
            assert!(k.concat_masked_ns > 0.0 && k.concat_gather_ns > 0.0);
            assert!(k.star_squared_ns > 0.0 && k.star_linear_ns > 0.0);
        }
        let simd = &report.simd;
        assert!(
            simd.scalar_parity,
            "dispatched kernels diverged from scalar"
        );
        assert_eq!(simd.accelerated, rei_lang::simd::tier().is_accelerated());
        assert_eq!(simd.tier, rei_lang::simd::tier().label());
        assert_eq!(simd.per_benchmark.len(), 3);
        for row in &simd.per_benchmark {
            assert!(
                row.blocks >= 8,
                "{}: too narrow to engage lanes",
                row.closure
            );
            assert!(row.concat_scalar_ns > 0.0 && row.concat_simd_ns > 0.0);
            assert!(row.star_scalar_ns > 0.0 && row.star_simd_ns > 0.0);
            assert!(row.satisfy_scalar_ns > 0.0 && row.satisfy_simd_ns > 0.0);
            if !simd.accelerated {
                assert!(!row.concat_lanes);
                assert_eq!(row.satisfy_speedup, 1.0);
            }
            if !row.concat_lanes {
                assert_eq!(row.concat_speedup, 1.0);
                assert_eq!(row.star_speedup, 1.0);
            }
        }
    }

    #[test]
    fn json_round_trips_through_the_shared_parser() {
        let config = tiny_config();
        let report = run_perf(&config);
        let text = report.to_json();
        assert!(text.starts_with("{\n"));
        assert!(text.ends_with("}\n"));
        let doc = Json::parse(&text).expect("report renders valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("rei-bench/perf-v5")
        );
        let backends = doc.get("backends").and_then(Json::as_array).unwrap();
        assert_eq!(backends.len(), 3);
        assert_eq!(
            backends[1].get("backend").and_then(Json::as_str),
            Some("cpu-thread-parallel")
        );
        for row in backends {
            for key in [
                "chunks_claimed",
                "chunks_stolen",
                "prefilter_rejects",
                "prefilter_reject_rate",
                "dedup_overflowed",
            ] {
                assert!(row.get(key).is_some(), "missing {key}: {row:?}");
            }
        }
        let kernels = doc.get("kernels").unwrap();
        assert!(kernels
            .get("geomean_concat_speedup")
            .unwrap()
            .as_f64()
            .is_some());
        assert!(!kernels
            .get("per_benchmark")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty());
        let simd = kernels.get("simd").expect("kernels.simd section");
        assert!(simd.get("tier").and_then(Json::as_str).is_some());
        assert_eq!(simd.get("scalar_parity"), Some(&Json::Bool(true)));
        for key in [
            "geomean_concat_speedup",
            "geomean_star_speedup",
            "geomean_satisfy_speedup",
        ] {
            assert!(simd.get(key).unwrap().as_f64().is_some(), "missing {key}");
        }
        let rows = simd.get("per_benchmark").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 3);
        for row in rows {
            for key in [
                "closure",
                "blocks",
                "concat_lanes",
                "concat_speedup",
                "satisfy_speedup",
            ] {
                assert!(row.get(key).is_some(), "missing {key}: {row:?}");
            }
        }
    }

    #[test]
    fn geomean_of_equal_values_is_the_value() {
        let g = geomean([2.0, 2.0, 2.0].into_iter());
        assert!((g - 2.0).abs() < 1e-9);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }
}
