//! Benchmark generators and the paper-reproduction harness for Paresy-rs.
//!
//! The crate has three parts:
//!
//! * [`generator`] — the parameterised random benchmark schemes of
//!   Section 4.3 of the paper (Type 1 and Type 2), driven by a seeded RNG
//!   so every experiment is reproducible.
//! * [`suite`] — a reconstruction of the 25 AlphaRegex tasks used in
//!   Table 2, each with its English description, example sets and a
//!   reference solution.
//! * [`harness`] — functions that regenerate every table and figure of the
//!   paper's evaluation (Figure 1, Table 1, Table 2, the outlier
//!   distribution and the allowed-error table of Section 5.2) and return
//!   the rows as plain data that the `reproduce` binary and the Criterion
//!   benches print.
//!
//! # Example
//!
//! ```
//! use rei_bench::generator::{Type1Params, generate_type1};
//! use rei_lang::Alphabet;
//!
//! let params = Type1Params { alphabet: Alphabet::binary(), max_len: 4, positives: 4, negatives: 4 };
//! let spec = generate_type1(&params, 7).unwrap();
//! assert_eq!(spec.num_positive(), 4);
//! assert_eq!(spec.num_negative(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod generator;
pub mod harness;
pub mod report;
pub mod suite;
