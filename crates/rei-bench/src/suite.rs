//! A reconstruction of the 25-task AlphaRegex benchmark suite used in
//! Table 2 of the paper.
//!
//! The original task files of Lee et al. (2016/2017) are not bundled with
//! the paper, so the suite here is *reconstructed from the published task
//! descriptions*: each task keeps its English description, a positive and a
//! negative example set consistent with that description, and a reference
//! solution used by the tests as a satisfiability witness. Tasks whose
//! original formulation relies on the AlphaRegex wild-card heuristic are
//! marked with [`Task::wildcard`] (the paper's `†` annotation); the harness
//! runs AlphaRegex with the heuristic enabled on exactly those tasks.
//!
//! The reconstruction preserves what Table 2 measures: relative running
//! times, the number of candidate expressions explored by each tool and
//! whether AlphaRegex's result is cost-minimal.

use rei_lang::Spec;
use rei_syntax::{parse, Regex};

/// One task of the AlphaRegex suite.
#[derive(Debug, Clone)]
pub struct Task {
    /// Task number (1-based, as in Table 2: `no1` … `no25`).
    pub number: usize,
    /// The English description of the target language.
    pub description: &'static str,
    /// Whether the original benchmark uses the wild-card heuristic (the
    /// `†` annotation in Table 2).
    pub wildcard: bool,
    /// A reference solution (not necessarily minimal) used as a
    /// satisfiability witness in tests.
    pub reference: &'static str,
    positive: &'static [&'static str],
    negative: &'static [&'static str],
}

impl Task {
    /// The task's specification.
    ///
    /// # Panics
    ///
    /// Panics if the hard-coded example sets overlap, which is prevented by
    /// the suite's tests.
    pub fn spec(&self) -> Spec {
        Spec::from_strs(self.positive.iter().copied(), self.negative.iter().copied())
            .expect("suite example sets are disjoint")
    }

    /// The reference solution parsed into an AST.
    ///
    /// # Panics
    ///
    /// Panics if the hard-coded reference does not parse, which is
    /// prevented by the suite's tests.
    pub fn reference_regex(&self) -> Regex {
        parse(self.reference).expect("suite reference expressions parse")
    }

    /// Name used in reports, e.g. `"no07"`.
    pub fn name(&self) -> String {
        format!("no{:02}", self.number)
    }
}

macro_rules! task {
    ($no:expr, $desc:expr, $wild:expr, $reference:expr, [$($p:expr),* $(,)?], [$($n:expr),* $(,)?]) => {
        Task {
            number: $no,
            description: $desc,
            wildcard: $wild,
            reference: $reference,
            positive: &[$($p),*],
            negative: &[$($n),*],
        }
    };
}

/// The 25 tasks of the reconstructed AlphaRegex suite.
pub fn alpharegex_suite() -> Vec<Task> {
    vec![
        task!(
            1,
            "strings starting with 0",
            true,
            "0(0+1)*",
            ["0", "00", "01", "010", "0110"],
            ["1", "10", "11", "101", "1100"]
        ),
        task!(
            2,
            "strings ending with 01",
            true,
            "(0+1)*01",
            ["01", "001", "101", "1101", "0101"],
            ["0", "1", "10", "110", "0110"]
        ),
        task!(
            3,
            "strings containing 0101",
            true,
            "(0+1)*0101(0+1)*",
            ["0101", "00101", "01011", "10101"],
            ["0", "1", "010", "0110", "01001", "10010"]
        ),
        task!(
            4,
            "strings whose third symbol is 0",
            true,
            "(0+1)(0+1)0(0+1)*",
            ["110", "000", "010", "1100", "01011"],
            ["0", "11", "001", "111", "0110", "10111"]
        ),
        task!(
            5,
            "strings of even length",
            true,
            "((0+1)(0+1))*",
            ["00", "01", "1011", "110100"],
            ["0", "1", "011", "10110"]
        ),
        task!(
            6,
            "strings with an odd number of 1s",
            true,
            "0*10*(10*10*)*",
            ["1", "10", "001", "111", "10011"],
            ["0", "11", "0110", "1001", "00"]
        ),
        task!(
            7,
            "strings with no two consecutive 0s",
            false,
            "(1+01)*0?",
            ["1", "0", "01", "010", "10101", "0110"],
            ["00", "100", "001", "0100", "11001"]
        ),
        task!(
            8,
            "strings beginning and ending with the same symbol",
            false,
            "0(0+1)*0+1(0+1)*1+0+1",
            ["0", "1", "00", "101", "0110", "11011"],
            ["01", "10", "001", "110", "0101"]
        ),
        task!(
            9,
            "strings in which every 0 is immediately followed by a 1",
            true,
            "(1+01)*",
            ["1", "01", "11", "011", "0101", "1011"],
            ["0", "10", "00", "010", "0110", "100"]
        ),
        task!(
            10,
            "strings containing at least two 1s",
            false,
            "0*10*1(0+1)*",
            ["11", "101", "110", "0101", "10010"],
            ["0", "1", "00", "010", "1000"]
        ),
        task!(
            11,
            "strings ending with 0",
            false,
            "(0+1)*0",
            ["0", "10", "00", "110", "0100"],
            ["1", "01", "11", "001", "1011"]
        ),
        task!(
            12,
            "strings of length exactly three",
            false,
            "(0+1)(0+1)(0+1)",
            ["000", "010", "101", "111"],
            ["0", "11", "0000", "10", "01011"]
        ),
        task!(
            13,
            "strings with an even number of 0s",
            false,
            "1*(01*01*)*",
            ["11", "00", "001", "0110", "1001"],
            ["0", "01", "10", "000", "00011", "11110"]
        ),
        task!(
            14,
            "strings containing 0110",
            true,
            "(0+1)*0110(0+1)*",
            ["0110", "00110", "01101", "101100"],
            ["0", "1", "011", "0101", "01011", "1100"]
        ),
        task!(
            15,
            "strings of odd length",
            true,
            "(0+1)((0+1)(0+1))*",
            ["0", "1", "010", "111", "01011"],
            ["00", "10", "0101", "110110"]
        ),
        task!(
            16,
            "strings whose second symbol is 1",
            true,
            "(0+1)1(0+1)*",
            ["01", "11", "010", "111", "0110"],
            ["0", "1", "00", "100", "1011"]
        ),
        task!(
            17,
            "strings containing 11",
            false,
            "(0+1)*11(0+1)*",
            ["11", "011", "110", "0110", "10111"],
            ["0", "1", "10", "0101", "10010"]
        ),
        task!(
            18,
            "strings starting with 1 and ending with 0",
            false,
            "1(0+1)*0",
            ["10", "110", "100", "1010", "11000"],
            ["0", "1", "01", "011", "0110", "101"]
        ),
        task!(
            19,
            "non-empty strings of length at most two",
            true,
            "(0+1)(0+1)?",
            ["0", "1", "01", "11"],
            ["000", "010", "1011", "11111"]
        ),
        task!(
            20,
            "non-empty strings containing no 1",
            true,
            "00*",
            ["0", "00", "000", "00000"],
            ["1", "01", "10", "0010", "111"]
        ),
        task!(
            21,
            "strings in which every 1 is immediately followed by a 0",
            false,
            "(0+10)*",
            ["0", "10", "00", "100", "1010", "0010"],
            ["1", "01", "11", "101", "10011"]
        ),
        task!(
            22,
            "strings starting with 01 or 10",
            true,
            "(01+10)(0+1)*",
            ["01", "10", "010", "101", "0111", "1000"],
            ["0", "1", "00", "11", "001", "110"]
        ),
        task!(
            23,
            "strings containing at most one 0",
            false,
            "1*0?1*",
            ["1", "0", "11", "101", "110", "1111"],
            ["00", "010", "001", "0100", "10010"]
        ),
        task!(
            24,
            "strings containing exactly two 1s",
            false,
            "0*10*10*",
            ["11", "101", "110", "0101", "10010"],
            ["0", "1", "10", "111", "1011", "0000"]
        ),
        task!(
            25,
            "strings not ending with 01",
            false,
            "(0+1)*(00+10+11)+0+1",
            ["0", "1", "00", "10", "11", "010", "111", "100"],
            ["01", "001", "101", "0101", "11001"]
        ),
    ]
}

/// Returns the task with the given number.
///
/// # Panics
///
/// Panics if `number` is not in `1..=25`.
pub fn task(number: usize) -> Task {
    alpharegex_suite()
        .into_iter()
        .find(|t| t.number == number)
        .unwrap_or_else(|| panic!("no task number {number}"))
}

/// The tasks considered *easy* for quick-scale harness runs: those whose
/// reference solution has uniform cost at most `max_reference_cost`.
pub fn easy_tasks(max_reference_cost: u64) -> Vec<Task> {
    alpharegex_suite()
        .into_iter()
        .filter(|t| t.reference_regex().cost(&rei_syntax::CostFn::UNIFORM) <= max_reference_cost)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_25_distinct_tasks() {
        let suite = alpharegex_suite();
        assert_eq!(suite.len(), 25);
        let numbers: std::collections::BTreeSet<usize> = suite.iter().map(|t| t.number).collect();
        assert_eq!(numbers.len(), 25);
        assert_eq!(*numbers.iter().next().unwrap(), 1);
        assert_eq!(*numbers.iter().last().unwrap(), 25);
    }

    #[test]
    fn every_reference_solution_satisfies_its_spec() {
        for task in alpharegex_suite() {
            let spec = task.spec();
            let reference = task.reference_regex();
            assert!(
                spec.is_satisfied_by(&reference),
                "task {} ({}): reference {} does not satisfy {}",
                task.name(),
                task.description,
                task.reference,
                spec
            );
        }
    }

    #[test]
    fn no_task_contains_the_empty_string() {
        // AlphaRegex cannot handle ε examples; the suite must respect that.
        for task in alpharegex_suite() {
            assert!(
                task.spec().iter().all(|w| !w.is_empty()),
                "task {} contains ε",
                task.name()
            );
        }
    }

    #[test]
    fn wildcard_annotation_matches_the_paper() {
        let marked: Vec<usize> = alpharegex_suite()
            .iter()
            .filter(|t| t.wildcard)
            .map(|t| t.number)
            .collect();
        assert_eq!(marked, vec![1, 2, 3, 4, 5, 6, 9, 14, 15, 16, 19, 20, 22]);
    }

    #[test]
    fn task_lookup_and_names() {
        assert_eq!(task(7).name(), "no07");
        assert_eq!(task(25).number, 25);
    }

    #[test]
    fn easy_task_filter_is_monotone() {
        let all = easy_tasks(u64::MAX).len();
        let some = easy_tasks(10).len();
        let none = easy_tasks(1).len();
        assert_eq!(all, 25);
        assert!(none <= some && some <= all);
        assert!(
            some >= 5,
            "expected at least a handful of easy tasks, got {some}"
        );
    }

    #[test]
    #[should_panic(expected = "no task number 26")]
    fn unknown_task_panics() {
        let _ = task(26);
    }
}
