//! The cost functions used in the paper's evaluation.

use rei_syntax::CostFn;

/// A cost function together with the label used in Figure 1 and Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NamedCostFn {
    /// The label, e.g. `"(1, 1, 10, 1, 1)"`.
    pub label: &'static str,
    /// The cost homomorphism.
    pub costs: CostFn,
}

/// The twelve cost functions of Figure 1 and Table 1, in the paper's order
/// `(cost(a), cost(?), cost(*), cost(·), cost(+))`.
pub const PAPER_COST_FUNCTIONS: [NamedCostFn; 12] = [
    NamedCostFn {
        label: "(1, 1, 1, 1, 1)",
        costs: CostFn::new(1, 1, 1, 1, 1),
    },
    NamedCostFn {
        label: "(10, 1, 1, 1, 1)",
        costs: CostFn::new(10, 1, 1, 1, 1),
    },
    NamedCostFn {
        label: "(1, 10, 1, 1, 1)",
        costs: CostFn::new(1, 10, 1, 1, 1),
    },
    NamedCostFn {
        label: "(1, 1, 10, 1, 1)",
        costs: CostFn::new(1, 1, 10, 1, 1),
    },
    NamedCostFn {
        label: "(1, 1, 1, 10, 1)",
        costs: CostFn::new(1, 1, 1, 10, 1),
    },
    NamedCostFn {
        label: "(1, 1, 1, 1, 10)",
        costs: CostFn::new(1, 1, 1, 1, 10),
    },
    NamedCostFn {
        label: "(10, 10, 10, 10, 1)",
        costs: CostFn::new(10, 10, 10, 10, 1),
    },
    NamedCostFn {
        label: "(10, 10, 10, 1, 10)",
        costs: CostFn::new(10, 10, 10, 1, 10),
    },
    NamedCostFn {
        label: "(10, 10, 1, 10, 10)",
        costs: CostFn::new(10, 10, 1, 10, 10),
    },
    NamedCostFn {
        label: "(10, 1, 10, 10, 10)",
        costs: CostFn::new(10, 1, 10, 10, 10),
    },
    NamedCostFn {
        label: "(1, 10, 10, 10, 10)",
        costs: CostFn::new(1, 10, 10, 10, 10),
    },
    NamedCostFn {
        label: "(20, 20, 20, 5, 30)",
        costs: CostFn::new(20, 20, 20, 5, 30),
    },
];

/// The uniform reference cost function the paper uses to order Figure 1's
/// x-axis.
pub const REFERENCE: NamedCostFn = PAPER_COST_FUNCTIONS[0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_distinct_cost_functions() {
        let mut seen = std::collections::HashSet::new();
        for named in PAPER_COST_FUNCTIONS {
            assert!(
                seen.insert(named.costs.as_tuple()),
                "duplicate {}",
                named.label
            );
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn labels_match_tuples() {
        for named in PAPER_COST_FUNCTIONS {
            let rendered = named.costs.to_string();
            assert_eq!(rendered, named.label);
        }
    }

    #[test]
    fn reference_is_uniform() {
        assert_eq!(REFERENCE.costs, CostFn::UNIFORM);
    }
}
