//! Random benchmark generation (Section 4.3 of the paper).
//!
//! Two complementary sampling schemes produce specifications `(P, N)` over
//! an alphabet `Σ` with parameters `le` (maximal example length), `p`
//! (number of positives) and `n` (number of negatives):
//!
//! * **Type 1** samples examples uniformly from `Σ^{≤le}`. Because there
//!   are exponentially more long strings than short ones, Type 1
//!   specifications are dominated by long strings.
//! * **Type 2** first picks a length uniformly from `0..=le` and then a
//!   string of that length, giving every length (and in particular `ε`)
//!   the same chance of occurring.
//!
//! Both schemes reject specifications whose positive and negative sets
//! would overlap by re-drawing, and both are driven by an explicit seed so
//! every experiment is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rei_lang::{Alphabet, Spec, Word};

/// Parameters of the Type 1 scheme.
#[derive(Debug, Clone)]
pub struct Type1Params {
    /// The alphabet to draw characters from.
    pub alphabet: Alphabet,
    /// Maximal example length `le`.
    pub max_len: usize,
    /// Number of positive examples `p`.
    pub positives: usize,
    /// Number of negative examples `n`.
    pub negatives: usize,
}

/// Parameters of the Type 2 scheme.
#[derive(Debug, Clone)]
pub struct Type2Params {
    /// The alphabet to draw characters from.
    pub alphabet: Alphabet,
    /// Maximal example length `le`.
    pub max_len: usize,
    /// Number of positive examples `p`.
    pub positives: usize,
    /// Number of negative examples `n`.
    pub negatives: usize,
}

/// A named random benchmark instance.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Identifier such as `"T1-03"`, stable for a given seed.
    pub name: String,
    /// Which scheme produced it (1 or 2).
    pub scheme: u8,
    /// The generated specification.
    pub spec: Spec,
}

/// Draws a word uniformly from `Σ^{≤max_len}` (Type 1 distribution).
fn uniform_word(rng: &mut StdRng, alphabet: &Alphabet, max_len: usize) -> Word {
    let total = alphabet.count_words_up_to(max_len);
    let mut index = rng.gen_range(0..total);
    let k = alphabet.len() as u128;
    // Find the length whose block of `k^len` words contains `index`.
    let mut len = 0usize;
    loop {
        let block = k.pow(len as u32);
        if index < block {
            break;
        }
        index -= block;
        len += 1;
    }
    word_of_rank(alphabet, len, index)
}

/// Draws a word by first choosing a length uniformly (Type 2 distribution).
fn length_uniform_word(rng: &mut StdRng, alphabet: &Alphabet, max_len: usize) -> Word {
    let len = rng.gen_range(0..=max_len);
    let count = (alphabet.len() as u128).pow(len as u32);
    let index = rng.gen_range(0..count.max(1));
    word_of_rank(alphabet, len, index)
}

/// The `rank`-th word of exactly `len` characters, in lexicographic order.
fn word_of_rank(alphabet: &Alphabet, len: usize, mut rank: u128) -> Word {
    let k = alphabet.len() as u128;
    let mut chars = vec![alphabet.symbols()[0]; len];
    for position in (0..len).rev() {
        let digit = (rank % k) as usize;
        rank /= k;
        chars[position] = alphabet.symbols()[digit];
    }
    Word::new(chars)
}

fn sample_spec<F>(positives: usize, negatives: usize, seed: u64, mut draw: F) -> Option<Spec>
where
    F: FnMut(&mut StdRng) -> Word,
{
    let mut rng = StdRng::seed_from_u64(seed);
    // Rejection sampling with a generous budget: a draw only fails when the
    // requested sizes exceed the number of available strings.
    let mut pos = std::collections::BTreeSet::new();
    let mut neg = std::collections::BTreeSet::new();
    let budget = 10_000 + 100 * (positives + negatives);
    for _ in 0..budget {
        if pos.len() < positives {
            pos.insert(draw(&mut rng));
            continue;
        }
        if neg.len() < negatives {
            let w = draw(&mut rng);
            if !pos.contains(&w) {
                neg.insert(w);
            }
            continue;
        }
        break;
    }
    if pos.len() == positives && neg.len() == negatives {
        Some(Spec::new(pos, neg).expect("sets are disjoint by construction"))
    } else {
        None
    }
}

/// Generates a Type 1 specification, or `None` if the parameters request
/// more distinct strings than `Σ^{≤le}` contains.
pub fn generate_type1(params: &Type1Params, seed: u64) -> Option<Spec> {
    let total = params.alphabet.count_words_up_to(params.max_len);
    if (params.positives + params.negatives) as u128 > total {
        return None;
    }
    let alphabet = params.alphabet.clone();
    let max_len = params.max_len;
    sample_spec(params.positives, params.negatives, seed, move |rng| {
        uniform_word(rng, &alphabet, max_len)
    })
}

/// Generates a Type 2 specification, or `None` if the parameters request
/// more distinct strings than `Σ^{≤le}` contains.
pub fn generate_type2(params: &Type2Params, seed: u64) -> Option<Spec> {
    let total = params.alphabet.count_words_up_to(params.max_len);
    if (params.positives + params.negatives) as u128 > total {
        return None;
    }
    let alphabet = params.alphabet.clone();
    let max_len = params.max_len;
    sample_spec(params.positives, params.negatives, seed, move |rng| {
        length_uniform_word(rng, &alphabet, max_len)
    })
}

/// Generates a pool of named benchmarks mixing both schemes, with
/// per-instance parameters drawn from the given ranges (inclusive), as in
/// the paper's benchmark construction.
#[allow(clippy::too_many_arguments)]
pub fn generate_pool(
    alphabet: &Alphabet,
    count_per_scheme: usize,
    type1_len: (usize, usize),
    type1_examples: (usize, usize),
    type2_len: (usize, usize),
    type2_examples: (usize, usize),
    seed: u64,
) -> Vec<Benchmark> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = Vec::new();
    for i in 0..count_per_scheme {
        // Retry with freshly drawn parameters until a feasible instance is
        // found, so the pool always has the requested size.
        for _ in 0..64 {
            let max_len = rng.gen_range(type1_len.0..=type1_len.1);
            let positives = rng.gen_range(type1_examples.0..=type1_examples.1);
            let negatives = rng.gen_range(type1_examples.0..=type1_examples.1);
            let params = Type1Params {
                alphabet: alphabet.clone(),
                max_len,
                positives,
                negatives,
            };
            if let Some(spec) = generate_type1(&params, rng.gen()) {
                pool.push(Benchmark {
                    name: format!("T1-{i:03}"),
                    scheme: 1,
                    spec,
                });
                break;
            }
        }
    }
    for i in 0..count_per_scheme {
        for _ in 0..64 {
            let max_len = rng.gen_range(type2_len.0..=type2_len.1);
            let positives = rng.gen_range(type2_examples.0..=type2_examples.1);
            let negatives = rng.gen_range(type2_examples.0..=type2_examples.1);
            let params = Type2Params {
                alphabet: alphabet.clone(),
                max_len,
                positives,
                negatives,
            };
            if let Some(spec) = generate_type2(&params, rng.gen()) {
                pool.push(Benchmark {
                    name: format!("T2-{i:03}"),
                    scheme: 2,
                    spec,
                });
                break;
            }
        }
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn binary_t1(max_len: usize, p: usize, n: usize) -> Type1Params {
        Type1Params {
            alphabet: Alphabet::binary(),
            max_len,
            positives: p,
            negatives: n,
        }
    }

    #[test]
    fn type1_generates_requested_sizes() {
        let spec = generate_type1(&binary_t1(5, 8, 8), 1).unwrap();
        assert_eq!(spec.num_positive(), 8);
        assert_eq!(spec.num_negative(), 8);
        assert!(spec.max_example_len() <= 5);
    }

    #[test]
    fn type1_is_deterministic_in_the_seed() {
        let a = generate_type1(&binary_t1(6, 10, 10), 42).unwrap();
        let b = generate_type1(&binary_t1(6, 10, 10), 42).unwrap();
        let c = generate_type1(&binary_t1(6, 10, 10), 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn impossible_parameters_return_none() {
        // Σ^{≤1} over {0,1} has only 3 strings.
        assert!(generate_type1(&binary_t1(1, 3, 3), 0).is_none());
        let t2 = Type2Params {
            alphabet: Alphabet::binary(),
            max_len: 1,
            positives: 2,
            negatives: 2,
        };
        assert!(generate_type2(&t2, 0).is_none());
    }

    #[test]
    fn type2_favours_short_strings() {
        // With le = 8, Type 1 almost never draws ε but Type 2 often does.
        let mut type2_has_eps = 0;
        for seed in 0..40 {
            let params = Type2Params {
                alphabet: Alphabet::binary(),
                max_len: 8,
                positives: 6,
                negatives: 6,
            };
            let spec = generate_type2(&params, seed).unwrap();
            if spec.iter().any(|w| w.is_empty()) {
                type2_has_eps += 1;
            }
        }
        assert!(
            type2_has_eps > 10,
            "ε occurred in only {type2_has_eps}/40 Type 2 specs"
        );
    }

    #[test]
    fn word_of_rank_enumerates_lexicographically() {
        let sigma = Alphabet::binary();
        let words: Vec<String> = (0..4)
            .map(|r| word_of_rank(&sigma, 2, r).to_string())
            .collect();
        assert_eq!(words, vec!["00", "01", "10", "11"]);
    }

    #[test]
    fn pool_generation_names_and_schemes() {
        let pool = generate_pool(&Alphabet::binary(), 3, (2, 4), (3, 4), (2, 4), (3, 4), 9);
        assert_eq!(pool.len(), 6);
        assert!(pool.iter().take(3).all(|b| b.scheme == 1));
        assert!(pool.iter().skip(3).all(|b| b.scheme == 2));
        assert_eq!(pool[0].name, "T1-000");
        assert_eq!(pool[3].name, "T2-000");
    }

    proptest! {
        /// Generated specifications always respect the length bound and the
        /// requested cardinalities, and P ∩ N = ∅ by construction.
        #[test]
        fn type1_respects_parameters(max_len in 3usize..7, p in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
            if let Some(spec) = generate_type1(&binary_t1(max_len, p, n), seed) {
                prop_assert_eq!(spec.num_positive(), p);
                prop_assert_eq!(spec.num_negative(), n);
                prop_assert!(spec.max_example_len() <= max_len);
            }
        }

        /// Uniform sampling only produces words over the alphabet.
        #[test]
        fn words_are_over_the_alphabet(seed in 0u64..500) {
            let params = Type2Params { alphabet: Alphabet::new(['a', 'b', 'c']), max_len: 5, positives: 4, negatives: 4 };
            if let Some(spec) = generate_type2(&params, seed) {
                for w in spec.iter() {
                    prop_assert!(w.chars().iter().all(|c| ['a', 'b', 'c'].contains(c)));
                }
            }
        }
    }
}
