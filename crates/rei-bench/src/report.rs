//! Plain-text table formatting for the `reproduce` binary and the benches.

/// Formats a table with a header row and aligned columns.
///
/// # Example
///
/// ```
/// use rei_bench::report::format_table;
///
/// let table = format_table(
///     &["name", "secs"],
///     &[vec!["no01".to_string(), "0.01".to_string()]],
/// );
/// assert!(table.contains("name"));
/// assert!(table.contains("no01"));
/// ```
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_string()
    };
    out.push_str(&render_row(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
    out.push('\n');
    for row in rows {
        let mut cells = row.clone();
        cells.resize(columns, String::new());
        out.push_str(&render_row(cells, &widths));
        out.push('\n');
    }
    out
}

/// Formats an optional float with the given precision, rendering `None` as
/// `"-"`.
pub fn fmt_opt(value: Option<f64>, precision: usize) -> String {
    match value {
        Some(v) => format!("{v:.precision$}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_aligned() {
        let table = format_table(
            &["a", "bbbb"],
            &[
                vec!["xxxx".into(), "1".into()],
                vec!["y".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        // The second column starts at the same offset in every data line.
        let offset = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find("22").unwrap(), offset);
    }

    #[test]
    fn short_rows_are_padded() {
        let table = format_table(&["a", "b"], &[vec!["only".into()]]);
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn optional_formatting() {
        assert_eq!(fmt_opt(Some(1.23456), 2), "1.23");
        assert_eq!(fmt_opt(None, 2), "-");
    }
}
