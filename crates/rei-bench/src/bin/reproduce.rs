//! Command-line entry point that regenerates the paper's tables and
//! figures.
//!
//! ```text
//! reproduce [--full] [--seed N] [--out FILE] [--workers N] [--pools N]
//!           [--cache-dir DIR] <experiment>
//!   experiment: figure1 | table1 | table2 | outliers | error | perf | serve | all
//! ```
//!
//! `--cache-dir` names the persistent-cache directory of the `serve`
//! experiment's restart pass; any `*.jsonl` cache files already in it
//! are **removed** before the cold pass (a pre-warmed cold pass would be
//! meaningless — unrelated files are left alone). Without the flag a
//! scratch directory is used and removed afterwards.
//!
//! By default the quick scale is used (seconds per experiment); `--full`
//! switches to paper-scale parameters with a 5-second per-run timeout.
//! The `perf` and `serve` experiments additionally update the
//! machine-readable baseline `BENCH_core.json` (path overridable with
//! `--out`): each merges the sections it owns into the existing document
//! so the other's survive a re-run. See `ROADMAP.md` for how to read it.

use std::process::ExitCode;

use rei_bench::harness::{
    outlier_distribution, run_error_table, run_figure1, run_net, run_perf, run_serve, run_table1,
    run_table2, HarnessConfig, RunOutcome, PAPER_THRESHOLDS,
};
use rei_bench::report::{fmt_opt, format_table};
use rei_service::json::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = HarnessConfig::quick();
    let mut experiment: Option<String> = None;
    let mut out_path = "BENCH_core.json".to_string();
    let mut workers = 4usize;
    let mut pools = 2usize;
    let mut cache_dir: Option<String> = None;
    let mut listen = false;
    let mut net_threads = 4usize;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => config = HarnessConfig::full(),
            "--seed" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(seed) => config.seed = seed,
                None => return usage("--seed expects an integer"),
            },
            "--out" => match iter.next() {
                Some(path) => out_path = path.clone(),
                None => return usage("--out expects a file path"),
            },
            "--workers" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => return usage("--workers expects a positive integer"),
            },
            "--pools" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => pools = n,
                _ => return usage("--pools expects a positive integer"),
            },
            "--cache-dir" => match iter.next() {
                Some(dir) => cache_dir = Some(dir.clone()),
                None => return usage("--cache-dir expects a directory path"),
            },
            "--listen" => listen = true,
            "--net-threads" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => net_threads = n,
                _ => return usage("--net-threads expects a positive integer"),
            },
            "--help" | "-h" => return usage(""),
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_string());
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let Some(experiment) = experiment else {
        return usage("missing experiment name");
    };

    match experiment.as_str() {
        "figure1" => print_figure1(&config),
        "table1" => print_table1(&config),
        "table2" => print_table2(&config),
        "outliers" => print_outliers(&config),
        "error" => print_error(&config),
        "perf" => {
            if !print_perf(&config, &out_path) {
                return ExitCode::FAILURE;
            }
        }
        "serve" => {
            if !print_serve(
                &config,
                workers,
                pools,
                cache_dir.as_deref(),
                listen.then_some(net_threads),
                &out_path,
            ) {
                return ExitCode::FAILURE;
            }
        }
        "all" => {
            print_figure1(&config);
            print_table1(&config);
            print_table2(&config);
            print_outliers(&config);
            print_error(&config);
            if !print_perf(&config, &out_path) {
                return ExitCode::FAILURE;
            }
            if !print_serve(
                &config,
                workers,
                pools,
                cache_dir.as_deref(),
                listen.then_some(net_threads),
                &out_path,
            ) {
                return ExitCode::FAILURE;
            }
        }
        other => return usage(&format!("unknown experiment '{other}'")),
    }
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!(
        "usage: reproduce [--full] [--seed N] [--out FILE] [--workers N] [--pools N] \
         [--cache-dir DIR] [--listen] [--net-threads N] \
         <figure1|table1|table2|outliers|error|perf|serve|all>"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn outcome_cells(outcome: &RunOutcome) -> (String, String, String) {
    match outcome {
        RunOutcome::Solved {
            seconds,
            cost,
            candidates,
            ..
        } => (
            format!("{seconds:.4}"),
            cost.to_string(),
            candidates.to_string(),
        ),
        other => (other.label(), "-".into(), "-".into()),
    }
}

fn print_figure1(config: &HarnessConfig) {
    println!("== Figure 1: synthesis time across 12 cost functions ==");
    let rows = run_figure1(config);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.scheme.to_string(),
                r.num_positive.to_string(),
                r.num_negative.to_string(),
                r.cost_label.clone(),
                r.outcome.label(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["benchmark", "type", "#P", "#N", "cost function", "time"],
            &table_rows
        )
    );
}

fn print_table1(config: &HarnessConfig) {
    println!("== Table 1: sequential CPU vs data-parallel engine ==");
    let rows = run_table1(config);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.to_string(),
                r.benchmark.clone(),
                r.num_positive.to_string(),
                r.num_negative.to_string(),
                r.cost_label.clone(),
                fmt_opt(r.cpu.seconds(), 4),
                fmt_opt(r.gpu.seconds(), 4),
                fmt_opt(r.speedup, 1),
                r.candidates
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "type",
                "bench",
                "#P",
                "#N",
                "cost function",
                "cpu s",
                "par s",
                "speedup",
                "#REs"
            ],
            &table_rows
        )
    );
    let speedups: Vec<f64> = rows.iter().filter_map(|r| r.speedup).collect();
    if !speedups.is_empty() {
        println!(
            "average speedup: {:.1}x over {} rows\n",
            speedups.iter().sum::<f64>() / speedups.len() as f64,
            speedups.len()
        );
    }
}

fn print_table2(config: &HarnessConfig) {
    println!("== Table 2: Paresy vs AlphaRegex ==");
    let rows = run_table2(config);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let (alpha_time, alpha_cost, alpha_res) = outcome_cells(&r.alpha);
            let (paresy_time, paresy_cost, paresy_res) = outcome_cells(&r.paresy);
            vec![
                format!("{}{}", r.task, if r.wildcard { "†" } else { "" }),
                alpha_time,
                paresy_time,
                fmt_opt(r.speedup, 1),
                alpha_cost,
                paresy_cost,
                alpha_res,
                paresy_res,
                fmt_opt(r.res_increase, 2),
                match r.alpha_minimal {
                    Some(true) => "yes".into(),
                    Some(false) => "NO".into(),
                    None => "-".into(),
                },
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "task",
                "αR s",
                "paresy s",
                "speedup",
                "αR cost",
                "paresy cost",
                "αR #REs",
                "paresy #REs",
                "increase",
                "αR minimal"
            ],
            &table_rows
        )
    );
}

fn print_perf(config: &HarnessConfig, out_path: &str) -> bool {
    println!("== Perf baseline: kernels and backends ==");
    let report = run_perf(config);
    let kernel_rows: Vec<Vec<String>> = report
        .kernels
        .iter()
        .map(|k| {
            vec![
                k.benchmark.clone(),
                k.closure_size.to_string(),
                format!("{:.0}", k.concat_gather_ns),
                format!("{:.0}", k.concat_masked_ns),
                format!("{:.2}x", k.concat_speedup),
                format!("{:.0}", k.star_linear_ns),
                format!("{:.0}", k.star_squared_ns),
                format!("{:.2}x", k.star_speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "bench",
                "#ic",
                "gather ns",
                "masked ns",
                "concat",
                "linear ns",
                "squared ns",
                "star"
            ],
            &kernel_rows
        )
    );
    println!(
        "geomean speedups: concat {:.2}x, star {:.2}x\n",
        report.geomean_concat_speedup, report.geomean_star_speedup
    );
    let backend_rows: Vec<Vec<String>> = report
        .backends
        .iter()
        .map(|b| {
            vec![
                b.backend.clone(),
                format!("{:.4}", b.wall_seconds),
                format!("{}/{}", b.solved, b.total),
                b.candidates.to_string(),
                b.rows_built.to_string(),
                format!("{:.2}%", b.dedup_hit_rate * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["backend", "wall s", "solved", "#REs", "rows", "dedup hits"],
            &backend_rows
        )
    );
    merge_sections(out_path, report.to_json_value())
}

fn print_serve(
    config: &HarnessConfig,
    workers: usize,
    pools: usize,
    cache_dir: Option<&str>,
    listen_net_threads: Option<usize>,
    out_path: &str,
) -> bool {
    println!("== Service throughput: cold vs cache-warm vs disk-warm restart ==");
    // Without an explicit --cache-dir the restart pass runs over a
    // scratch directory that is cleaned up afterwards.
    let scratch = std::env::temp_dir().join(format!("rei-serve-restart-{}", std::process::id()));
    let dir = match cache_dir {
        Some(dir) => std::path::PathBuf::from(dir),
        None => scratch.clone(),
    };
    // The cold pass is only cold without leftover cache files: records
    // from a previous run (or a reused scratch path) would pre-warm it
    // and corrupt the measurement. Only the experiment's own `*.jsonl`
    // shard files are removed — a user-supplied --cache-dir may hold
    // unrelated files that are not ours to delete.
    clear_cache_files(&dir);
    let report = run_serve(config, workers, pools, &dir);
    if cache_dir.is_none() {
        std::fs::remove_dir_all(&scratch).ok();
    }
    let pass_row = |label: &str, pass: &rei_bench::harness::ServePass| {
        vec![
            label.to_string(),
            pass.submitted.to_string(),
            format!("{:.4}", pass.wall_seconds),
            format!("{}/{}", pass.solved, pass.solved + pass.failed),
            pass.cache_hits.to_string(),
            pass.coalesced.to_string(),
            format!("{:.0}%", pass.cache_hit_rate() * 100.0),
        ]
    };
    println!(
        "{}",
        format_table(
            &[
                "pass",
                "requests",
                "wall s",
                "solved",
                "hits",
                "coalesced",
                "hit rate"
            ],
            &[
                pass_row("cold", &report.cold),
                pass_row("warm", &report.warm),
                pass_row("restart", &report.restart),
            ]
        )
    );
    let pool_rows: Vec<Vec<String>> = report
        .pools
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                p.submitted.to_string(),
                p.cache_hits.to_string(),
                p.coalesced.to_string(),
                p.completed.to_string(),
                p.workers.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "pool",
                "requests",
                "hits",
                "coalesced",
                "completed",
                "workers"
            ],
            &pool_rows
        )
    );
    println!(
        "{} pools x {} workers on {}, {} distinct specs; warm replay speedup {:.1}x, \
         restart warmed {} results from disk\n",
        report.pools.len(),
        report.workers,
        report.backend,
        report.pool_size,
        report.replay_speedup(),
        report.restart_disk_loaded
    );
    println!(
        "recovery: {} records over {} segments — serial {:.1} ms, parallel {:.1} ms \
         on {} threads ({:.1}x)\n",
        report.recovery.records,
        report.recovery.segments,
        report.recovery.serial_seconds * 1e3,
        report.recovery.parallel_seconds * 1e3,
        report.recovery.threads,
        report.recovery.speedup()
    );
    println!(
        "refine: {} chains, {} steps ({} warm) — sessions {:.1} ms vs cold re-solve \
         {:.1} ms ({:.1}x)\n",
        report.refine.chains,
        report.refine.steps,
        report.refine.warm,
        report.refine.refine_seconds_total * 1e3,
        report.refine.cold_seconds_total * 1e3,
        report.refine.speedup()
    );
    let mut service = report.to_json_value();
    if let Some(net_threads) = listen_net_threads {
        service.set("net", print_net(config, workers, pools, net_threads));
    }
    merge_sections(out_path, Json::object([("service", service)]))
}

/// Runs the TCP pass of the serve experiment (`--listen`): concurrent
/// client threads over real sockets, plus a rate-limited flood. Returns
/// the `service.net` section.
fn print_net(config: &HarnessConfig, workers: usize, pools: usize, net_threads: usize) -> Json {
    println!("== Service over TCP: concurrent connections and fair-share admission ==");
    let report = run_net(config, workers, pools, net_threads);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (label, pass) in [("cold", &report.cold), ("warm", &report.warm)] {
        for connection in &pass.connections {
            rows.push(vec![
                label.to_string(),
                connection.tenant.clone(),
                connection.submitted.to_string(),
                connection.answered.to_string(),
                connection.rejected_rate_limited.to_string(),
                format!("{:.4}", connection.wall_seconds),
                format!("{:.1}", connection.throughput()),
            ]);
        }
    }
    rows.push(vec![
        "flood".into(),
        report.flood.tenant.clone(),
        report.flood.submitted.to_string(),
        report.flood.answered.to_string(),
        report.flood.rejected_rate_limited.to_string(),
        format!("{:.4}", report.flood.wall_seconds),
        format!("{:.1}", report.flood.throughput()),
    ]);
    println!(
        "{}",
        format_table(
            &[
                "pass",
                "tenant",
                "requests",
                "answered",
                "rate_limited",
                "wall s",
                "req/s"
            ],
            &rows
        )
    );
    println!(
        "{} handler threads, {} concurrent connections; warm TCP hit rate {:.0}%, \
         admission admitted {} / rate-limited {}\n",
        report.net_threads,
        report.connections,
        report.warm.cache_hit_rate() * 100.0,
        report.admitted,
        report.rate_limited
    );
    report.to_json_value()
}

/// Removes the serve experiment's per-pool cache stores from `dir` —
/// the `pool-K/` store directories (segmented write-ahead logs), the
/// `recovery-bench/` scratch store, and any `*.jsonl`/`*.tmp` files a
/// pre-WAL run left behind — leaving any unrelated content of a
/// user-supplied directory alone.
fn clear_cache_files(dir: &std::path::Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let pool_store = name
            .strip_prefix("pool-")
            .is_some_and(|tail| !tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit()));
        if path.is_dir() && (pool_store || name == "recovery-bench") {
            std::fs::remove_dir_all(&path).ok();
        } else if path
            .extension()
            .is_some_and(|ext| ext == "jsonl" || ext == "tmp")
        {
            std::fs::remove_file(&path).ok();
        }
    }
}

/// Merges the top-level keys of `update` into the JSON document at
/// `path`, preserving every key the update does not own — so `perf` and
/// `serve` can each refresh their sections of `BENCH_core.json` without
/// clobbering the other's. An unreadable or unparsable file is replaced.
fn merge_sections(path: &str, update: Json) -> bool {
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .filter(|doc| matches!(doc, Json::Object(_)))
        .unwrap_or_else(|| Json::Object(Vec::new()));
    if let Json::Object(pairs) = update {
        for (key, value) in pairs {
            doc.set(&key, value);
        }
    }
    match std::fs::write(path, doc.to_pretty()) {
        Ok(()) => {
            println!("wrote {path}");
            true
        }
        Err(err) => {
            eprintln!("error: cannot write {path}: {err}");
            false
        }
    }
}

fn print_outliers(config: &HarnessConfig) {
    println!("== Outlier distribution ==");
    let rows = run_figure1(config);
    let dist = outlier_distribution(&rows, &PAPER_THRESHOLDS);
    let table_rows: Vec<Vec<String>> = dist
        .iter()
        .map(|r| {
            vec![
                format!("<{}", r.threshold_seconds),
                format!("{:.2}", r.percent_below),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["duration (sec)", "% of benchmarks"], &table_rows)
    );
}

fn print_error(config: &HarnessConfig) {
    println!("== Allowed-error table (Section 5.2) ==");
    let rows = run_error_table(config);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let (time, cost, candidates) = outcome_cells(&r.outcome);
            let regex = match &r.outcome {
                RunOutcome::Solved { regex, .. } => regex.clone(),
                other => other.label(),
            };
            vec![
                format!("{} %", r.allowed_error_percent),
                candidates,
                regex,
                cost,
                time,
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["allowed error", "#REs", "RE", "cost(RE)", "time (s)"],
            &table_rows
        )
    );
}
