//! Command-line argument parsing (dependency-free).

use std::error::Error;
use std::fmt;
use std::time::Duration;

use rei_core::BackendChoice;
use rei_service::{AdmissionConfig, TenantPolicy};
use rei_syntax::CostFn;

/// Options of the `synth` command.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthOptions {
    /// Comma-separated positive examples given on the command line.
    pub positives: Vec<String>,
    /// Comma-separated negative examples given on the command line.
    pub negatives: Vec<String>,
    /// Path of a `.spec` file to read examples from.
    pub spec_file: Option<String>,
    /// Paths of `.spec` files to run as one batch through a single
    /// session (`--batch`).
    pub batch_files: Vec<String>,
    /// The cost homomorphism (default uniform).
    pub costs: CostFn,
    /// Backend selection (`--backend`, with `--engine` as an alias). The
    /// accepted names come straight from `Backend::name()`, the single
    /// source of truth shared with the benchmark reports.
    pub backend: BackendChoice,
    /// Allowed error fraction (default 0).
    pub allowed_error: f64,
    /// Optional cost bound.
    pub max_cost: Option<u64>,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Rows per work-stealing claim of the thread-parallel backend
    /// (`--sched-chunk`).
    pub sched_chunk: Option<usize>,
    /// Bound on candidate rows per streamed level chunk
    /// (`--level-chunk-rows`).
    pub level_chunk_rows: Option<usize>,
    /// Also run the AlphaRegex baseline and report the comparison.
    pub compare_baseline: bool,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            positives: Vec::new(),
            negatives: Vec::new(),
            spec_file: None,
            batch_files: Vec::new(),
            costs: CostFn::UNIFORM,
            backend: BackendChoice::Sequential,
            allowed_error: 0.0,
            max_cost: None,
            time_budget: None,
            sched_chunk: None,
            level_chunk_rows: None,
            compare_baseline: false,
        }
    }
}

/// Options of the `serve` command.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Worker threads of *each* service pool.
    pub workers: usize,
    /// Number of pools behind the shard router (`--pools`). Requests are
    /// routed by their `tenant` key, falling back to the specification
    /// fingerprint.
    pub pools: usize,
    /// Bound of the job queue.
    pub queue_capacity: usize,
    /// Result-cache capacity.
    pub cache_capacity: usize,
    /// The cost homomorphism every worker session runs.
    pub costs: CostFn,
    /// Backend of every worker session.
    pub backend: BackendChoice,
    /// Allowed error fraction.
    pub allowed_error: f64,
    /// Optional cost bound.
    pub max_cost: Option<u64>,
    /// Optional per-run wall-clock budget of the worker sessions
    /// (requests can additionally carry their own `timeout_ms` deadline).
    pub time_budget: Option<Duration>,
    /// Rows per work-stealing claim of the worker sessions.
    pub sched_chunk: Option<usize>,
    /// Bound on candidate rows per streamed level chunk of the worker
    /// sessions (also the cancellation granularity of request deadlines).
    pub level_chunk_rows: Option<usize>,
    /// Directory the per-pool result caches persist to (`--cache-dir`);
    /// `None` keeps every cache in memory only.
    pub cache_dir: Option<String>,
    /// Segment size at which the persistent cache's write-ahead log
    /// rolls to a fresh file (`--cache-roll-bytes`); `None` keeps the
    /// engine default. Small values force multi-segment stores, which
    /// crash-recovery tests use to exercise parallel replay.
    pub cache_roll_bytes: Option<u64>,
    /// Answer each request as it completes, tagged by id, instead of
    /// buffering until EOF and answering in request order (`--stream`).
    pub stream: bool,
    /// Emit a final metrics JSON line after the results.
    pub metrics: bool,
    /// Listen on a TCP address (`--listen ADDR`) instead of serving
    /// stdin; `:0` picks a free port, printed as `listening on ADDR`.
    pub listen: Option<String>,
    /// Size of the TCP connection-handler pool (`--net-threads`).
    pub net_threads: usize,
    /// Fair-share admission policies (`--tenant`, `--default-tenant`);
    /// only the TCP front-end enforces them.
    pub admission: AdmissionConfig,
    /// Address of the Prometheus scrape listener (`--metrics-addr`);
    /// only the TCP front-end serves one.
    pub metrics_addr: Option<String>,
    /// Slow-request SLO threshold (`--slo-ms`): a request at or above it
    /// has its trace timeline dumped to the structured log. TCP only.
    pub slo: Option<Duration>,
    /// Structured-log threshold (`--log-level`); overrides `REI_LOG`.
    pub log_level: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 2,
            pools: 1,
            queue_capacity: 64,
            cache_capacity: 1024,
            costs: CostFn::UNIFORM,
            backend: BackendChoice::Sequential,
            allowed_error: 0.0,
            max_cost: None,
            time_budget: None,
            sched_chunk: None,
            level_chunk_rows: None,
            cache_dir: None,
            cache_roll_bytes: None,
            stream: false,
            metrics: false,
            listen: None,
            net_threads: 4,
            admission: AdmissionConfig::new(),
            metrics_addr: None,
            slo: None,
            log_level: None,
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run the synthesiser on a specification (or a batch of them).
    Synth(SynthOptions),
    /// Serve JSONL synthesis requests from stdin through a worker pool.
    Serve(ServeOptions),
    /// Run one or all tasks of the bundled AlphaRegex suite.
    Suite {
        /// Specific task number (1..=25), or `None` for all easy tasks.
        task: Option<usize>,
    },
    /// Generate a random specification and print it in `.spec` format.
    Generate {
        /// Benchmark scheme (1 or 2).
        scheme: u8,
        /// Maximal example length.
        max_len: usize,
        /// Number of positive examples.
        positives: usize,
        /// Number of negative examples.
        negatives: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Print usage information.
    Help,
}

/// An error produced while parsing the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandError(pub String);

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for CommandError {}

/// The usage string printed by `paresy help`.
pub const USAGE: &str = "\
paresy — search-based regular expression inference (Paresy, PLDI 2023)

USAGE:
  paresy synth    [--pos w1,w2,...] [--neg w1,w2,...] [--spec-file FILE]
                  [--batch FILE1,FILE2,...]
                  [--cost a,q,s,c,u]
                  [--backend cpu-sequential|cpu-thread-parallel|gpu-sim-parallel]
                  [--error FRACTION] [--max-cost N] [--timeout SECONDS]
                  [--sched-chunk ROWS] [--level-chunk-rows ROWS]
                  [--compare-baseline]
  paresy serve    [--workers N] [--pools N] [--queue N] [--cache N]
                  [--cache-dir DIR] [--cache-roll-bytes N] [--stream]
                  [--listen ADDR] [--net-threads N]
                  [--metrics-addr ADDR] [--slo-ms MS] [--log-level LEVEL]
                  [--tenant NAME=WEIGHT,RATE,BURST,MAX_INFLIGHT]
                  [--default-tenant WEIGHT,RATE,BURST,MAX_INFLIGHT]
                  [--cost a,q,s,c,u] [--backend NAME] [--error FRACTION]
                  [--max-cost N] [--timeout SECONDS]
                  [--sched-chunk ROWS] [--level-chunk-rows ROWS] [--metrics]
  paresy suite    [--task N]
  paresy generate [--scheme 1|2] [--max-len N] [--positives N] [--negatives N] [--seed N]
  paresy help

Examples are comma separated; the empty string is written 'ε'.
Backends also accept the aliases sequential/cpu, threads/thread-parallel
and parallel/gpu; the multi-threaded forms take an optional thread count
(threads:4, parallel:8). --batch runs every file through one session, so
a parallel backend's device is set up once.

--sched-chunk sets the rows per work-stealing claim of the
thread-parallel backend (smaller balances skew, larger amortises
claiming); --level-chunk-rows bounds the candidate rows a cost level
materialises at once (peak batch memory and cancellation granularity).
Both default to engine-chosen values.

serve reads one JSON request per stdin line, e.g.
  {\"id\": \"r1\", \"pos\": [\"10\", \"101\"], \"neg\": [\"\", \"0\"],
   \"priority\": 1, \"timeout_ms\": 500, \"tenant\": \"acme\"}
and emits one JSON result per request, in request order (with --stream:
as each completes, tagged by id, order not guaranteed). Identical
requests are answered by the result cache or coalesced onto one
in-flight synthesis. --pools shards requests across N pools by tenant
key (spec fingerprint when absent); --cache-dir persists each pool's
result cache to a segmented write-ahead log under DIR/pool-K/ and warms
it on the next start — even after a crash or kill -9 — so a restarted
server answers repeats without re-running syntheses.
--cache-roll-bytes sets the segment size at which that log rolls to a
fresh file (default 1 MiB; small values force multi-segment stores).
--metrics appends a final metrics JSON line (router snapshot).

--listen ADDR serves the same protocol over TCP instead of stdin
(':0' picks a free port, printed as 'listening on ADDR'). Connections
are handled by a pool of --net-threads threads; each may switch itself
between ordered and streaming answers with {\"op\": \"mode\", \"value\":
\"stream\"}, and the verbs ping/metrics/shutdown are available. --tenant
gives one tenant a fair-share admission policy (request weight, token
rate per second, bucket burst, max in-flight; rate/burst accept 'inf'),
--default-tenant replaces the all-unlimited policy for everyone else.
Over-limit requests are answered with \"status\": \"rejected\",
\"reason\": \"rate_limited\" instead of queueing. Ctrl-C or a shutdown
verb drains in-flight work, persists caches and exits cleanly.

--metrics-addr ADDR serves a Prometheus text-format scrape of the live
router metrics on a dedicated listener (':0' picks a free port, printed
as 'metrics on ADDR'); the same body is available as the 'prometheus'
verb on request connections. Every admitted request gets a trace id
(echoed as \"trace\" in its answer); the 'trace' verb
({\"op\": \"trace\", \"trace\": N}) returns the request's phase
timeline. --slo-ms MS dumps the timeline of any request whose
end-to-end latency reaches MS to the structured stderr log.
--log-level error|warn|info|debug sets that log's threshold (default
info; the REI_LOG environment variable is the process-wide default).
";

fn split_words(raw: &str) -> Vec<String> {
    raw.split(',')
        .map(|w| {
            if w == "ε" || w == "<eps>" {
                String::new()
            } else {
                w.to_string()
            }
        })
        .collect()
}

fn parse_cost(raw: &str) -> Result<CostFn, CommandError> {
    let parts: Vec<u64> = raw
        .split(',')
        .map(|p| p.trim().parse::<u64>())
        .collect::<Result<_, _>>()
        .map_err(|_| CommandError(format!("invalid cost tuple '{raw}'")))?;
    if parts.len() != 5 || parts.contains(&0) {
        return Err(CommandError(format!(
            "cost tuple must have five strictly positive components, got '{raw}'"
        )));
    }
    Ok(CostFn::new(
        parts[0], parts[1], parts[2], parts[3], parts[4],
    ))
}

/// Parses the `WEIGHT,RATE,BURST,MAX_INFLIGHT` tail of `--tenant` and
/// `--default-tenant`. `RATE` and `BURST` accept `inf` for "unlimited".
fn parse_tenant_policy(flag: &str, raw: &str) -> Result<TenantPolicy, CommandError> {
    let bad = || {
        CommandError(format!(
            "{flag} expects WEIGHT,RATE,BURST,MAX_INFLIGHT (rate/burst may be 'inf'), got '{raw}'"
        ))
    };
    let parts: Vec<&str> = raw.split(',').map(str::trim).collect();
    if parts.len() != 4 {
        return Err(bad());
    }
    let weight: u32 = parts[0].parse().ok().filter(|w| *w >= 1).ok_or_else(bad)?;
    let positive_or_inf = |part: &str| -> Option<f64> {
        if part.eq_ignore_ascii_case("inf") {
            return Some(f64::INFINITY);
        }
        part.parse::<f64>()
            .ok()
            .filter(|v| *v > 0.0 && v.is_finite())
    };
    let rate = positive_or_inf(parts[1]).ok_or_else(bad)?;
    let burst = positive_or_inf(parts[2]).ok_or_else(bad)?;
    let max_inflight: usize = parts[3].parse().ok().filter(|n| *n >= 1).ok_or_else(bad)?;
    Ok(TenantPolicy {
        weight,
        rate,
        burst,
        max_inflight,
    })
}

fn next_value<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    iter: &mut I,
) -> Result<&'a str, CommandError> {
    iter.next()
        .ok_or_else(|| CommandError(format!("{flag} expects a value")))
}

/// Parses one of the session flags `synth` and `serve` share (`--cost`,
/// `--backend`/`--engine`, `--error`, `--max-cost`, `--timeout`,
/// `--sched-chunk`, `--level-chunk-rows`) into the given slots. Returns
/// `Ok(false)` when `flag` is none of them, so the caller can try its own
/// flags or report it as unknown.
#[allow(clippy::too_many_arguments)]
fn parse_session_flag<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    iter: &mut I,
    costs: &mut CostFn,
    backend: &mut BackendChoice,
    allowed_error: &mut f64,
    max_cost: &mut Option<u64>,
    time_budget: &mut Option<Duration>,
    sched_chunk: &mut Option<usize>,
    level_chunk_rows: &mut Option<usize>,
) -> Result<bool, CommandError> {
    match flag {
        "--cost" => *costs = parse_cost(next_value(flag, iter)?)?,
        "--backend" | "--engine" => {
            *backend = next_value(flag, iter)?.parse().map_err(CommandError)?
        }
        "--error" => {
            *allowed_error = next_value(flag, iter)?
                .parse()
                .map_err(|_| CommandError("invalid --error fraction".into()))?
        }
        "--max-cost" => {
            *max_cost = Some(
                next_value(flag, iter)?
                    .parse()
                    .map_err(|_| CommandError("invalid --max-cost".into()))?,
            )
        }
        "--timeout" => {
            // try_from rejects negative, NaN, infinite and overflowing
            // values — a usage error, not a panic.
            let budget = next_value(flag, iter)?
                .parse::<f64>()
                .ok()
                .and_then(|seconds| Duration::try_from_secs_f64(seconds).ok())
                .ok_or_else(|| {
                    CommandError("--timeout expects a non-negative number of seconds".into())
                })?;
            *time_budget = Some(budget);
        }
        "--sched-chunk" => {
            *sched_chunk = Some(
                next_value(flag, iter)?
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| {
                        CommandError("--sched-chunk expects a positive row count".into())
                    })?,
            )
        }
        "--level-chunk-rows" => {
            *level_chunk_rows = Some(
                next_value(flag, iter)?
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| {
                        CommandError("--level-chunk-rows expects a positive row count".into())
                    })?,
            )
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Parses a full command line (excluding the program name).
///
/// # Errors
///
/// Returns a [`CommandError`] describing the first malformed argument.
///
/// # Example
///
/// ```
/// use paresy_cli::args::{parse_args, Command};
///
/// let cmd = parse_args(&["synth", "--pos", "10,101", "--neg", "ε,0"]).unwrap();
/// assert!(matches!(cmd, Command::Synth(_)));
/// ```
pub fn parse_args<S: AsRef<str>>(args: &[S]) -> Result<Command, CommandError> {
    let mut iter = args.iter().map(AsRef::as_ref);
    let command = match iter.next() {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(other) => other,
    };
    match command {
        "synth" => {
            let mut options = SynthOptions::default();
            while let Some(flag) = iter.next() {
                match flag {
                    "--pos" => options.positives = split_words(next_value(flag, &mut iter)?),
                    "--neg" => options.negatives = split_words(next_value(flag, &mut iter)?),
                    "--spec-file" => {
                        options.spec_file = Some(next_value(flag, &mut iter)?.to_string())
                    }
                    "--batch" => {
                        options.batch_files = next_value(flag, &mut iter)?
                            .split(',')
                            .map(str::to_string)
                            .collect()
                    }
                    "--compare-baseline" => options.compare_baseline = true,
                    other => {
                        if !parse_session_flag(
                            other,
                            &mut iter,
                            &mut options.costs,
                            &mut options.backend,
                            &mut options.allowed_error,
                            &mut options.max_cost,
                            &mut options.time_budget,
                            &mut options.sched_chunk,
                            &mut options.level_chunk_rows,
                        )? {
                            return Err(CommandError(format!("unknown flag '{other}'")));
                        }
                    }
                }
            }
            if options.spec_file.is_none()
                && options.batch_files.is_empty()
                && options.positives.is_empty()
            {
                return Err(CommandError(
                    "synth needs --pos/--neg examples, a --spec-file, or a --batch list".into(),
                ));
            }
            if !options.batch_files.is_empty()
                && (options.spec_file.is_some()
                    || !options.positives.is_empty()
                    || !options.negatives.is_empty())
            {
                return Err(CommandError(
                    "--batch cannot be combined with --pos/--neg or --spec-file \
                     (the batch files are the only specifications run)"
                        .into(),
                ));
            }
            Ok(Command::Synth(options))
        }
        "serve" => {
            let mut options = ServeOptions::default();
            let mut net_only_flag = None;
            while let Some(flag) = iter.next() {
                if matches!(
                    flag,
                    "--net-threads"
                        | "--tenant"
                        | "--default-tenant"
                        | "--metrics-addr"
                        | "--slo-ms"
                ) {
                    net_only_flag = Some(flag.to_string());
                }
                match flag {
                    "--workers" => {
                        options.workers = next_value(flag, &mut iter)?
                            .parse()
                            .ok()
                            .filter(|n| *n >= 1)
                            .ok_or_else(|| {
                                CommandError("--workers expects a positive integer".into())
                            })?
                    }
                    "--queue" => {
                        options.queue_capacity = next_value(flag, &mut iter)?
                            .parse()
                            .ok()
                            .filter(|n| *n >= 1)
                            .ok_or_else(|| {
                                CommandError("--queue expects a positive integer".into())
                            })?
                    }
                    "--cache" => {
                        options.cache_capacity = next_value(flag, &mut iter)?
                            .parse()
                            .ok()
                            .filter(|n| *n >= 1)
                            .ok_or_else(|| {
                                CommandError("--cache expects a positive integer".into())
                            })?
                    }
                    "--pools" => {
                        options.pools = next_value(flag, &mut iter)?
                            .parse()
                            .ok()
                            .filter(|n| *n >= 1)
                            .ok_or_else(|| {
                                CommandError("--pools expects a positive integer".into())
                            })?
                    }
                    "--cache-dir" => {
                        options.cache_dir = Some(next_value(flag, &mut iter)?.to_string())
                    }
                    "--cache-roll-bytes" => {
                        options.cache_roll_bytes = Some(
                            next_value(flag, &mut iter)?
                                .parse()
                                .ok()
                                .filter(|n| *n >= 1)
                                .ok_or_else(|| {
                                    CommandError(
                                        "--cache-roll-bytes expects a positive byte count".into(),
                                    )
                                })?,
                        )
                    }
                    "--stream" => options.stream = true,
                    "--metrics" => options.metrics = true,
                    "--listen" => options.listen = Some(next_value(flag, &mut iter)?.to_string()),
                    "--net-threads" => {
                        options.net_threads = next_value(flag, &mut iter)?
                            .parse()
                            .ok()
                            .filter(|n| *n >= 1)
                            .ok_or_else(|| {
                                CommandError("--net-threads expects a positive integer".into())
                            })?
                    }
                    "--tenant" => {
                        let raw = next_value(flag, &mut iter)?;
                        let (name, policy) = raw.split_once('=').ok_or_else(|| {
                            CommandError(format!(
                                "--tenant expects NAME=WEIGHT,RATE,BURST,MAX_INFLIGHT, got '{raw}'"
                            ))
                        })?;
                        if name.is_empty() {
                            return Err(CommandError("--tenant needs a non-empty NAME".into()));
                        }
                        let policy = parse_tenant_policy(flag, policy)?;
                        options.admission =
                            std::mem::take(&mut options.admission).with_tenant(name, policy);
                    }
                    "--default-tenant" => {
                        let policy = parse_tenant_policy(flag, next_value(flag, &mut iter)?)?;
                        options.admission =
                            std::mem::take(&mut options.admission).with_default_policy(policy);
                    }
                    "--metrics-addr" => {
                        options.metrics_addr = Some(next_value(flag, &mut iter)?.to_string())
                    }
                    "--slo-ms" => {
                        let slo = next_value(flag, &mut iter)?
                            .parse::<f64>()
                            .ok()
                            .filter(|ms| *ms > 0.0)
                            .and_then(|ms| Duration::try_from_secs_f64(ms / 1e3).ok())
                            .ok_or_else(|| {
                                CommandError(
                                    "--slo-ms expects a positive number of milliseconds".into(),
                                )
                            })?;
                        options.slo = Some(slo);
                    }
                    "--log-level" => {
                        let raw = next_value(flag, &mut iter)?;
                        if !matches!(raw, "error" | "warn" | "warning" | "info" | "debug") {
                            return Err(CommandError(format!(
                                "--log-level expects error|warn|info|debug, got '{raw}'"
                            )));
                        }
                        options.log_level = Some(raw.to_string());
                    }
                    other => {
                        if !parse_session_flag(
                            other,
                            &mut iter,
                            &mut options.costs,
                            &mut options.backend,
                            &mut options.allowed_error,
                            &mut options.max_cost,
                            &mut options.time_budget,
                            &mut options.sched_chunk,
                            &mut options.level_chunk_rows,
                        )? {
                            return Err(CommandError(format!("unknown flag '{other}'")));
                        }
                    }
                }
            }
            if options.listen.is_none() {
                if let Some(flag) = net_only_flag {
                    return Err(CommandError(format!(
                        "{flag} only applies to the TCP front-end; add --listen ADDR"
                    )));
                }
            }
            Ok(Command::Serve(options))
        }
        "suite" => {
            let mut task = None;
            while let Some(flag) = iter.next() {
                match flag {
                    "--task" => {
                        task = Some(
                            next_value(flag, &mut iter)?
                                .parse()
                                .map_err(|_| CommandError("invalid --task number".into()))?,
                        )
                    }
                    other => return Err(CommandError(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::Suite { task })
        }
        "generate" => {
            let (mut scheme, mut max_len, mut positives, mut negatives, mut seed) =
                (1u8, 5usize, 6usize, 6usize, 0u64);
            while let Some(flag) = iter.next() {
                let value = next_value(flag, &mut iter)?;
                match flag {
                    "--scheme" => {
                        scheme = value
                            .parse()
                            .map_err(|_| CommandError("invalid --scheme".into()))?
                    }
                    "--max-len" => {
                        max_len = value
                            .parse()
                            .map_err(|_| CommandError("invalid --max-len".into()))?
                    }
                    "--positives" => {
                        positives = value
                            .parse()
                            .map_err(|_| CommandError("invalid --positives".into()))?
                    }
                    "--negatives" => {
                        negatives = value
                            .parse()
                            .map_err(|_| CommandError("invalid --negatives".into()))?
                    }
                    "--seed" => {
                        seed = value
                            .parse()
                            .map_err(|_| CommandError("invalid --seed".into()))?
                    }
                    other => return Err(CommandError(format!("unknown flag '{other}'"))),
                }
            }
            if scheme != 1 && scheme != 2 {
                return Err(CommandError("--scheme must be 1 or 2".into()));
            }
            Ok(Command::Generate {
                scheme,
                max_len,
                positives,
                negatives,
                seed,
            })
        }
        other => Err(CommandError(format!("unknown command '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_variants() {
        assert_eq!(parse_args::<&str>(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&["help"]).unwrap(), Command::Help);
        assert_eq!(parse_args(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn synth_with_inline_examples() {
        let cmd = parse_args(&[
            "synth",
            "--pos",
            "10,101",
            "--neg",
            "ε,0",
            "--cost",
            "1,1,10,1,1",
            "--backend",
            "parallel",
            "--error",
            "0.1",
            "--timeout",
            "2.5",
        ])
        .unwrap();
        match cmd {
            Command::Synth(options) => {
                assert_eq!(options.positives, vec!["10", "101"]);
                assert_eq!(options.negatives, vec!["", "0"]);
                assert_eq!(options.costs, CostFn::new(1, 1, 10, 1, 1));
                assert_eq!(
                    options.backend,
                    BackendChoice::DeviceParallel { threads: None }
                );
                assert!((options.allowed_error - 0.1).abs() < 1e-9);
                assert_eq!(options.time_budget, Some(Duration::from_secs_f64(2.5)));
                assert!(!options.compare_baseline);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn backend_names_and_aliases() {
        for (raw, expected) in [
            ("cpu-sequential", BackendChoice::Sequential),
            ("sequential", BackendChoice::Sequential),
            ("cpu", BackendChoice::Sequential),
            ("gpu-sim-parallel", BackendChoice::parallel()),
            ("parallel", BackendChoice::parallel()),
            ("gpu", BackendChoice::parallel()),
            ("cpu-thread-parallel", BackendChoice::threaded()),
            ("threads", BackendChoice::threaded()),
            ("thread-parallel", BackendChoice::threaded()),
            (
                "threads:4",
                BackendChoice::ThreadParallel { threads: Some(4) },
            ),
            (
                "parallel:8",
                BackendChoice::DeviceParallel { threads: Some(8) },
            ),
        ] {
            let cmd = parse_args(&["synth", "--pos", "1", "--backend", raw]).unwrap();
            match cmd {
                Command::Synth(options) => assert_eq!(options.backend, expected, "{raw}"),
                other => panic!("unexpected {other:?}"),
            }
        }
        // `--engine` stays as an alias for old scripts.
        let cmd = parse_args(&["synth", "--pos", "1", "--engine", "parallel"]).unwrap();
        assert!(matches!(
            cmd,
            Command::Synth(SynthOptions {
                backend: BackendChoice::DeviceParallel { .. },
                ..
            })
        ));
        assert!(parse_args(&["synth", "--pos", "1", "--backend", "quantum"]).is_err());
    }

    #[test]
    fn synth_requires_examples_or_a_file() {
        assert!(parse_args(&["synth"]).is_err());
        assert!(parse_args(&["synth", "--spec-file", "x.spec"]).is_ok());
        assert!(parse_args(&["synth", "--batch", "a.spec,b.spec"]).is_ok());
    }

    #[test]
    fn batch_splits_file_list() {
        let cmd = parse_args(&["synth", "--batch", "a.spec,b.spec,c.spec"]).unwrap();
        match cmd {
            Command::Synth(options) => {
                assert_eq!(options.batch_files, vec!["a.spec", "b.spec", "c.spec"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_conflicts_with_inline_specs() {
        // A silent precedence would drop the user's inline examples.
        for conflicting in [
            vec!["synth", "--pos", "10", "--batch", "a.spec"],
            vec!["synth", "--neg", "0", "--batch", "a.spec"],
            vec!["synth", "--spec-file", "x.spec", "--batch", "a.spec"],
        ] {
            let err = parse_args(&conflicting).unwrap_err();
            assert!(
                err.to_string().contains("--batch"),
                "{conflicting:?}: {err}"
            );
        }
    }

    #[test]
    fn bad_cost_tuples_are_rejected() {
        assert!(parse_args(&["synth", "--pos", "1", "--cost", "1,2,3"]).is_err());
        assert!(parse_args(&["synth", "--pos", "1", "--cost", "1,0,1,1,1"]).is_err());
        assert!(parse_args(&["synth", "--pos", "1", "--cost", "a,b,c,d,e"]).is_err());
    }

    #[test]
    fn serve_flags_and_defaults() {
        assert_eq!(
            parse_args(&["serve"]).unwrap(),
            Command::Serve(ServeOptions::default())
        );
        let cmd = parse_args(&[
            "serve",
            "--workers",
            "4",
            "--pools",
            "3",
            "--queue",
            "8",
            "--cache",
            "16",
            "--cache-dir",
            "/tmp/paresy-cache",
            "--cache-roll-bytes",
            "4096",
            "--stream",
            "--backend",
            "threads:2",
            "--timeout",
            "0.5",
            "--metrics",
        ])
        .unwrap();
        match cmd {
            Command::Serve(options) => {
                assert_eq!(options.workers, 4);
                assert_eq!(options.pools, 3);
                assert_eq!(options.queue_capacity, 8);
                assert_eq!(options.cache_capacity, 16);
                assert_eq!(options.cache_dir.as_deref(), Some("/tmp/paresy-cache"));
                assert_eq!(options.cache_roll_bytes, Some(4096));
                assert!(options.stream);
                assert_eq!(
                    options.backend,
                    BackendChoice::ThreadParallel { threads: Some(2) }
                );
                assert_eq!(options.time_budget, Some(Duration::from_millis(500)));
                assert!(options.metrics);
            }
            other => panic!("unexpected {other:?}"),
        }
        for bad in [
            vec!["serve", "--workers", "0"],
            vec!["serve", "--pools", "0"],
            vec!["serve", "--pools", "some"],
            vec!["serve", "--cache-dir"],
            vec!["serve", "--cache-roll-bytes", "0"],
            vec!["serve", "--cache-roll-bytes", "big"],
            vec!["serve", "--queue", "none"],
            vec!["serve", "--cache", "0"],
            vec!["serve", "--backend", "quantum"],
            vec!["serve", "--wat"],
        ] {
            assert!(parse_args(&bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn listen_and_tenant_policies_parse() {
        let cmd = parse_args(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--net-threads",
            "8",
            "--metrics-addr",
            "127.0.0.1:0",
            "--slo-ms",
            "250",
            "--log-level",
            "debug",
            "--tenant",
            "acme=3,2.5,10,4",
            "--tenant",
            "free=1,0.5,2,1",
            "--default-tenant",
            "2,inf,inf,64",
        ])
        .unwrap();
        match cmd {
            Command::Serve(options) => {
                assert_eq!(options.listen.as_deref(), Some("127.0.0.1:0"));
                assert_eq!(options.net_threads, 8);
                assert_eq!(options.metrics_addr.as_deref(), Some("127.0.0.1:0"));
                assert_eq!(options.slo, Some(Duration::from_millis(250)));
                assert_eq!(options.log_level.as_deref(), Some("debug"));
                assert_eq!(options.admission.tenants.len(), 2);
                let (name, acme) = &options.admission.tenants[0];
                assert_eq!(name, "acme");
                assert_eq!(acme.weight, 3);
                assert!((acme.rate - 2.5).abs() < 1e-9);
                assert!((acme.burst - 10.0).abs() < 1e-9);
                assert_eq!(acme.max_inflight, 4);
                assert_eq!(options.admission.default_policy.weight, 2);
                assert!(options.admission.default_policy.rate.is_infinite());
                assert_eq!(options.admission.default_policy.max_inflight, 64);
            }
            other => panic!("unexpected {other:?}"),
        }
        for bad in [
            vec!["serve", "--listen", "127.0.0.1:0", "--net-threads", "0"],
            vec!["serve", "--listen", "x", "--tenant", "acme"],
            vec!["serve", "--listen", "x", "--tenant", "=1,1,1,1"],
            vec!["serve", "--listen", "x", "--tenant", "a=0,1,1,1"],
            vec!["serve", "--listen", "x", "--tenant", "a=1,-2,1,1"],
            vec!["serve", "--listen", "x", "--tenant", "a=1,1,1"],
            vec!["serve", "--listen", "x", "--default-tenant", "1,1,1,0"],
            vec!["serve", "--listen", "x", "--default-tenant", "1,nan,1,1"],
            vec!["serve", "--listen", "x", "--slo-ms", "0"],
            vec!["serve", "--listen", "x", "--slo-ms", "never"],
            vec!["serve", "--listen", "x", "--log-level", "loud"],
        ] {
            assert!(parse_args(&bad).is_err(), "{bad:?}");
        }
        // The net-only flags demand --listen so they are never silently
        // ignored on a stdin server.
        for net_only in [
            vec!["serve", "--tenant", "acme=1,1,1,1"],
            vec!["serve", "--net-threads", "2"],
            vec!["serve", "--metrics-addr", "127.0.0.1:0"],
            vec!["serve", "--slo-ms", "100"],
        ] {
            let err = parse_args(&net_only).unwrap_err();
            assert!(err.to_string().contains("--listen"), "{net_only:?}: {err}");
        }
        // --log-level is not net-only: the structured log also carries
        // stdin-server diagnostics.
        assert!(parse_args(&["serve", "--log-level", "warn"]).is_ok());
    }

    #[test]
    fn scheduler_knobs_parse_on_both_commands() {
        let cmd = parse_args(&[
            "synth",
            "--pos",
            "1",
            "--sched-chunk",
            "16",
            "--level-chunk-rows",
            "512",
        ])
        .unwrap();
        match cmd {
            Command::Synth(options) => {
                assert_eq!(options.sched_chunk, Some(16));
                assert_eq!(options.level_chunk_rows, Some(512));
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse_args(&["serve", "--sched-chunk", "8", "--level-chunk-rows", "64"]).unwrap();
        match cmd {
            Command::Serve(options) => {
                assert_eq!(options.sched_chunk, Some(8));
                assert_eq!(options.level_chunk_rows, Some(64));
            }
            other => panic!("unexpected {other:?}"),
        }
        for bad in [
            vec!["synth", "--pos", "1", "--sched-chunk", "0"],
            vec!["synth", "--pos", "1", "--sched-chunk", "many"],
            vec!["serve", "--level-chunk-rows", "0"],
            vec!["serve", "--level-chunk-rows", "-2"],
        ] {
            let err = parse_args(&bad).unwrap_err();
            assert!(err.to_string().contains("positive row count"), "{bad:?}");
        }
    }

    #[test]
    fn hostile_timeouts_are_usage_errors_not_panics() {
        for command in ["synth", "serve"] {
            for bad in ["-1", "nan", "inf", "1e30", "zero"] {
                let args = match command {
                    "synth" => vec!["synth", "--pos", "1", "--timeout", bad],
                    _ => vec!["serve", "--timeout", bad],
                };
                let err = parse_args(&args).unwrap_err();
                assert!(
                    err.to_string().contains("--timeout"),
                    "{command} {bad}: {err}"
                );
            }
        }
    }

    #[test]
    fn suite_and_generate() {
        assert_eq!(
            parse_args(&["suite"]).unwrap(),
            Command::Suite { task: None }
        );
        assert_eq!(
            parse_args(&["suite", "--task", "7"]).unwrap(),
            Command::Suite { task: Some(7) }
        );
        let generate = parse_args(&[
            "generate",
            "--scheme",
            "2",
            "--max-len",
            "6",
            "--positives",
            "8",
            "--negatives",
            "9",
            "--seed",
            "42",
        ])
        .unwrap();
        assert_eq!(
            generate,
            Command::Generate {
                scheme: 2,
                max_len: 6,
                positives: 8,
                negatives: 9,
                seed: 42
            }
        );
        assert!(parse_args(&["generate", "--scheme", "3"]).is_err());
    }

    #[test]
    fn unknown_commands_and_flags_are_rejected() {
        assert!(parse_args(&["frobnicate"]).is_err());
        assert!(parse_args(&["synth", "--pos", "1", "--wat"]).is_err());
        assert!(parse_args(&["suite", "--task"]).is_err());
    }
}
