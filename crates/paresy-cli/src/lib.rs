//! Library backing the `paresy` command-line tool.
//!
//! The CLI wraps the synthesiser for interactive use:
//!
//! ```text
//! paresy synth --pos 10,101,100 --neg ,0,1
//! paresy synth --spec-file examples.spec --cost 1,1,10,1,1 --backend parallel
//! paresy synth --batch a.spec,b.spec,c.spec --backend gpu-sim-parallel
//! paresy serve --workers 4 --metrics < requests.jsonl
//! paresy suite --task 7
//! paresy generate --scheme 2 --max-len 6 --positives 8 --negatives 8 --seed 7
//! ```
//!
//! Specification files use one example per line: a `+` or `-` sign, a
//! space, and the example string (the empty string is written as `ε` or
//! left blank). Lines starting with `#` are comments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod serve;
pub mod specfile;

pub use args::{Command, CommandError, ServeOptions, SynthOptions};
pub use rei_core::BackendChoice;
pub use specfile::{parse_spec_file, render_spec_file, SpecFileError};
