//! Execution of the parsed CLI commands; returns the report as a string so
//! that behaviour is unit-testable without spawning the binary.

use std::fmt::Write as _;

use alpharegex::{AlphaRegex, AlphaRegexConfig};
use rei_bench::generator::{generate_type1, generate_type2, Type1Params, Type2Params};
use rei_bench::suite::{alpharegex_suite, easy_tasks};
use rei_core::{SynthConfig, SynthSession, SynthesisError, SynthesisResult};
use rei_lang::{Alphabet, Spec};

use crate::args::{Command, SynthOptions, USAGE};
use crate::serve::{run_serve_listen, run_serve_on, run_serve_stream};
use crate::specfile::{parse_spec_file, render_spec_file};

/// Runs a parsed command and returns the text to print.
///
/// # Errors
///
/// Returns a human-readable message when the command cannot be executed
/// (unreadable spec file, contradictory examples, invalid configuration,
/// failed synthesis, …).
pub fn run_command(command: &Command) -> Result<String, String> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Synth(options) => run_synth(options),
        Command::Serve(options) => {
            // The serve command is the one consumer of stdin; tests drive
            // `run_serve_on`/`run_serve_stream` with in-memory input.
            if options.listen.is_some() {
                // TCP mode: serves sockets instead of stdin and writes
                // its own lines ("listening on ADDR", then — with
                // --metrics — the final snapshot) as they happen.
                run_serve_listen(options, std::io::stdout().lock())?;
                Ok(String::new())
            } else if options.stream {
                // Streaming mode writes (and flushes) each result line
                // itself, as its request completes.
                // `Stdin` (unlike `StdinLock`) is `Send`, which the
                // reader thread inside `run_serve_stream` needs.
                run_serve_stream(
                    options,
                    std::io::BufReader::new(std::io::stdin()),
                    std::io::stdout().lock(),
                )?;
                Ok(String::new())
            } else {
                let mut input = String::new();
                std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut input)
                    .map_err(|err| format!("cannot read stdin: {err}"))?;
                run_serve_on(options, &input)
            }
        }
        Command::Suite { task } => run_suite(*task),
        Command::Generate {
            scheme,
            max_len,
            positives,
            negatives,
            seed,
        } => run_generate(*scheme, *max_len, *positives, *negatives, *seed),
    }
}

fn load_spec_file(path: &str) -> Result<Spec, String> {
    let contents = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_spec_file(&contents).map_err(|e| e.to_string())
}

fn load_spec(options: &SynthOptions) -> Result<Spec, String> {
    if let Some(path) = &options.spec_file {
        return load_spec_file(path);
    }
    Spec::from_strs(
        options.positives.iter().map(String::as_str),
        options.negatives.iter().map(String::as_str),
    )
    .map_err(|e| e.to_string())
}

fn describe_error(err: &SynthesisError) -> String {
    match err {
        // A bad configuration is the user's flags, not a failed search:
        // surface it as a usage error with a pointer to the help text.
        SynthesisError::InvalidConfig { .. } => {
            format!("usage error: {err}\nrun 'paresy help' for the accepted flags")
        }
        _ => format!("synthesis failed: {err}"),
    }
}

/// Builds the session configuration the `synth` flags describe.
fn session_config(options: &SynthOptions) -> SynthConfig {
    let mut config = SynthConfig::new(options.costs)
        .with_backend(options.backend)
        .with_allowed_error(options.allowed_error);
    if let Some(max_cost) = options.max_cost {
        config = config.with_max_cost(max_cost);
    }
    if let Some(budget) = options.time_budget {
        config = config.with_time_budget(budget);
    }
    if let Some(rows) = options.sched_chunk {
        config = config.with_sched_chunk(rows);
    }
    if let Some(rows) = options.level_chunk_rows {
        config = config.with_level_chunk_rows(rows);
    }
    config
}

fn render_result(out: &mut String, options: &SynthOptions, spec: &Spec, result: &SynthesisResult) {
    let _ = writeln!(out, "specification : {spec}");
    let _ = writeln!(out, "cost function : {}", options.costs);
    let _ = writeln!(out, "regex         : {}", result.regex);
    let _ = writeln!(out, "cost          : {}", result.cost);
    let _ = writeln!(out, "candidates    : {}", result.stats.candidates_generated);
    let _ = writeln!(out, "unique langs  : {}", result.stats.unique_languages);
    let _ = writeln!(out, "#ic(P∪N)      : {}", result.stats.infix_closure_size);
    let _ = writeln!(out, "elapsed       : {:.3?}", result.stats.elapsed);
    if result.stats.used_on_the_fly {
        let _ = writeln!(
            out,
            "note          : memory budget exhausted, OnTheFly mode was used"
        );
    }
}

fn run_synth(options: &SynthOptions) -> Result<String, String> {
    let mut session = SynthSession::new(session_config(options)).map_err(|e| describe_error(&e))?;

    if !options.batch_files.is_empty() {
        return run_synth_batch(options, &mut session);
    }

    let spec = load_spec(options)?;
    let result = session.run(&spec).map_err(|e| describe_error(&e))?;

    let mut out = String::new();
    let _ = writeln!(out, "backend       : {}", session.backend_name());
    render_result(&mut out, options, &spec, &result);

    if options.compare_baseline {
        match AlphaRegex::with_config(AlphaRegexConfig {
            costs: options.costs,
            ..AlphaRegexConfig::default()
        })
        .run(&spec)
        {
            Ok(alpha) => {
                let _ = writeln!(
                    out,
                    "alpharegex    : {} (cost {}, {} REs checked)",
                    alpha.regex, alpha.cost, alpha.res_checked
                );
            }
            Err(err) => {
                let _ = writeln!(out, "alpharegex    : failed ({err})");
            }
        }
    }
    Ok(out)
}

/// Runs every `--batch` file through the one warm session and reports each
/// outcome plus a session summary. Per-spec failures are reported inline
/// rather than aborting the batch.
fn run_synth_batch(options: &SynthOptions, session: &mut SynthSession) -> Result<String, String> {
    let mut specs = Vec::with_capacity(options.batch_files.len());
    for path in &options.batch_files {
        specs.push(load_spec_file(path)?);
    }

    let results = session.run_batch(&specs);
    let mut out = String::new();
    let _ = writeln!(out, "backend       : {}", session.backend_name());
    for ((path, spec), outcome) in options.batch_files.iter().zip(&specs).zip(&results) {
        let _ = writeln!(out, "--- {path}");
        match outcome {
            Ok(result) => render_result(&mut out, options, spec, result),
            // The session validated its config at creation, so any per-spec
            // failure here is a search outcome worth reporting inline.
            Err(err) => {
                let _ = writeln!(out, "specification : {spec}");
                let _ = writeln!(out, "outcome       : {err}");
            }
        }
    }
    let stats = session.stats();
    let _ = writeln!(
        out,
        "=== batch: {} specs, {} solved, {} failed, {:.3?} total",
        stats.runs, stats.solved, stats.failed, stats.elapsed
    );
    if let Some(device) = session.device() {
        let device_stats = device.stats();
        let _ = writeln!(
            out,
            "    device: {} kernel launches, {} items, {} hash inserts (1 device for the whole batch)",
            device_stats.kernel_launches, device_stats.items_executed, device_stats.hash_insertions
        );
    }
    Ok(out)
}

fn run_suite(task_number: Option<usize>) -> Result<String, String> {
    let tasks = match task_number {
        Some(number) => {
            let task = alpharegex_suite()
                .into_iter()
                .find(|t| t.number == number)
                .ok_or_else(|| format!("no task number {number} (expected 1..=25)"))?;
            vec![task]
        }
        None => easy_tasks(9),
    };
    // One session serves every task of the suite.
    let mut session = SynthSession::new(SynthConfig::new(rei_syntax::CostFn::UNIFORM))
        .map_err(|e| describe_error(&e))?;
    let mut out = String::new();
    for task in tasks {
        let spec = task.spec();
        let result = session.run(&spec).map_err(|e| describe_error(&e))?;
        let _ = writeln!(
            out,
            "{}  {:<45} {:<18} cost {:>3}  ({} candidates)",
            task.name(),
            task.description,
            result.regex.to_string(),
            result.cost,
            result.stats.candidates_generated
        );
    }
    Ok(out)
}

fn run_generate(
    scheme: u8,
    max_len: usize,
    positives: usize,
    negatives: usize,
    seed: u64,
) -> Result<String, String> {
    let alphabet = Alphabet::binary();
    let spec = match scheme {
        1 => generate_type1(
            &Type1Params { alphabet, max_len, positives, negatives },
            seed,
        ),
        2 => generate_type2(
            &Type2Params { alphabet, max_len, positives, negatives },
            seed,
        ),
        _ => None,
    }
    .ok_or_else(|| {
        format!(
            "cannot generate {positives}+{negatives} distinct examples of length ≤ {max_len} over {{0,1}}"
        )
    })?;
    Ok(render_spec_file(&spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    #[test]
    fn synth_command_end_to_end() {
        let cmd = parse_args(&["synth", "--pos", "10,101,100", "--neg", "ε,0,1"]).unwrap();
        let report = run_command(&cmd).unwrap();
        assert!(report.contains("regex"), "{report}");
        assert!(report.contains("cost"), "{report}");
        assert!(
            report.contains("backend       : cpu-sequential"),
            "{report}"
        );
    }

    #[test]
    fn synth_on_the_parallel_backend_reports_its_name() {
        let cmd = parse_args(&[
            "synth",
            "--pos",
            "10,101,100",
            "--neg",
            "ε,0,1",
            "--backend",
            "parallel:2",
        ])
        .unwrap();
        let report = run_command(&cmd).unwrap();
        assert!(
            report.contains("backend       : gpu-sim-parallel"),
            "{report}"
        );
    }

    #[test]
    fn invalid_error_fraction_is_a_usage_error() {
        let cmd = parse_args(&["synth", "--pos", "1", "--neg", "0", "--error", "1.5"]).unwrap();
        let err = run_command(&cmd).unwrap_err();
        assert!(err.contains("usage error"), "{err}");
        assert!(err.contains("invalid configuration"), "{err}");
        assert!(err.contains("paresy help"), "{err}");
    }

    #[test]
    fn batch_runs_several_spec_files_through_one_session() {
        let dir = std::env::temp_dir().join(format!("paresy-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for (name, spec) in [
            ("a.spec", Spec::from_strs(["0", "00"], ["1", "10"]).unwrap()),
            (
                "b.spec",
                Spec::from_strs(["1", "11", "111"], ["", "0", "10"]).unwrap(),
            ),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, render_spec_file(&spec)).unwrap();
            paths.push(path.to_string_lossy().into_owned());
        }
        let cmd = parse_args(&[
            "synth",
            "--batch",
            &paths.join(","),
            "--backend",
            "parallel:2",
        ])
        .unwrap();
        let report = run_command(&cmd).unwrap();
        assert!(report.contains("2 specs, 2 solved, 0 failed"), "{report}");
        assert!(report.contains("1 device for the whole batch"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn synth_with_baseline_comparison() {
        let cmd = parse_args(&[
            "synth",
            "--pos",
            "0,00,000",
            "--neg",
            "1,01,10",
            "--compare-baseline",
        ])
        .unwrap();
        let report = run_command(&cmd).unwrap();
        assert!(report.contains("alpharegex"), "{report}");
    }

    #[test]
    fn suite_command_runs_a_single_task() {
        let cmd = parse_args(&["suite", "--task", "20"]).unwrap();
        let report = run_command(&cmd).unwrap();
        assert!(report.contains("no20"), "{report}");
        assert!(run_command(&parse_args(&["suite", "--task", "99"]).unwrap()).is_err());
    }

    #[test]
    fn generate_round_trips_through_the_spec_parser() {
        let cmd = parse_args(&[
            "generate",
            "--scheme",
            "2",
            "--max-len",
            "4",
            "--positives",
            "5",
            "--negatives",
            "5",
            "--seed",
            "3",
        ])
        .unwrap();
        let rendered = run_command(&cmd).unwrap();
        let spec = parse_spec_file(&rendered).unwrap();
        assert_eq!(spec.num_positive(), 5);
        assert_eq!(spec.num_negative(), 5);
    }

    #[test]
    fn missing_spec_file_is_reported() {
        let cmd = parse_args(&["synth", "--spec-file", "/nonexistent/examples.spec"]).unwrap();
        let err = run_command(&cmd).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
        let cmd = parse_args(&["synth", "--batch", "/nonexistent/a.spec"]).unwrap();
        assert!(run_command(&cmd).unwrap_err().contains("cannot read"));
    }

    #[test]
    fn help_contains_usage() {
        let report = run_command(&Command::Help).unwrap();
        assert!(report.contains("USAGE"));
        assert!(report.contains("--backend"));
        assert!(report.contains("--batch"));
    }
}
