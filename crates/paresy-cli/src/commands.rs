//! Execution of the parsed CLI commands; returns the report as a string so
//! that behaviour is unit-testable without spawning the binary.

use std::fmt::Write as _;

use alpharegex::{AlphaRegex, AlphaRegexConfig};
use rei_bench::generator::{generate_type1, generate_type2, Type1Params, Type2Params};
use rei_bench::suite::{alpharegex_suite, easy_tasks};
use rei_core::{Engine, SynthesisError, Synthesizer};
use rei_lang::{Alphabet, Spec};

use crate::args::{Command, EngineChoice, SynthOptions, USAGE};
use crate::specfile::{parse_spec_file, render_spec_file};

/// Runs a parsed command and returns the text to print.
///
/// # Errors
///
/// Returns a human-readable message when the command cannot be executed
/// (unreadable spec file, contradictory examples, failed synthesis, …).
pub fn run_command(command: &Command) -> Result<String, String> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Synth(options) => run_synth(options),
        Command::Suite { task } => run_suite(*task),
        Command::Generate { scheme, max_len, positives, negatives, seed } => {
            run_generate(*scheme, *max_len, *positives, *negatives, *seed)
        }
    }
}

fn load_spec(options: &SynthOptions) -> Result<Spec, String> {
    if let Some(path) = &options.spec_file {
        let contents =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        return parse_spec_file(&contents).map_err(|e| e.to_string());
    }
    Spec::from_strs(
        options.positives.iter().map(String::as_str),
        options.negatives.iter().map(String::as_str),
    )
    .map_err(|e| e.to_string())
}

fn describe_error(err: &SynthesisError) -> String {
    format!("synthesis failed: {err}")
}

fn run_synth(options: &SynthOptions) -> Result<String, String> {
    let spec = load_spec(options)?;
    let engine = match options.engine {
        EngineChoice::Sequential => Engine::Sequential,
        EngineChoice::Parallel => Engine::parallel(),
    };
    let mut synthesizer = Synthesizer::new(options.costs)
        .with_engine(engine)
        .with_allowed_error(options.allowed_error);
    if let Some(max_cost) = options.max_cost {
        synthesizer = synthesizer.with_max_cost(max_cost);
    }
    if let Some(budget) = options.time_budget {
        synthesizer = synthesizer.with_time_budget(budget);
    }
    let result = synthesizer.run(&spec).map_err(|e| describe_error(&e))?;

    let mut out = String::new();
    let _ = writeln!(out, "specification : {spec}");
    let _ = writeln!(out, "cost function : {}", options.costs);
    let _ = writeln!(out, "regex         : {}", result.regex);
    let _ = writeln!(out, "cost          : {}", result.cost);
    let _ = writeln!(out, "candidates    : {}", result.stats.candidates_generated);
    let _ = writeln!(out, "unique langs  : {}", result.stats.unique_languages);
    let _ = writeln!(out, "#ic(P∪N)      : {}", result.stats.infix_closure_size);
    let _ = writeln!(out, "elapsed       : {:.3?}", result.stats.elapsed);
    if result.stats.used_on_the_fly {
        let _ = writeln!(out, "note          : memory budget exhausted, OnTheFly mode was used");
    }

    if options.compare_baseline {
        match AlphaRegex::with_config(AlphaRegexConfig {
            costs: options.costs,
            ..AlphaRegexConfig::default()
        })
        .run(&spec)
        {
            Ok(alpha) => {
                let _ = writeln!(
                    out,
                    "alpharegex    : {} (cost {}, {} REs checked)",
                    alpha.regex, alpha.cost, alpha.res_checked
                );
            }
            Err(err) => {
                let _ = writeln!(out, "alpharegex    : failed ({err})");
            }
        }
    }
    Ok(out)
}

fn run_suite(task_number: Option<usize>) -> Result<String, String> {
    let tasks = match task_number {
        Some(number) => {
            let task = alpharegex_suite()
                .into_iter()
                .find(|t| t.number == number)
                .ok_or_else(|| format!("no task number {number} (expected 1..=25)"))?;
            vec![task]
        }
        None => easy_tasks(9),
    };
    let mut out = String::new();
    for task in tasks {
        let spec = task.spec();
        let result = Synthesizer::new(rei_syntax::CostFn::UNIFORM)
            .run(&spec)
            .map_err(|e| describe_error(&e))?;
        let _ = writeln!(
            out,
            "{}  {:<45} {:<18} cost {:>3}  ({} candidates)",
            task.name(),
            task.description,
            result.regex.to_string(),
            result.cost,
            result.stats.candidates_generated
        );
    }
    Ok(out)
}

fn run_generate(
    scheme: u8,
    max_len: usize,
    positives: usize,
    negatives: usize,
    seed: u64,
) -> Result<String, String> {
    let alphabet = Alphabet::binary();
    let spec = match scheme {
        1 => generate_type1(
            &Type1Params { alphabet, max_len, positives, negatives },
            seed,
        ),
        2 => generate_type2(
            &Type2Params { alphabet, max_len, positives, negatives },
            seed,
        ),
        _ => None,
    }
    .ok_or_else(|| {
        format!(
            "cannot generate {positives}+{negatives} distinct examples of length ≤ {max_len} over {{0,1}}"
        )
    })?;
    Ok(render_spec_file(&spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    #[test]
    fn synth_command_end_to_end() {
        let cmd = parse_args(&["synth", "--pos", "10,101,100", "--neg", "ε,0,1"]).unwrap();
        let report = run_command(&cmd).unwrap();
        assert!(report.contains("regex"), "{report}");
        assert!(report.contains("cost"), "{report}");
    }

    #[test]
    fn synth_with_baseline_comparison() {
        let cmd = parse_args(&[
            "synth", "--pos", "0,00,000", "--neg", "1,01,10", "--compare-baseline",
        ])
        .unwrap();
        let report = run_command(&cmd).unwrap();
        assert!(report.contains("alpharegex"), "{report}");
    }

    #[test]
    fn suite_command_runs_a_single_task() {
        let cmd = parse_args(&["suite", "--task", "20"]).unwrap();
        let report = run_command(&cmd).unwrap();
        assert!(report.contains("no20"), "{report}");
        assert!(run_command(&parse_args(&["suite", "--task", "99"]).unwrap()).is_err());
    }

    #[test]
    fn generate_round_trips_through_the_spec_parser() {
        let cmd = parse_args(&[
            "generate", "--scheme", "2", "--max-len", "4", "--positives", "5", "--negatives",
            "5", "--seed", "3",
        ])
        .unwrap();
        let rendered = run_command(&cmd).unwrap();
        let spec = parse_spec_file(&rendered).unwrap();
        assert_eq!(spec.num_positive(), 5);
        assert_eq!(spec.num_negative(), 5);
    }

    #[test]
    fn missing_spec_file_is_reported() {
        let cmd = parse_args(&["synth", "--spec-file", "/nonexistent/examples.spec"]).unwrap();
        let err = run_command(&cmd).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn help_contains_usage() {
        let report = run_command(&Command::Help).unwrap();
        assert!(report.contains("USAGE"));
    }
}
