//! The `paresy` command-line tool.

use std::process::ExitCode;

use paresy_cli::args::parse_args;
use paresy_cli::commands::run_command;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(command) => command,
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("run 'paresy help' for usage");
            return ExitCode::FAILURE;
        }
    };
    match run_command(&command) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
