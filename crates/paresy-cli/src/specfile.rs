//! The `.spec` example-file format.
//!
//! One example per line: a `+` (positive) or `-` (negative) marker, optional
//! whitespace, and the example string. The empty string can be written as
//! `ε`, `<eps>` or simply left out after the marker. `#` starts a comment;
//! blank lines are ignored.
//!
//! ```text
//! # strings that start with 10
//! + 10
//! + 101
//! + 1001
//! - ε
//! - 0
//! - 01
//! ```

use std::error::Error;
use std::fmt;

use rei_lang::{Spec, SpecError, Word};

/// An error produced while parsing a specification file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecFileError {
    /// A line did not start with `+`, `-` or `#`.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The resulting positive and negative sets overlap.
    Contradictory(SpecError),
}

impl fmt::Display for SpecFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecFileError::BadLine { line, content } => {
                write!(
                    f,
                    "line {line}: expected '+ <word>' or '- <word>', found '{content}'"
                )
            }
            SpecFileError::Contradictory(err) => write!(f, "{err}"),
        }
    }
}

impl Error for SpecFileError {}

impl From<SpecError> for SpecFileError {
    fn from(err: SpecError) -> Self {
        SpecFileError::Contradictory(err)
    }
}

fn parse_word(raw: &str) -> Word {
    let trimmed = raw.trim();
    if trimmed.is_empty() || trimmed == "ε" || trimmed == "<eps>" {
        Word::epsilon()
    } else {
        Word::new(trimmed.chars())
    }
}

/// Parses the textual example-file format into a [`Spec`].
///
/// # Errors
///
/// Returns [`SpecFileError::BadLine`] for malformed lines and
/// [`SpecFileError::Contradictory`] if a word is marked both positive and
/// negative.
///
/// # Example
///
/// ```
/// use paresy_cli::parse_spec_file;
///
/// let spec = parse_spec_file("+ 10\n+ 101\n- ε\n- 0\n").unwrap();
/// assert_eq!(spec.num_positive(), 2);
/// assert_eq!(spec.num_negative(), 2);
/// ```
pub fn parse_spec_file(contents: &str) -> Result<Spec, SpecFileError> {
    let mut positive = Vec::new();
    let mut negative = Vec::new();
    for (index, raw_line) in contents.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.split_at(1) {
            ("+", rest) => positive.push(parse_word(rest)),
            ("-", rest) => negative.push(parse_word(rest)),
            _ => {
                return Err(SpecFileError::BadLine {
                    line: index + 1,
                    content: raw_line.to_string(),
                })
            }
        }
    }
    Ok(Spec::new(positive, negative)?)
}

/// Renders a [`Spec`] in the example-file format (the inverse of
/// [`parse_spec_file`]).
pub fn render_spec_file(spec: &Spec) -> String {
    let mut out = String::new();
    for word in spec.positive() {
        out.push_str(&format!("+ {word}\n"));
    }
    for word in spec.negative() {
        out.push_str(&format!("- {word}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_markers_comments_and_epsilon() {
        let text = "# a comment\n\n+ 10\n+ε\n- 0\n-  01  \n";
        let spec = parse_spec_file(text).unwrap();
        assert_eq!(spec.num_positive(), 2);
        assert_eq!(spec.num_negative(), 2);
        assert!(spec.positive().contains(&Word::epsilon()));
        assert!(spec.negative().contains(&Word::from("01")));
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = parse_spec_file("+ 10\noops\n").unwrap_err();
        assert_eq!(
            err,
            SpecFileError::BadLine {
                line: 2,
                content: "oops".to_string()
            }
        );
    }

    #[test]
    fn rejects_contradictions() {
        let err = parse_spec_file("+ 10\n- 10\n").unwrap_err();
        assert!(matches!(err, SpecFileError::Contradictory(_)));
    }

    #[test]
    fn render_parse_round_trip() {
        let spec = Spec::from_strs(["", "10", "abc"], ["0", "ba"]).unwrap();
        let rendered = render_spec_file(&spec);
        let reparsed = parse_spec_file(&rendered).unwrap();
        assert_eq!(reparsed, spec);
    }

    proptest! {
        /// Rendering then parsing is the identity for random specifications
        /// (over characters that do not collide with the format markers).
        #[test]
        fn round_trip_random_specs(
            pos in proptest::collection::btree_set("[01ab]{0,6}", 0..6),
            neg in proptest::collection::btree_set("[01ab]{0,6}", 0..6),
        ) {
            let neg: std::collections::BTreeSet<_> = neg.difference(&pos).cloned().collect();
            let spec = Spec::from_strs(
                pos.iter().map(String::as_str),
                neg.iter().map(String::as_str),
            ).unwrap();
            let reparsed = parse_spec_file(&render_spec_file(&spec)).unwrap();
            prop_assert_eq!(reparsed, spec);
        }
    }
}
