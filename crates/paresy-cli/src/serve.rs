//! The `serve` command: JSONL requests on stdin, JSONL results out.
//!
//! Each input line is one JSON request object:
//!
//! ```json
//! {"id": "r1", "pos": ["10", "101"], "neg": ["", "0"],
//!  "priority": 1, "timeout_ms": 500, "tenant": "acme"}
//! ```
//!
//! * `pos` (required) / `neg` (optional) — example strings; `""`, `"ε"`
//!   and `"<eps>"` all denote the empty word.
//! * `id` (optional) — echoed back verbatim; defaults to the 1-based
//!   line number.
//! * `priority` (optional) — higher runs earlier.
//! * `timeout_ms` (optional) — a per-request deadline; an expired request
//!   is answered with `"status": "cancelled"` without occupying a worker.
//! * `tenant` (optional) — the shard-routing key: all requests of a
//!   tenant land on the same pool of the `--pools` router. Requests
//!   without one are routed by the specification's fingerprint.
//!
//! Every request is submitted to a [`ShardRouter`] of `--pools`
//! [`SynthService`](rei_service::SynthService) pools as it is read
//! (identical requests are cache-served or coalesced), and one result
//! line is emitted per request:
//!
//! ```json
//! {"id": "r1", "status": "solved", "regex": "10(0+1)*", "cost": 8,
//!  "source": "fresh", "wait_ms": 0.1, "run_ms": 2.5, "candidates": 117}
//! ```
//!
//! By default results come in request order after EOF. With `--stream`
//! each result is written (and flushed) as its request completes —
//! tagged by id, order no longer guaranteed — which is what long-lived
//! clients pipelining requests want.
//!
//! With `--cache-dir DIR` each pool's result cache persists to a
//! segmented write-ahead log under `DIR/pool-K/`: completed results are
//! appended as they happen (rolling to a fresh segment every
//! `--cache-roll-bytes`) and warm the cache of the next `paresy serve`
//! over the same directory — even after a crash or `kill -9` — so a
//! restarted server answers repeats with `"source": "cache"` without
//! re-running any synthesis.
//!
//! Failed searches report `"status"` of `timeout` / `oom` / `not-found` /
//! `cancelled`; malformed lines report `bad-request` with an `error`
//! message (and are not submitted). Blank lines are skipped.
//!
//! Control verbs work on stdin too — `{"op": "hello"}` answers the
//! protocol handshake, `{"op": "session.open", "name": "s1"}` opens a
//! refinement session and `{"verb": "refine", "session": "s1", "pos":
//! [...]}` re-solves a strengthened specification warm through it (see
//! [`rei_net::protocol`]); verbs execute in input order, before any
//! later request is submitted. Every output line carries `"proto":`
//! [`PROTO_VERSION`](rei_net::protocol::PROTO_VERSION).
//!
//! With `--listen ADDR` the same protocol is served over TCP instead of
//! stdin (see [`rei_net`]): many concurrent connections, per-connection
//! ordered/streaming answer modes, control verbs, per-tenant fair-share
//! admission (`--tenant`, `--default-tenant`) and a graceful drain on
//! Ctrl-C, SIGTERM or the `shutdown` verb. The wire format itself
//! lives in [`rei_net::protocol`], shared between both modes.

use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::time::Duration;

use rei_core::SynthConfig;
use rei_net::protocol::{
    bad_request_line, hello_line, parse_line, rejected_line, response_line, stamped, verb_ok_line,
    Input, Verb,
};
use rei_net::{install_shutdown_signals, session_verb_line, NetConfig, NetServer};
use rei_service::json::Json;
use rei_service::{JobHandle, RouterConfig, ServiceConfig, ServiceError, ShardRouter, WalOptions};

use crate::args::ServeOptions;

/// Applies `--log-level` to the process-wide structured log threshold.
/// The flag wins over the `REI_LOG` environment default.
fn apply_log_level(options: &ServeOptions) {
    if let Some(name) = &options.log_level {
        if let Some(level) = rei_obs::log::parse_level(name) {
            rei_obs::log::set_level(level);
        }
    }
}

/// Builds the pool-wide synthesis configuration the flags describe.
fn synth_config(options: &ServeOptions) -> SynthConfig {
    let mut config = SynthConfig::new(options.costs)
        .with_backend(options.backend)
        .with_allowed_error(options.allowed_error);
    if let Some(max_cost) = options.max_cost {
        config = config.with_max_cost(max_cost);
    }
    if let Some(budget) = options.time_budget {
        config = config.with_time_budget(budget);
    }
    if let Some(rows) = options.sched_chunk {
        config = config.with_sched_chunk(rows);
    }
    if let Some(rows) = options.level_chunk_rows {
        config = config.with_level_chunk_rows(rows);
    }
    config
}

/// Builds the shard router the flags describe: `--pools` identical pools
/// of `--workers` workers each, persistent under `--cache-dir` when set.
fn build_router(options: &ServeOptions) -> Result<ShardRouter, String> {
    let mut service = ServiceConfig::new(options.workers)
        .with_queue_capacity(options.queue_capacity)
        .with_cache_capacity(options.cache_capacity)
        .with_synth(synth_config(options));
    if let Some(roll_bytes) = options.cache_roll_bytes {
        service = service.with_wal(WalOptions {
            roll_bytes,
            ..WalOptions::default()
        });
    }
    let mut config = RouterConfig::identical(options.pools, service);
    if let Some(dir) = &options.cache_dir {
        config = config.with_cache_dir(dir);
    }
    ShardRouter::start(config).map_err(|err| err.to_string())
}

/// Answers a control verb in stdin serve mode. Only the verbs that make
/// sense without a long-lived connection are available: `ping`, `hello`,
/// `metrics` and the session verbs. Connection-scoped verbs (`mode`,
/// `shutdown`, `trace`, `prometheus`) belong to `--listen` mode.
fn stdin_verb_line(router: &ShardRouter, verb: &Verb, number: usize) -> Json {
    match verb {
        Verb::Ping => verb_ok_line("ping"),
        Verb::Hello => hello_line(),
        Verb::SessionOpen { .. } | Verb::SessionClose { .. } => session_verb_line(router, verb),
        Verb::Metrics => stamped(router.metrics().to_json()),
        _ => bad_request_line(
            Json::uint(number as u64),
            "this op is not available in stdin serve mode",
        ),
    }
}

/// Renders a submission failure as a `rejected` result line.
fn submit_rejected_line(id: Json, err: &ServiceError) -> Json {
    let reason = match err {
        ServiceError::UnknownSession(_) => "unknown_session",
        _ => "shutting_down",
    };
    rejected_line(id, reason)
}

/// Runs the serve command over `input` (one JSON request per line) and
/// returns the JSONL output, one result per request in request order.
/// Control verbs (session opens/closes included) execute as they are
/// read, before any later request is submitted, so an
/// open→refine→…→close script behaves as written.
///
/// # Errors
///
/// Returns a message when the service configuration is invalid (or a
/// persistent cache file cannot be opened); malformed *requests* are
/// reported inline as `bad-request` result lines instead.
pub fn run_serve_on(options: &ServeOptions, input: &str) -> Result<String, String> {
    apply_log_level(options);
    let router = build_router(options)?;

    // Submit everything up front (the bounded queues apply backpressure
    // by blocking the reader), then answer in request order.
    enum Line {
        Submitted(Json, JobHandle),
        Rendered(Json),
    }
    let mut lines = Vec::new();
    for (index, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line, index + 1) {
            Input::Control(verb) => {
                lines.push(Line::Rendered(stdin_verb_line(&router, &verb, index + 1)));
            }
            Input::Request(parsed) => match router.submit(parsed.request) {
                Ok(handle) => lines.push(Line::Submitted(parsed.id, handle)),
                Err(err) => lines.push(Line::Rendered(submit_rejected_line(parsed.id, &err))),
            },
            Input::Bad { id, error } => {
                lines.push(Line::Rendered(bad_request_line(id, &error)));
            }
        }
    }

    let mut out = String::new();
    for line in &lines {
        let rendered = match line {
            Line::Submitted(id, handle) => response_line(id.clone(), &handle.wait(), None),
            Line::Rendered(rendered) => rendered.clone(),
        };
        out.push_str(&rendered.to_compact());
        out.push('\n');
    }
    let snapshot = router.shutdown();
    if options.metrics {
        out.push_str(&stamped(snapshot.to_json()).to_compact());
        out.push('\n');
    }
    Ok(out)
}

fn emit(out: &mut impl Write, line: &Json) -> Result<(), String> {
    writeln!(out, "{}", line.to_compact())
        .and_then(|()| out.flush())
        .map_err(|err| format!("cannot write output: {err}"))
}

/// Emits every pending response that has already completed; reports
/// whether any line was written (so the caller knows to sleep).
fn drain_completed(
    pending: &mut VecDeque<(Json, JobHandle)>,
    out: &mut impl Write,
) -> Result<bool, String> {
    let mut emitted = false;
    let mut index = 0;
    while index < pending.len() {
        match pending[index].1.try_wait() {
            Some(response) => {
                let (id, _) = pending.remove(index).expect("index < len");
                emit(out, &response_line(id, &response, None))?;
                emitted = true;
            }
            None => index += 1,
        }
    }
    Ok(emitted)
}

/// Runs the serve command in streaming mode: requests are submitted as
/// they are read from `input`, and each result line is written (and
/// flushed) to `out` as its request completes — tagged by id, in
/// completion order rather than request order.
///
/// Reading happens on its own *detached* thread: a pipelining client
/// that waits for an answer before sending its next request (the point
/// of streaming) must receive that answer while the server's input read
/// is still blocked, not after the next line arrives. The thread is
/// deliberately not joined — were the output to fail while the reader
/// sits in a blocking `read`, a join would hang the error return until
/// the client happened to send another line. An abandoned reader exits
/// on its next line (its channel is closed); in the CLI the process
/// exits first anyway. This is also why `input` must be `'static`.
///
/// # Errors
///
/// Returns a message when the service configuration is invalid or the
/// input/output streams fail; malformed requests are reported inline.
pub fn run_serve_stream(
    options: &ServeOptions,
    input: impl BufRead + Send + 'static,
    mut out: impl Write,
) -> Result<(), String> {
    apply_log_level(options);
    let router = build_router(options)?;
    let mut pending: VecDeque<(Json, JobHandle)> = VecDeque::new();
    let (sender, lines) = std::sync::mpsc::channel::<std::io::Result<String>>();
    std::thread::spawn(move || {
        for line in input.lines() {
            let failed = line.is_err();
            if sender.send(line).is_err() || failed {
                return;
            }
        }
    });
    let tick = Duration::from_millis(1);
    let mut number = 0;
    let mut open = true;
    while open || !pending.is_empty() {
        // Poll for a new request while answering completed ones; the
        // 1 ms tick bounds the latency of both directions.
        match lines.recv_timeout(tick) {
            Ok(line) => {
                let line = line.map_err(|err| format!("cannot read input: {err}"))?;
                number += 1;
                if line.trim().is_empty() {
                    continue;
                }
                match parse_line(&line, number) {
                    Input::Control(verb) => {
                        emit(&mut out, &stdin_verb_line(&router, &verb, number))?;
                    }
                    Input::Request(parsed) => match router.submit(parsed.request) {
                        Ok(handle) => pending.push_back((parsed.id, handle)),
                        Err(err) => emit(&mut out, &submit_rejected_line(parsed.id, &err))?,
                    },
                    Input::Bad { id, error } => emit(&mut out, &bad_request_line(id, &error))?,
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => open = false,
        }
        if !drain_completed(&mut pending, &mut out)? && !open && !pending.is_empty() {
            // Input is done and a disconnected channel returns at once:
            // without this sleep the final wait would spin a full core.
            std::thread::sleep(tick);
        }
    }
    let snapshot = router.shutdown();
    if options.metrics {
        emit(&mut out, &stamped(snapshot.to_json()))?;
    }
    Ok(())
}

/// Runs the serve command as a TCP front-end on `--listen ADDR`: binds,
/// announces the resolved address on `out` as `listening on ADDR` (which
/// is how scripts discover a `:0` port), then serves connections until a
/// `shutdown` control verb or Ctrl-C drains the server. With `--metrics`
/// the final router snapshot — admission counters included — is written
/// to `out` as one JSON line after the drain.
///
/// # Errors
///
/// Returns a message when the service or admission configuration is
/// invalid, the address cannot be bound, or the listener fails fatally.
pub fn run_serve_listen(options: &ServeOptions, mut out: impl Write) -> Result<(), String> {
    apply_log_level(options);
    let listen = options
        .listen
        .as_deref()
        .ok_or_else(|| "run_serve_listen needs --listen".to_string())?;
    let router = build_router(options)?;
    let mut config = NetConfig::new(listen)
        .with_handler_threads(options.net_threads)
        .with_admission(options.admission.clone());
    if let Some(addr) = &options.metrics_addr {
        config = config.with_metrics_addr(addr);
    }
    if let Some(slo) = options.slo {
        config = config.with_slo(slo);
    }
    let server = NetServer::bind(config, router)?;
    writeln!(out, "listening on {}", server.local_addr())
        .and_then(|()| out.flush())
        .map_err(|err| format!("cannot write output: {err}"))?;
    if let Some(addr) = server.metrics_addr() {
        writeln!(out, "metrics on {addr}")
            .and_then(|()| out.flush())
            .map_err(|err| format!("cannot write output: {err}"))?;
    }
    install_shutdown_signals();
    let snapshot = server.run()?;
    if options.metrics {
        emit(&mut out, &stamped(snapshot.to_json()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rei_core::BackendChoice;

    fn options() -> ServeOptions {
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        }
    }

    fn lines(raw: &str) -> Vec<Json> {
        raw.lines().map(|l| Json::parse(l).unwrap()).collect()
    }

    #[test]
    fn answers_every_request_in_order() {
        let input = r#"{"id": "intro", "pos": ["10", "101", "100"], "neg": ["ε", "0", "1"]}
{"pos": ["0", "00"], "neg": ["1", "10"]}

{"id": 7, "pos": ["0", "00"], "neg": ["1", "10"]}
"#;
        let out = run_serve_on(&options(), input).unwrap();
        let results = lines(&out);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].get("id").and_then(Json::as_str), Some("intro"));
        assert_eq!(
            results[0].get("status").and_then(Json::as_str),
            Some("solved")
        );
        assert!(results[0].get("regex").is_some());
        // The unnamed request is identified by its line number.
        assert_eq!(results[1].get("id").and_then(Json::as_u64), Some(2));
        // The duplicate of line 2 is answered without a second synthesis.
        assert_eq!(results[2].get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(
            results[2].get("cost").and_then(Json::as_u64),
            results[1].get("cost").and_then(Json::as_u64)
        );
        assert_ne!(
            results[2].get("source").and_then(Json::as_str),
            Some("fresh")
        );
    }

    #[test]
    fn streaming_answers_every_request_tagged_by_id() {
        let mut options = options();
        options.stream = true;
        options.pools = 2;
        let input = "{\"id\": \"a\", \"pos\": [\"0\", \"00\"], \"neg\": [\"1\"], \"tenant\": \"t1\"}\n\
                     not json\n\
                     {\"id\": \"b\", \"pos\": [\"1\", \"11\"], \"neg\": [\"0\"], \"tenant\": \"t2\"}\n\
                     {\"id\": \"c\", \"pos\": [\"0\", \"00\"], \"neg\": [\"1\"], \"tenant\": \"t1\"}\n";
        let mut raw = Vec::new();
        run_serve_stream(&options, input.as_bytes(), &mut raw).unwrap();
        let raw = String::from_utf8(raw).unwrap();
        let results = lines(&raw);
        assert_eq!(results.len(), 4);
        // Order is not guaranteed; the id *set* is, and ids correlate.
        let mut ids: Vec<String> = results
            .iter()
            .map(|r| {
                r.get("id")
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .unwrap_or_else(|| r.get("id").unwrap().to_compact())
            })
            .collect();
        ids.sort();
        assert_eq!(ids, ["2", "a", "b", "c"]);
        for result in &results {
            let id = result.get("id").and_then(Json::as_str);
            let status = result.get("status").and_then(Json::as_str);
            match id {
                Some("a") | Some("b") | Some("c") => assert_eq!(status, Some("solved"), "{id:?}"),
                _ => assert_eq!(status, Some("bad-request")),
            }
        }
        // "c" duplicates "a" on the same tenant (same pool): no third run.
        let c = results
            .iter()
            .find(|r| r.get("id").and_then(Json::as_str) == Some("c"))
            .unwrap();
        assert_ne!(c.get("source").and_then(Json::as_str), Some("fresh"));
    }

    /// A pipelining client: delivers one request, then keeps the stream
    /// open (blocking in `read`) for `hold` before signalling EOF.
    struct PipeliningClient {
        first: Option<Vec<u8>>,
        hold: Duration,
    }

    impl std::io::Read for PipeliningClient {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.first.take() {
                Some(line) => {
                    buf[..line.len()].copy_from_slice(&line);
                    Ok(line.len())
                }
                None => {
                    std::thread::sleep(self.hold);
                    Ok(0)
                }
            }
        }
    }

    type TimedLines = Vec<(std::time::Instant, Vec<u8>)>;

    /// A writer that timestamps every line it receives.
    #[derive(Clone, Default)]
    struct TimedWriter(std::sync::Arc<std::sync::Mutex<TimedLines>>);

    impl Write for TimedWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap()
                .push((std::time::Instant::now(), buf.to_vec()));
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streaming_answers_while_the_input_is_still_open() {
        // The point of --stream: a client that sends one request and
        // *waits for the answer* before sending more must receive it
        // while the server's read is still blocked — not at EOF.
        let mut options = options();
        options.stream = true;
        let hold = Duration::from_millis(1500);
        let client = std::io::BufReader::new(PipeliningClient {
            first: Some(
                b"{\"id\": \"only\", \"pos\": [\"0\", \"00\"], \"neg\": [\"1\"]}\n".to_vec(),
            ),
            hold,
        });
        let writer = TimedWriter::default();
        let started = std::time::Instant::now();
        run_serve_stream(&options, client, writer.clone()).unwrap();
        let written = writer.0.lock().unwrap();
        let (answered_at, first) = written.first().expect("one answer line");
        let line = Json::parse(std::str::from_utf8(first).unwrap().trim()).unwrap();
        assert_eq!(line.get("id").and_then(Json::as_str), Some("only"));
        assert_eq!(line.get("status").and_then(Json::as_str), Some("solved"));
        assert!(
            answered_at.duration_since(started) < hold / 2,
            "answer arrived only after {:?} — held back until EOF",
            answered_at.duration_since(started)
        );
    }

    #[test]
    fn malformed_lines_become_bad_request_results() {
        let input = "{\"pos\": [\"0\"]}\nnot json\n{\"neg\": [\"1\"]}\n{\"pos\": \"0\"}\n";
        let out = run_serve_on(&options(), input).unwrap();
        let results = lines(&out);
        assert_eq!(results.len(), 4);
        assert_eq!(
            results[0].get("status").and_then(Json::as_str),
            Some("solved")
        );
        for (index, result) in results.iter().enumerate().skip(1) {
            assert_eq!(
                result.get("status").and_then(Json::as_str),
                Some("bad-request"),
                "line {index}"
            );
            assert!(result.get("error").is_some());
        }
        // Contradictory examples are also a bad request, not a crash —
        // and the client's own id survives into the error line.
        let out = run_serve_on(
            &options(),
            "{\"id\": \"r9\", \"pos\": [\"0\"], \"neg\": [\"0\"]}\n",
        )
        .unwrap();
        let result = &lines(&out)[0];
        assert_eq!(
            result.get("status").and_then(Json::as_str),
            Some("bad-request")
        );
        assert_eq!(result.get("id").and_then(Json::as_str), Some("r9"));
        // A hostile timeout or tenant is a bad request too, not a panic.
        let out = run_serve_on(
            &options(),
            "{\"id\": \"t\", \"pos\": [\"0\"], \"timeout_ms\": -5}\n\
             {\"pos\": [\"0\"], \"timeout_ms\": 1e40}\n\
             {\"pos\": [\"0\"], \"tenant\": 7}\n",
        )
        .unwrap();
        for result in &lines(&out) {
            assert_eq!(
                result.get("status").and_then(Json::as_str),
                Some("bad-request"),
                "{result:?}"
            );
        }
    }

    #[test]
    fn sessions_refine_warm_over_stdin() {
        let mut options = options();
        options.workers = 1; // deterministic refine ordering
        let input = "{\"op\": \"hello\"}\n\
            {\"op\": \"session.open\", \"name\": \"s1\"}\n\
            {\"verb\": \"refine\", \"session\": \"s1\", \"id\": \"a\", \"pos\": [\"0\", \"00\"], \"neg\": [\"1\"]}\n\
            {\"verb\": \"refine\", \"session\": \"s1\", \"id\": \"b\", \"pos\": [\"0\", \"00\"], \"neg\": [\"1\", \"10\"]}\n\
            {\"verb\": \"refine\", \"session\": \"ghost\", \"id\": \"c\", \"pos\": [\"0\"]}\n\
            {\"op\": \"session.close\", \"name\": \"s1\"}\n";
        let out = run_serve_on(&options, input).unwrap();
        let results = lines(&out);
        assert_eq!(results.len(), 6, "{out}");
        for line in &results {
            assert_eq!(
                line.get("proto").and_then(Json::as_u64),
                Some(rei_net::protocol::PROTO_VERSION),
                "{line:?}"
            );
        }
        assert_eq!(results[0].get("op").and_then(Json::as_str), Some("hello"));
        assert!(results[0].get("verbs").is_some());
        assert_eq!(results[1].get("session").and_then(Json::as_str), Some("s1"));
        let first = &results[2];
        assert_eq!(first.get("id").and_then(Json::as_str), Some("a"));
        assert_eq!(first.get("status").and_then(Json::as_str), Some("solved"));
        assert_eq!(first.get("source").and_then(Json::as_str), Some("session"));
        assert_eq!(first.get("reuse").and_then(Json::as_str), Some("cold"));
        let second = &results[3];
        assert_eq!(second.get("reuse").and_then(Json::as_str), Some("warm"));
        assert!(second.get("reason").is_none());
        let ghost = &results[4];
        assert_eq!(ghost.get("status").and_then(Json::as_str), Some("rejected"));
        assert_eq!(
            ghost.get("reason").and_then(Json::as_str),
            Some("unknown_session")
        );
        assert_eq!(
            results[5].get("op").and_then(Json::as_str),
            Some("session.close")
        );
        assert_eq!(results[5].get("status").and_then(Json::as_str), Some("ok"));
    }

    #[test]
    fn connection_scoped_verbs_are_refused_on_stdin() {
        let out = run_serve_on(&options(), "{\"op\": \"shutdown\"}\n{\"op\": \"ping\"}\n").unwrap();
        let results = lines(&out);
        assert_eq!(
            results[0].get("status").and_then(Json::as_str),
            Some("bad-request")
        );
        assert_eq!(results[1].get("op").and_then(Json::as_str), Some("ping"));
        assert_eq!(results[1].get("status").and_then(Json::as_str), Some("ok"));
    }

    #[test]
    fn expired_deadline_is_reported_as_cancelled() {
        let input = "{\"pos\": [\"10\", \"101\"], \"neg\": [\"\", \"0\"], \"timeout_ms\": 0}\n";
        let out = run_serve_on(&options(), input).unwrap();
        let results = lines(&out);
        assert_eq!(
            results[0].get("status").and_then(Json::as_str),
            Some("cancelled")
        );
        assert_eq!(results[0].get("run_ms").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn metrics_flag_appends_a_router_snapshot_line() {
        let mut options = options();
        options.metrics = true;
        options.pools = 2;
        options.backend = BackendChoice::ThreadParallel { threads: Some(2) };
        let input = "{\"pos\": [\"0\"], \"neg\": [\"1\"]}\n{\"pos\": [\"0\"], \"neg\": [\"1\"]}\n";
        let out = run_serve_on(&options, input).unwrap();
        let results = lines(&out);
        assert_eq!(results.len(), 3);
        let metrics = &results[2];
        assert_eq!(
            metrics.get("schema").and_then(Json::as_str),
            Some("rei-service/router-metrics-v1")
        );
        assert_eq!(metrics.get("pools").and_then(Json::as_u64), Some(2));
        assert_eq!(
            metrics
                .get("rollup")
                .and_then(|r| r.get("requests"))
                .and_then(|r| r.get("submitted"))
                .and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn cache_dir_warms_a_restarted_server_from_disk() {
        let dir = std::env::temp_dir().join(format!("paresy-serve-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut options = options();
        options.cache_dir = Some(dir.to_string_lossy().into_owned());
        options.metrics = true;
        let input = "{\"id\": \"x\", \"pos\": [\"0\", \"00\"], \"neg\": [\"1\"]}\n";

        let first = run_serve_on(&options, input).unwrap();
        let first = lines(&first);
        assert_eq!(first[0].get("source").and_then(Json::as_str), Some("fresh"));

        // A second process over the same directory answers from disk.
        let second = run_serve_on(&options, input).unwrap();
        let second = lines(&second);
        assert_eq!(
            second[0].get("source").and_then(Json::as_str),
            Some("cache")
        );
        let rollup = second[1].get("rollup").unwrap();
        assert_eq!(
            rollup
                .get("cache")
                .and_then(|c| c.get("disk_loaded"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            rollup
                .get("jobs")
                .and_then(|j| j.get("enqueued"))
                .and_then(Json::as_u64),
            Some(0),
            "the restarted server ran no synthesis"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn listen_mode_serves_tcp_and_reports_admission_metrics() {
        use std::io::BufRead as _;

        let mut options = options();
        options.listen = Some("127.0.0.1:0".into());
        options.metrics = true;
        options.admission = rei_service::AdmissionConfig::new()
            .with_tenant("greedy", rei_service::TenantPolicy::limited(1e-9, 1.0));

        let writer = TimedWriter::default();
        let server = {
            let writer = writer.clone();
            std::thread::spawn(move || run_serve_listen(&options, writer).unwrap())
        };
        // Writes arrive in fragments; reassemble them into lines.
        let written_lines = |writer: &TimedWriter| -> Vec<String> {
            let bytes: Vec<u8> = writer
                .0
                .lock()
                .unwrap()
                .iter()
                .flat_map(|(_, chunk)| chunk.clone())
                .collect();
            String::from_utf8(bytes)
                .unwrap()
                .lines()
                .map(str::to_string)
                .collect()
        };
        // The first output line announces the resolved port; wait for
        // the full line (its fragments arrive across several writes).
        let addr = loop {
            let complete = writer
                .0
                .lock()
                .unwrap()
                .iter()
                .any(|(_, chunk)| chunk.contains(&b'\n'));
            if complete {
                let first = written_lines(&writer)[0].clone();
                break first
                    .strip_prefix("listening on ")
                    .unwrap_or_else(|| panic!("unexpected first line {first:?}"))
                    .to_string();
            }
            std::thread::sleep(Duration::from_millis(1));
        };

        let mut client = std::net::TcpStream::connect(&addr).unwrap();
        client
            .write_all(
                b"{\"id\": \"a\", \"pos\": [\"0\", \"00\"], \"neg\": [\"1\"], \"tenant\": \"greedy\"}\n\
                  {\"id\": \"b\", \"pos\": [\"0\"], \"tenant\": \"greedy\"}\n\
                  {\"op\": \"shutdown\"}\n",
            )
            .unwrap();
        let results: Vec<Json> = std::io::BufReader::new(client)
            .lines()
            .map(|l| Json::parse(&l.unwrap()).unwrap())
            .filter(|l| l.get("op").is_none())
            .collect();
        // Rejections are answered immediately, bypassing the ordered
        // buffering — correlate by id rather than by arrival order.
        assert_eq!(results.len(), 2, "{results:?}");
        let by_id = |id: &str| {
            results
                .iter()
                .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
                .unwrap_or_else(|| panic!("no answer for {id}: {results:?}"))
        };
        assert_eq!(
            by_id("a").get("status").and_then(Json::as_str),
            Some("solved")
        );
        // The one-token bucket rejects the second request explicitly.
        let rejected = by_id("b");
        assert_eq!(
            rejected.get("status").and_then(Json::as_str),
            Some("rejected")
        );
        assert_eq!(
            rejected.get("reason").and_then(Json::as_str),
            Some("rate_limited")
        );

        server.join().unwrap();
        let metrics = written_lines(&writer)
            .into_iter()
            .find(|line| line.starts_with('{'))
            .expect("metrics line after the drain");
        let metrics = Json::parse(metrics.trim()).unwrap();
        let requests = metrics
            .get("rollup")
            .and_then(|r| r.get("requests"))
            .unwrap();
        assert_eq!(requests.get("admitted").and_then(Json::as_u64), Some(1));
        assert_eq!(requests.get("rate_limited").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn listen_mode_announces_and_serves_the_metrics_endpoint() {
        use std::io::{BufRead as _, Read as _};

        let mut options = options();
        options.listen = Some("127.0.0.1:0".into());
        options.metrics_addr = Some("127.0.0.1:0".into());

        let writer = TimedWriter::default();
        let server = {
            let writer = writer.clone();
            std::thread::spawn(move || run_serve_listen(&options, writer).unwrap())
        };
        // Wait for both announcement lines: `listening on A` then
        // `metrics on B`.
        let (addr, scrape_addr) = loop {
            let bytes: Vec<u8> = writer
                .0
                .lock()
                .unwrap()
                .iter()
                .flat_map(|(_, chunk)| chunk.clone())
                .collect();
            let text = String::from_utf8(bytes).unwrap();
            let lines: Vec<&str> = text.lines().collect();
            if text.matches('\n').count() >= 2 {
                let listen = lines[0].strip_prefix("listening on ").unwrap().to_string();
                let scrape = lines[1].strip_prefix("metrics on ").unwrap().to_string();
                break (listen, scrape);
            }
            std::thread::sleep(Duration::from_millis(1));
        };

        let mut client = std::net::TcpStream::connect(&addr).unwrap();
        client
            .write_all(b"{\"id\": \"a\", \"pos\": [\"0\", \"00\"], \"neg\": [\"1\"]}\n")
            .unwrap();
        let mut reader = std::io::BufReader::new(client.try_clone().unwrap());
        let mut answer = String::new();
        reader.read_line(&mut answer).unwrap();
        let answer = Json::parse(answer.trim()).unwrap();
        assert_eq!(answer.get("status").and_then(Json::as_str), Some("solved"));

        // The scrape endpoint reflects the completed request.
        let mut scrape = std::net::TcpStream::connect(&scrape_addr).unwrap();
        scrape.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        scrape.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.0 200 OK\r\n"), "{body:?}");
        assert!(body.contains("rei_requests_completed_total"), "{body:?}");

        client.write_all(b"{\"op\": \"shutdown\"}\n").unwrap();
        server.join().unwrap();
    }

    #[test]
    fn invalid_service_config_is_an_error() {
        let mut bad = options();
        bad.allowed_error = 2.0;
        let err = run_serve_on(&bad, "").unwrap_err();
        assert!(err.contains("allowed error"), "{err}");
    }
}
