//! The `serve` command: JSONL requests on stdin, JSONL results out.
//!
//! Each input line is one JSON request object:
//!
//! ```json
//! {"id": "r1", "pos": ["10", "101"], "neg": ["", "0"],
//!  "priority": 1, "timeout_ms": 500}
//! ```
//!
//! * `pos` (required) / `neg` (optional) — example strings; `""`, `"ε"`
//!   and `"<eps>"` all denote the empty word.
//! * `id` (optional) — echoed back verbatim; defaults to the 1-based
//!   line number.
//! * `priority` (optional) — higher runs earlier.
//! * `timeout_ms` (optional) — a per-request deadline; an expired request
//!   is answered with `"status": "cancelled"` without occupying a worker.
//!
//! Every request is submitted to a [`SynthService`] as it is read
//! (identical requests are cache-served or coalesced), and one result
//! line is emitted per request, in request order:
//!
//! ```json
//! {"id": "r1", "status": "solved", "regex": "10(0+1)*", "cost": 8,
//!  "source": "fresh", "wait_ms": 0.1, "run_ms": 2.5, "candidates": 117}
//! ```
//!
//! Failed searches report `"status"` of `timeout` / `oom` / `not-found` /
//! `cancelled`; malformed lines report `bad-request` with an `error`
//! message (and are not submitted). Blank lines are skipped.

use std::time::Duration;

use rei_core::{SynthConfig, SynthesisError};
use rei_lang::Spec;
use rei_service::json::Json;
use rei_service::{JobHandle, ServiceConfig, SynthRequest, SynthService};

use crate::args::ServeOptions;

/// Builds the pool-wide synthesis configuration the flags describe.
fn synth_config(options: &ServeOptions) -> SynthConfig {
    let mut config = SynthConfig::new(options.costs)
        .with_backend(options.backend)
        .with_allowed_error(options.allowed_error);
    if let Some(max_cost) = options.max_cost {
        config = config.with_max_cost(max_cost);
    }
    if let Some(budget) = options.time_budget {
        config = config.with_time_budget(budget);
    }
    if let Some(rows) = options.sched_chunk {
        config = config.with_sched_chunk(rows);
    }
    if let Some(rows) = options.level_chunk_rows {
        config = config.with_level_chunk_rows(rows);
    }
    config
}

/// One parsed input line: the request plus the identity to echo back.
struct ParsedRequest {
    id: Json,
    request: SynthRequest,
}

fn words_of(value: &Json, key: &str) -> Result<Vec<String>, String> {
    let Some(raw) = value.get(key) else {
        return Ok(Vec::new());
    };
    let items = raw
        .as_array()
        .ok_or_else(|| format!("'{key}' must be an array of strings"))?;
    items
        .iter()
        .map(|item| {
            let word = item
                .as_str()
                .ok_or_else(|| format!("'{key}' must contain only strings"))?;
            Ok(match word {
                "ε" | "<eps>" => String::new(),
                other => other.to_string(),
            })
        })
        .collect()
}

/// Parses one input line. A malformed line yields the identity to echo —
/// the client's `id` when one was readable, the line number otherwise —
/// alongside the error message, so clients can always correlate
/// `bad-request` results with their requests.
fn parse_request(line: &str, line_number: usize) -> Result<ParsedRequest, (Json, String)> {
    let line_id = Json::uint(line_number as u64);
    let value = Json::parse(line).map_err(|err| (line_id.clone(), err.to_string()))?;
    if value.as_object().is_none() {
        return Err((line_id, "request must be a JSON object".into()));
    }
    let id = match value.get("id") {
        Some(id @ (Json::Str(_) | Json::Number(_))) => id.clone(),
        Some(_) => return Err((line_id, "'id' must be a string or a number".into())),
        None => line_id,
    };
    let fail = |message: String| (id.clone(), message);
    if value.get("pos").is_none() {
        return Err(fail("request needs a 'pos' array".into()));
    }
    let positives = words_of(&value, "pos").map_err(fail)?;
    let negatives = words_of(&value, "neg").map_err(fail)?;
    let spec = Spec::from_strs(
        positives.iter().map(String::as_str),
        negatives.iter().map(String::as_str),
    )
    .map_err(|err| fail(err.to_string()))?;

    let mut request = SynthRequest::new(spec);
    if let Some(priority) = value.get("priority") {
        let priority = priority
            .as_f64()
            .filter(|p| p.fract() == 0.0 && (i32::MIN as f64..=i32::MAX as f64).contains(p))
            .ok_or_else(|| fail("'priority' must be an integer".into()))?;
        request = request.with_priority(priority as i32);
    }
    if let Some(timeout) = value.get("timeout_ms") {
        // try_from rejects negative, NaN, infinite and overflowing values.
        let timeout = timeout
            .as_f64()
            .and_then(|ms| Duration::try_from_secs_f64(ms / 1e3).ok())
            .ok_or_else(|| fail("'timeout_ms' must be a non-negative number".into()))?;
        request = request.with_timeout(timeout);
    }
    Ok(ParsedRequest { id, request })
}

fn error_status(err: &SynthesisError) -> &'static str {
    match err {
        SynthesisError::Timeout { .. } => "timeout",
        SynthesisError::OutOfMemory { .. } => "oom",
        SynthesisError::NotFound { .. } => "not-found",
        SynthesisError::Cancelled { .. } => "cancelled",
        // The service validates its config at start; per-request failures
        // can never be InvalidConfig.
        SynthesisError::InvalidConfig { .. } => "invalid-config",
    }
}

fn response_line(id: Json, handle: &JobHandle) -> Json {
    let response = handle.wait();
    let ms = |d: std::time::Duration| Json::fixed(d.as_secs_f64() * 1e3, 3);
    let mut line = vec![("id".to_string(), id)];
    match &response.outcome {
        Ok(result) => {
            line.push(("status".into(), Json::str("solved")));
            line.push(("regex".into(), Json::str(result.regex.to_string())));
            line.push(("cost".into(), Json::uint(result.cost)));
        }
        Err(err) => {
            line.push(("status".into(), Json::str(error_status(err))));
        }
    }
    line.push(("source".into(), Json::str(response.source.as_str())));
    line.push(("wait_ms".into(), ms(response.waited)));
    line.push(("run_ms".into(), ms(response.ran)));
    if let Ok(result) = &response.outcome {
        line.push((
            "candidates".into(),
            Json::uint(result.stats.candidates_generated),
        ));
    }
    Json::Object(line)
}

/// Runs the serve command over `input` (one JSON request per line) and
/// returns the JSONL output.
///
/// # Errors
///
/// Returns a message when the service configuration is invalid; malformed
/// *requests* are reported inline as `bad-request` result lines instead.
pub fn run_serve_on(options: &ServeOptions, input: &str) -> Result<String, String> {
    let service = SynthService::start(
        ServiceConfig::new(options.workers)
            .with_queue_capacity(options.queue_capacity)
            .with_cache_capacity(options.cache_capacity)
            .with_synth(synth_config(options)),
    )
    .map_err(|err| err.to_string())?;

    // Submit everything up front (the bounded queue applies backpressure
    // by blocking the reader), then answer in request order.
    enum Line {
        Submitted(Json, JobHandle),
        BadRequest(Json, String),
    }
    let mut lines = Vec::new();
    for (index, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(line, index + 1) {
            Ok(parsed) => {
                let handle = service
                    .submit(parsed.request)
                    .expect("service is open until shutdown");
                lines.push(Line::Submitted(parsed.id, handle));
            }
            Err((id, message)) => lines.push(Line::BadRequest(id, message)),
        }
    }

    let mut out = String::new();
    for line in &lines {
        let rendered = match line {
            Line::Submitted(id, handle) => response_line(id.clone(), handle),
            Line::BadRequest(id, message) => Json::object([
                ("id", id.clone()),
                ("status", Json::str("bad-request")),
                ("error", Json::str(message.clone())),
            ]),
        };
        out.push_str(&rendered.to_compact());
        out.push('\n');
    }
    let metrics = service.shutdown();
    if options.metrics {
        out.push_str(&metrics.to_json().to_compact());
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rei_core::BackendChoice;

    fn options() -> ServeOptions {
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        }
    }

    fn lines(raw: &str) -> Vec<Json> {
        raw.lines().map(|l| Json::parse(l).unwrap()).collect()
    }

    #[test]
    fn answers_every_request_in_order() {
        let input = r#"{"id": "intro", "pos": ["10", "101", "100"], "neg": ["ε", "0", "1"]}
{"pos": ["0", "00"], "neg": ["1", "10"]}

{"id": 7, "pos": ["0", "00"], "neg": ["1", "10"]}
"#;
        let out = run_serve_on(&options(), input).unwrap();
        let results = lines(&out);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].get("id").and_then(Json::as_str), Some("intro"));
        assert_eq!(
            results[0].get("status").and_then(Json::as_str),
            Some("solved")
        );
        assert!(results[0].get("regex").is_some());
        // The unnamed request is identified by its line number.
        assert_eq!(results[1].get("id").and_then(Json::as_u64), Some(2));
        // The duplicate of line 2 is answered without a second synthesis.
        assert_eq!(results[2].get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(
            results[2].get("cost").and_then(Json::as_u64),
            results[1].get("cost").and_then(Json::as_u64)
        );
        assert_ne!(
            results[2].get("source").and_then(Json::as_str),
            Some("fresh")
        );
    }

    #[test]
    fn malformed_lines_become_bad_request_results() {
        let input = "{\"pos\": [\"0\"]}\nnot json\n{\"neg\": [\"1\"]}\n{\"pos\": \"0\"}\n";
        let out = run_serve_on(&options(), input).unwrap();
        let results = lines(&out);
        assert_eq!(results.len(), 4);
        assert_eq!(
            results[0].get("status").and_then(Json::as_str),
            Some("solved")
        );
        for (index, result) in results.iter().enumerate().skip(1) {
            assert_eq!(
                result.get("status").and_then(Json::as_str),
                Some("bad-request"),
                "line {index}"
            );
            assert!(result.get("error").is_some());
        }
        // Contradictory examples are also a bad request, not a crash —
        // and the client's own id survives into the error line.
        let out = run_serve_on(
            &options(),
            "{\"id\": \"r9\", \"pos\": [\"0\"], \"neg\": [\"0\"]}\n",
        )
        .unwrap();
        let result = &lines(&out)[0];
        assert_eq!(
            result.get("status").and_then(Json::as_str),
            Some("bad-request")
        );
        assert_eq!(result.get("id").and_then(Json::as_str), Some("r9"));
        // A hostile timeout is a bad request too, not a panic.
        let out = run_serve_on(
            &options(),
            "{\"id\": \"t\", \"pos\": [\"0\"], \"timeout_ms\": -5}\n{\"pos\": [\"0\"], \"timeout_ms\": 1e40}\n",
        )
        .unwrap();
        for result in &lines(&out) {
            assert_eq!(
                result.get("status").and_then(Json::as_str),
                Some("bad-request"),
                "{result:?}"
            );
        }
    }

    #[test]
    fn expired_deadline_is_reported_as_cancelled() {
        let input = "{\"pos\": [\"10\", \"101\"], \"neg\": [\"\", \"0\"], \"timeout_ms\": 0}\n";
        let out = run_serve_on(&options(), input).unwrap();
        let results = lines(&out);
        assert_eq!(
            results[0].get("status").and_then(Json::as_str),
            Some("cancelled")
        );
        assert_eq!(results[0].get("run_ms").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn metrics_flag_appends_a_metrics_line() {
        let mut options = options();
        options.metrics = true;
        options.backend = BackendChoice::ThreadParallel { threads: Some(2) };
        let input = "{\"pos\": [\"0\"], \"neg\": [\"1\"]}\n{\"pos\": [\"0\"], \"neg\": [\"1\"]}\n";
        let out = run_serve_on(&options, input).unwrap();
        let results = lines(&out);
        assert_eq!(results.len(), 3);
        let metrics = &results[2];
        assert_eq!(
            metrics.get("schema").and_then(Json::as_str),
            Some("rei-service/metrics-v1")
        );
        assert_eq!(
            metrics
                .get("requests")
                .and_then(|r| r.get("submitted"))
                .and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn invalid_service_config_is_an_error() {
        let mut bad = options();
        bad.allowed_error = 2.0;
        let err = run_serve_on(&bad, "").unwrap_err();
        assert!(err.contains("allowed error"), "{err}");
    }
}
