//! Progress observation and cooperative cancellation.
//!
//! A [`SynthSession`](crate::SynthSession) run reports its progress to an
//! [`Observer`]: one [`LevelStats`] event per completed cost level, in
//! strictly increasing cost order, plus start/finish notifications. The
//! search also polls a [`CancelToken`] between batches and between levels,
//! so a long run can be stopped cooperatively from another thread without
//! tearing down warm session state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rei_lang::Spec;

use crate::result::{LevelStats, SynthesisError, SynthesisResult};

/// Receives progress events of a synthesis run.
///
/// All methods have empty default bodies, so implementors override only the
/// events they care about. Events of one run arrive from the thread that
/// called `run*`; levels are reported in strictly increasing cost order.
pub trait Observer {
    /// A run over `spec` is about to start.
    fn on_start(&mut self, spec: &Spec) {
        let _ = spec;
    }

    /// One cost level was fully constructed.
    fn on_level(&mut self, level: &LevelStats) {
        let _ = level;
    }

    /// The run ended (with a result or an error).
    fn on_finish(&mut self, outcome: Result<&SynthesisResult, &SynthesisError>) {
        let _ = outcome;
    }
}

/// The do-nothing observer used by the plain `run` entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// An observer that records every level event; convenient in tests and for
/// post-hoc progress inspection.
#[derive(Debug, Clone, Default)]
pub struct LevelLog {
    /// The recorded events, in arrival (= increasing cost) order.
    pub levels: Vec<LevelStats>,
}

impl Observer for LevelLog {
    fn on_level(&mut self, level: &LevelStats) {
        self.levels.push(*level);
    }
}

/// A cooperative cancellation flag shared between a running synthesis and
/// other threads.
///
/// Cloning a token yields a handle to the *same* flag (it is an [`Arc`]
/// around an atomic). The search polls the token between kernel batches and
/// between cost levels; once tripped, the run fails with
/// [`SynthesisError::Cancelled`] and the flag stays set until [`reset`]
/// (so a batch of runs sharing the token all stop).
///
/// [`SynthesisError::Cancelled`]: crate::SynthesisError::Cancelled
/// [`reset`]: CancelToken::reset
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the token; in-flight runs observing it stop at the next poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Clears the token so the owning session can run again.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_trips_across_clones_and_resets() {
        let token = CancelToken::new();
        let other = token.clone();
        assert!(!token.is_cancelled());
        other.cancel();
        assert!(token.is_cancelled());
        token.reset();
        assert!(!other.is_cancelled());
    }

    #[test]
    fn level_log_records_events() {
        let mut log = LevelLog::default();
        log.on_level(&LevelStats {
            cost: 1,
            candidates: 2,
            unique: 2,
            cached: 2,
        });
        log.on_level(&LevelStats {
            cost: 2,
            candidates: 5,
            unique: 3,
            cached: 3,
        });
        assert_eq!(log.levels.len(), 2);
        assert!(log.levels[0].cost < log.levels[1].cost);
    }
}
