//! Results, statistics and errors of a synthesis run.

use std::error::Error;
use std::fmt;
use std::time::Duration;

use rei_syntax::Regex;

/// The outcome of a successful synthesis run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthesisResult {
    /// The inferred regular expression. It accepts every positive example,
    /// rejects every negative example (up to the configured allowed error)
    /// and is minimal with respect to the configured cost homomorphism.
    pub regex: Regex,
    /// The cost of `regex` under the configured cost homomorphism.
    pub cost: u64,
    /// Counters describing the work the search performed.
    pub stats: SynthesisStats,
}

/// Counters collected during a synthesis run.
///
/// `candidates_generated` corresponds to the "# REs" columns of Tables 1
/// and 2 of the paper: the number of candidate languages constructed and
/// checked against the specification.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SynthesisStats {
    /// Number of candidate characteristic sequences constructed.
    pub candidates_generated: u64,
    /// Number of candidates that survived the uniqueness check.
    pub unique_languages: u64,
    /// Work chunks claimed by the level execution engine: streamed level
    /// chunks on the sequential and device strategies, work-stealing
    /// scheduler claims on the thread-parallel strategy.
    pub chunks_claimed: u64,
    /// Scheduler chunks a thread-parallel worker claimed from another
    /// worker's range (0 on the other strategies).
    pub chunks_stolen: u64,
    /// Rows per work-stealing claim in effect when the run ended. The
    /// search adapts this between levels from the observed steal rate
    /// (high contention halves it, calm levels grow it back towards the
    /// configured value), so the final value is a contention fingerprint.
    pub sched_chunk: u64,
    /// Candidate rows whose full satisfaction check was skipped by the
    /// single-block admission prefilter.
    pub prefilter_rejects: u64,
    /// Admission checks executed: candidate rows that ran the prefilter
    /// and/or the full satisfaction fold. A refinement answered from the
    /// session without re-running admission reports 0 here.
    pub admission_folds: u64,
    /// Insertions the uniqueness filter could not record exactly (its
    /// fixed-capacity table was full) and reported as unique instead.
    pub dedup_overflowed: u64,
    /// Number of rows stored in the language cache when the run ended.
    pub cache_rows: u64,
    /// Approximate memory used by the language cache, in bytes.
    pub cache_bytes: u64,
    /// Size of the infix closure `#ic(P ∪ N)`.
    pub infix_closure_size: u64,
    /// Highest cost level whose construction was started.
    pub max_cost_reached: u64,
    /// Whether the search had to switch to OnTheFly mode.
    pub used_on_the_fly: bool,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-cost-level breakdown of the work, in increasing cost order
    /// (the structure of the paper's language-cache figure).
    pub levels: Vec<LevelStats>,
}

/// Work performed while constructing one cost level of the language cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LevelStats {
    /// The cost of the level.
    pub cost: u64,
    /// Candidate rows constructed at this level.
    pub candidates: u64,
    /// Candidates that survived the uniqueness check.
    pub unique: u64,
    /// Rows actually stored in the cache (0 once OnTheFly mode is active).
    pub cached: u64,
}

/// The ways a synthesis run can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// No expression of cost at most `max_cost` satisfies the
    /// specification (the paper's `"not_found"` outcome).
    NotFound {
        /// The cost bound that was exhausted.
        max_cost: u64,
        /// Work counters of the failed run.
        stats: SynthesisStats,
    },
    /// The language cache exceeded its memory budget and OnTheFly mode ran
    /// out of cached operands before a solution was found (the paper's
    /// out-of-memory outcome).
    OutOfMemory {
        /// The last cost level that was fully constructed and cached.
        last_complete_cost: u64,
        /// Work counters of the failed run.
        stats: SynthesisStats,
    },
    /// The configured wall-clock budget expired before a solution was
    /// found. This outcome exists for the benchmark harness, which follows
    /// the paper's protocol of discarding runs that exceed a timeout.
    Timeout {
        /// The configured budget.
        budget: Duration,
        /// Work counters of the failed run.
        stats: SynthesisStats,
    },
    /// A [`CancelToken`](crate::CancelToken) was tripped and the search
    /// stopped cooperatively at the next level boundary.
    Cancelled {
        /// Work counters of the cancelled run.
        stats: SynthesisStats,
    },
    /// The [`SynthConfig`](crate::SynthConfig) is invalid (for example an
    /// allowed error outside `[0, 1]`); no search was attempted.
    InvalidConfig {
        /// A human-readable description of the offending field.
        message: String,
    },
}

impl SynthesisError {
    /// The statistics gathered before the run failed. `None` for
    /// [`SynthesisError::InvalidConfig`], which fails before any search
    /// work happens.
    pub fn stats(&self) -> Option<&SynthesisStats> {
        match self {
            SynthesisError::NotFound { stats, .. }
            | SynthesisError::OutOfMemory { stats, .. }
            | SynthesisError::Timeout { stats, .. }
            | SynthesisError::Cancelled { stats } => Some(stats),
            SynthesisError::InvalidConfig { .. } => None,
        }
    }

    /// Mutable access to the failure statistics, if any.
    pub(crate) fn stats_mut(&mut self) -> Option<&mut SynthesisStats> {
        match self {
            SynthesisError::NotFound { stats, .. }
            | SynthesisError::OutOfMemory { stats, .. }
            | SynthesisError::Timeout { stats, .. }
            | SynthesisError::Cancelled { stats } => Some(stats),
            SynthesisError::InvalidConfig { .. } => None,
        }
    }

    /// Constructs an [`SynthesisError::InvalidConfig`] from a message.
    pub fn invalid_config(message: impl Into<String>) -> Self {
        SynthesisError::InvalidConfig {
            message: message.into(),
        }
    }
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::NotFound { max_cost, .. } => {
                write!(
                    f,
                    "no satisfying regular expression of cost at most {max_cost}"
                )
            }
            SynthesisError::OutOfMemory {
                last_complete_cost, ..
            } => write!(
                f,
                "language cache memory budget exhausted after cost level {last_complete_cost}"
            ),
            SynthesisError::Timeout { budget, .. } => {
                write!(f, "time budget of {budget:?} exhausted")
            }
            SynthesisError::Cancelled { .. } => write!(f, "run cancelled"),
            SynthesisError::InvalidConfig { message } => {
                write!(f, "invalid configuration: {message}")
            }
        }
    }
}

impl Error for SynthesisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_stats_access() {
        let stats = SynthesisStats {
            candidates_generated: 42,
            ..Default::default()
        };
        let not_found = SynthesisError::NotFound {
            max_cost: 9,
            stats: stats.clone(),
        };
        assert!(not_found.to_string().contains("cost at most 9"));
        assert_eq!(not_found.stats().unwrap().candidates_generated, 42);

        let oom = SynthesisError::OutOfMemory {
            last_complete_cost: 7,
            stats: stats.clone(),
        };
        assert!(oom.to_string().contains("cost level 7"));
        assert_eq!(oom.stats().unwrap().candidates_generated, 42);

        let timeout = SynthesisError::Timeout {
            budget: Duration::from_secs(5),
            stats: stats.clone(),
        };
        assert!(timeout.to_string().contains("time budget"));
        assert_eq!(timeout.stats().unwrap().candidates_generated, 42);

        let cancelled = SynthesisError::Cancelled { stats };
        assert!(cancelled.to_string().contains("cancelled"));
        assert!(cancelled.stats().is_some());

        let invalid = SynthesisError::invalid_config("allowed error must be in [0, 1]");
        assert!(invalid.to_string().contains("invalid configuration"));
        assert!(invalid.stats().is_none());
    }

    #[test]
    fn stats_default_is_zeroed() {
        let stats = SynthesisStats::default();
        assert_eq!(stats.candidates_generated, 0);
        assert_eq!(stats.elapsed, Duration::ZERO);
        assert!(!stats.used_on_the_fly);
    }
}
