//! The serializable session configuration.

use std::fmt;
use std::str::FromStr;
use std::time::Duration;

use rei_lang::{Alphabet, Spec};
use rei_syntax::CostFn;

use crate::backend::BackendChoice;
use crate::result::SynthesisError;

/// Default memory budget for the language cache (bytes). The paper
/// restricts both implementations to the 25 GB of the Colab CPU; the
/// default here is sized for laptop-scale runs and can be raised with
/// [`SynthConfig::with_memory_budget`].
pub(crate) const DEFAULT_MEMORY_BUDGET: usize = 256 * 1024 * 1024;

/// Everything a [`SynthSession`](crate::SynthSession) needs, as plain data.
///
/// A config is built with the `with_*` methods, validated once when the
/// session is created (invalid values produce
/// [`SynthesisError::InvalidConfig`] instead of panicking), and can be
/// serialized to a single `key=value` line via [`fmt::Display`] and parsed
/// back via [`FromStr`] — useful for job queues, logs and reproducible
/// benchmark manifests without a serde dependency.
///
/// # Example
///
/// ```
/// use rei_core::{BackendChoice, SynthConfig};
/// use rei_syntax::CostFn;
///
/// let config = SynthConfig::new(CostFn::UNIFORM)
///     .with_backend(BackendChoice::parallel())
///     .with_allowed_error(0.1);
/// let wire = config.to_string();
/// assert_eq!(wire.parse::<SynthConfig>().unwrap(), config);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    costs: CostFn,
    backend: BackendChoice,
    memory_budget: usize,
    max_cost: Option<u64>,
    allowed_error: f64,
    time_budget: Option<Duration>,
    alphabet: Option<Alphabet>,
    sched_chunk: Option<usize>,
    level_chunk_rows: Option<usize>,
}

impl SynthConfig {
    /// A config for the given cost homomorphism with default settings:
    /// sequential backend, 256 MiB cache budget, no explicit cost bound
    /// (the cost of the maximally overfitted expression is used), no
    /// allowed error, no time budget, alphabet inferred from each
    /// specification.
    pub fn new(costs: CostFn) -> Self {
        SynthConfig {
            costs,
            backend: BackendChoice::Sequential,
            memory_budget: DEFAULT_MEMORY_BUDGET,
            max_cost: None,
            allowed_error: 0.0,
            time_budget: None,
            alphabet: None,
            sched_chunk: None,
            level_chunk_rows: None,
        }
    }

    /// Selects the execution backend.
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the memory budget of the language cache in bytes. When the
    /// budget is exhausted the search switches to OnTheFly mode and may
    /// eventually fail with [`SynthesisError::OutOfMemory`].
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Bounds the search to expressions of cost at most `max_cost`
    /// (`maxCost` in Algorithm 1 of the paper).
    pub fn with_max_cost(mut self, max_cost: u64) -> Self {
        self.max_cost = Some(max_cost);
        self
    }

    /// Sets the allowed error of the REI-with-error extension (§5.2): a
    /// fraction in `[0, 1]` of examples the result may misclassify.
    ///
    /// Out-of-range values are recorded as-is and rejected by
    /// [`SynthConfig::validate`] with [`SynthesisError::InvalidConfig`]
    /// when the session is created — this replaces the panic of the old
    /// `Synthesizer::with_allowed_error`.
    pub fn with_allowed_error(mut self, error: f64) -> Self {
        self.allowed_error = error;
        self
    }

    /// Bounds the wall-clock time of each run. When exceeded a run fails
    /// with [`SynthesisError::Timeout`], mirroring the 5-second timeout of
    /// the paper's random benchmark protocol.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Overrides the alphabet. By default the alphabet is the set of
    /// characters occurring in each specification's examples.
    pub fn with_alphabet(mut self, alphabet: Alphabet) -> Self {
        self.alphabet = Some(alphabet);
        self
    }

    /// Sets the number of candidate rows per work-stealing claim of the
    /// thread-parallel backend. Smaller chunks balance skewed levels
    /// better; larger chunks amortise claiming overhead. By default the
    /// search picks a chunk size itself.
    pub fn with_sched_chunk(mut self, rows: usize) -> Self {
        self.sched_chunk = Some(rows);
        self
    }

    /// Bounds the number of candidate rows a streamed cost level
    /// materialises at once (the size of the in-flight job chunk and of
    /// the batch row buffer). By default the bound is derived from the
    /// memory budget. Lower values tighten both peak memory and the
    /// cancellation latency (the stop condition is polled between
    /// chunks); `usize::MAX` is the explicit whole-level fallback — note
    /// that it makes the batch buffer scale with the largest level
    /// (quadratic in cached rows on binary-heavy levels), which is
    /// exactly what the default streaming bound exists to prevent.
    pub fn with_level_chunk_rows(mut self, rows: usize) -> Self {
        self.level_chunk_rows = Some(rows);
        self
    }

    /// The cost homomorphism results are minimised against.
    pub fn costs(&self) -> &CostFn {
        &self.costs
    }

    /// The configured backend choice.
    pub fn backend(&self) -> BackendChoice {
        self.backend
    }

    /// The language-cache memory budget in bytes.
    pub fn memory_budget(&self) -> usize {
        self.memory_budget
    }

    /// The explicit cost bound, if any.
    pub fn max_cost(&self) -> Option<u64> {
        self.max_cost
    }

    /// The allowed-error fraction.
    pub fn allowed_error(&self) -> f64 {
        self.allowed_error
    }

    /// The per-run wall-clock budget, if any.
    pub fn time_budget(&self) -> Option<Duration> {
        self.time_budget
    }

    /// The alphabet override, if any.
    pub fn alphabet(&self) -> Option<&Alphabet> {
        self.alphabet.as_ref()
    }

    /// The work-stealing chunk size override, if any.
    pub fn sched_chunk(&self) -> Option<usize> {
        self.sched_chunk
    }

    /// The streamed-level chunk-row bound override, if any.
    pub fn level_chunk_rows(&self) -> Option<usize> {
        self.level_chunk_rows
    }

    /// Checks every field, returning [`SynthesisError::InvalidConfig`]
    /// with a description of the first offending value.
    pub fn validate(&self) -> Result<(), SynthesisError> {
        if !self.allowed_error.is_finite() || !(0.0..=1.0).contains(&self.allowed_error) {
            return Err(SynthesisError::invalid_config(format!(
                "allowed error must be a finite fraction in [0, 1], got {}",
                self.allowed_error
            )));
        }
        if self.memory_budget == 0 {
            return Err(SynthesisError::invalid_config(
                "memory budget must be positive",
            ));
        }
        if let Some(alphabet) = &self.alphabet {
            if alphabet.is_empty() {
                return Err(SynthesisError::invalid_config("alphabet must be non-empty"));
            }
        }
        if self.sched_chunk == Some(0) {
            return Err(SynthesisError::invalid_config(
                "scheduler chunk size must be positive",
            ));
        }
        if self.level_chunk_rows == Some(0) {
            return Err(SynthesisError::invalid_config(
                "level chunk rows must be positive",
            ));
        }
        Ok(())
    }

    /// Number of examples a result may misclassify on `spec` under the
    /// configured allowed-error fraction.
    pub fn allowed_example_errors(&self, spec: &Spec) -> usize {
        (self.allowed_error * spec.len() as f64).floor() as usize
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig::new(CostFn::UNIFORM)
    }
}

impl fmt::Display for SynthConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, q, s, c, u] = self.costs.as_tuple();
        write!(
            f,
            "costs={a},{q},{s},{c},{u} backend={} memory={} error={}",
            self.backend, self.memory_budget, self.allowed_error
        )?;
        if let Some(max_cost) = self.max_cost {
            write!(f, " max-cost={max_cost}")?;
        }
        if let Some(budget) = self.time_budget {
            // Nanosecond precision so any Duration round-trips exactly
            // (milliseconds would floor a 500µs budget to 0).
            write!(f, " timeout-ns={}", budget.as_nanos())?;
        }
        if let Some(rows) = self.sched_chunk {
            write!(f, " sched-chunk={rows}")?;
        }
        if let Some(rows) = self.level_chunk_rows {
            write!(f, " level-chunk-rows={rows}")?;
        }
        if let Some(alphabet) = &self.alphabet {
            write!(f, " alphabet=")?;
            for &symbol in alphabet.symbols() {
                // Whitespace would split the token and '=' would confuse
                // key=value parsing, so those (and the escape char itself)
                // travel as \u{...} escapes.
                if symbol.is_whitespace() || symbol == '=' || symbol == '\\' {
                    write!(f, "\\u{{{:x}}}", symbol as u32)?;
                } else {
                    write!(f, "{symbol}")?;
                }
            }
        }
        Ok(())
    }
}

/// Decodes the `alphabet=` wire value: literal characters with `\u{...}`
/// escapes for whitespace, `=` and `\`.
fn parse_alphabet_value(value: &str) -> Result<Alphabet, String> {
    let mut symbols = Vec::new();
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            symbols.push(c);
            continue;
        }
        let rest = chars.as_str();
        let hex = rest
            .strip_prefix("u{")
            .and_then(|r| r.split_once('}'))
            .ok_or_else(|| format!("malformed escape in alphabet '{value}'"))?;
        let code = u32::from_str_radix(hex.0, 16)
            .ok()
            .and_then(char::from_u32)
            .ok_or_else(|| format!("invalid \\u escape in alphabet '{value}'"))?;
        symbols.push(code);
        chars = hex.1.chars();
    }
    Ok(Alphabet::new(symbols))
}

impl FromStr for SynthConfig {
    type Err = SynthesisError;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        let invalid = |message: String| SynthesisError::InvalidConfig { message };
        let mut config = SynthConfig::default();
        for token in raw.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| invalid(format!("expected key=value, got '{token}'")))?;
            match key {
                "costs" => {
                    let parts: Vec<u64> = value
                        .split(',')
                        .map(|p| p.parse())
                        .collect::<Result<_, _>>()
                        .map_err(|_| invalid(format!("invalid cost tuple '{value}'")))?;
                    let parts: [u64; 5] = parts.try_into().map_err(|_| {
                        invalid(format!("cost tuple needs 5 components: '{value}'"))
                    })?;
                    if parts.contains(&0) {
                        return Err(invalid(format!(
                            "cost components must be strictly positive: '{value}'"
                        )));
                    }
                    config.costs = CostFn::from_tuple(parts);
                }
                "backend" => {
                    config.backend = value.parse().map_err(invalid)?;
                }
                "memory" => {
                    config.memory_budget = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid memory budget '{value}'")))?;
                }
                "error" => {
                    config.allowed_error = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid allowed error '{value}'")))?;
                }
                "max-cost" => {
                    config.max_cost = Some(
                        value
                            .parse()
                            .map_err(|_| invalid(format!("invalid max cost '{value}'")))?,
                    );
                }
                "timeout-ns" => {
                    let nanos: u128 = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid timeout '{value}'")))?;
                    let nanos: u64 = nanos
                        .try_into()
                        .map_err(|_| invalid(format!("timeout '{value}' is out of range")))?;
                    config.time_budget = Some(Duration::from_nanos(nanos));
                }
                // Accepted for hand-written configs; the writer always
                // emits `timeout-ns`.
                "timeout-ms" => {
                    let millis: u64 = value
                        .parse()
                        .map_err(|_| invalid(format!("invalid timeout '{value}'")))?;
                    config.time_budget = Some(Duration::from_millis(millis));
                }
                "sched-chunk" => {
                    config.sched_chunk = Some(
                        value
                            .parse()
                            .map_err(|_| invalid(format!("invalid scheduler chunk '{value}'")))?,
                    );
                }
                "level-chunk-rows" => {
                    config.level_chunk_rows = Some(
                        value
                            .parse()
                            .map_err(|_| invalid(format!("invalid level chunk rows '{value}'")))?,
                    );
                }
                "alphabet" => {
                    config.alphabet = Some(parse_alphabet_value(value).map_err(invalid)?);
                }
                other => return Err(invalid(format!("unknown config key '{other}'"))),
            }
        }
        config.validate()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(SynthConfig::default().validate().is_ok());
    }

    #[test]
    fn out_of_range_error_is_invalid_config_not_a_panic() {
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = SynthConfig::default()
                .with_allowed_error(bad)
                .validate()
                .unwrap_err();
            assert!(
                matches!(err, SynthesisError::InvalidConfig { .. }),
                "expected InvalidConfig for {bad}, got {err:?}"
            );
        }
        assert!(SynthConfig::default()
            .with_allowed_error(0.5)
            .validate()
            .is_ok());
    }

    #[test]
    fn zero_budget_and_zero_costs_are_rejected() {
        let err = SynthConfig::default()
            .with_memory_budget(0)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("memory"));
        // `CostFn` itself forbids zero components, so they can only arrive
        // through the wire format — which must reject them cleanly.
        let err = "costs=1,0,1,1,1".parse::<SynthConfig>().unwrap_err();
        assert!(err.to_string().contains("strictly positive"));
    }

    #[test]
    fn display_round_trips_through_from_str() {
        let configs = [
            SynthConfig::default(),
            SynthConfig::new(CostFn::new(1, 2, 10, 1, 3))
                .with_backend(BackendChoice::DeviceParallel { threads: Some(4) })
                .with_memory_budget(1 << 20)
                .with_allowed_error(0.25)
                .with_max_cost(40)
                .with_time_budget(Duration::from_millis(1500))
                .with_alphabet(Alphabet::new(['0', '1', 'a'])),
            // Sub-millisecond budgets must survive the wire format too.
            SynthConfig::default().with_time_budget(Duration::from_micros(500)),
            SynthConfig::default().with_backend(BackendChoice::ThreadParallel { threads: Some(3) }),
            SynthConfig::default()
                .with_sched_chunk(32)
                .with_level_chunk_rows(4096),
            SynthConfig::default().with_level_chunk_rows(usize::MAX),
        ];
        for config in configs {
            let wire = config.to_string();
            let parsed: SynthConfig = wire.parse().unwrap_or_else(|e| panic!("{wire}: {e}"));
            assert_eq!(parsed, config, "round trip of '{wire}'");
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "costs=1,2",
            "backend=quantum",
            "memory=lots",
            "error=2.0",
            "wat=1",
            "no-equals",
            "sched-chunk=0",
            "sched-chunk=some",
            "level-chunk-rows=0",
            "level-chunk-rows=-3",
        ] {
            let err = bad.parse::<SynthConfig>().unwrap_err();
            assert!(
                matches!(err, SynthesisError::InvalidConfig { .. }),
                "{bad}: {err:?}"
            );
        }
    }

    #[test]
    fn alphabets_with_awkward_symbols_round_trip() {
        // Whitespace, '=' and '\' would break naive key=value tokenizing;
        // they travel as \u{...} escapes.
        let config =
            SynthConfig::default().with_alphabet(Alphabet::new(['a', ' ', '=', '\\', '\t']));
        let wire = config.to_string();
        let parsed: SynthConfig = wire.parse().unwrap_or_else(|e| panic!("{wire}: {e}"));
        assert_eq!(parsed, config, "round trip of '{wire}'");

        let err = "alphabet=a\\u{zz}".parse::<SynthConfig>().unwrap_err();
        assert!(err.to_string().contains("escape"), "{err}");
        let err = "alphabet=a\\x".parse::<SynthConfig>().unwrap_err();
        assert!(err.to_string().contains("escape"), "{err}");
    }

    #[test]
    fn allowed_example_errors_floor() {
        let spec = Spec::from_strs(["0", "1"], ["00", "11"]).unwrap();
        let config = SynthConfig::default().with_allowed_error(0.5);
        assert_eq!(config.allowed_example_errors(&spec), 2);
        assert_eq!(SynthConfig::default().allowed_example_errors(&spec), 0);
    }
}
