//! The work-stealing chunk scheduler behind the thread-parallel backend.
//!
//! [`LevelBatch::run_threaded`](crate::LevelBatch::run_threaded) used to
//! split each batch into one contiguous span per worker. Static
//! partitioning is cheap but leaves cores idle under skew: candidate rows
//! are far from uniform (star rows run the squaring fixpoint, concat rows
//! depend on operand density), so one unlucky span can keep a single
//! worker busy while the rest of the machine waits at the scope join.
//!
//! [`StealScheduler`] replaces the static split with chunk claiming.
//! The batch is cut into fixed-size chunks of candidate rows (the
//! `sched_chunk` knob of [`SynthConfig`](crate::SynthConfig)); each worker
//! owns a contiguous range of chunk indices and drains it through an
//! atomic cursor, and a worker whose range is exhausted *steals* chunks
//! from the ranges of its peers — so the level ends only when every chunk
//! is done, not when the slowest static span is done. Claiming is one
//! `fetch_add` on the hot path (own range) and a bounded scan of peer
//! cursors when stealing; there are no locks and no channels.
//!
//! Keeping per-worker ranges (rather than one global counter) preserves
//! the sequential claim order within each range, which matters for the
//! search's early-winner cutoff: low chunk indices — the ones that can
//! still contain a lower-index satisfying row — are claimed first.

use std::sync::atomic::{AtomicUsize, Ordering};

/// One claimed chunk: its index in the batch plus whether it was stolen
/// from another worker's range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Claim {
    /// Index of the claimed chunk (chunk `c` covers batch rows
    /// `c * chunk_rows ..`).
    pub chunk: usize,
    /// `true` when the chunk came from another worker's range.
    pub stolen: bool,
}

/// A lock-free chunk scheduler: `workers` cursors over disjoint chunk
/// ranges, with stealing between them.
///
/// # Example
///
/// ```
/// use rei_core::sched::StealScheduler;
///
/// let sched = StealScheduler::new(10, 3);
/// let mut seen = Vec::new();
/// while let Some(claim) = sched.claim(0) {
///     seen.push(claim.chunk);
/// }
/// // A single active worker drains its own range, then steals the rest.
/// seen.sort_unstable();
/// assert_eq!(seen, (0..10).collect::<Vec<_>>());
/// ```
#[derive(Debug)]
pub struct StealScheduler {
    /// `cursors[w]` is the next unclaimed chunk of worker `w`'s range.
    cursors: Vec<AtomicUsize>,
    /// `bounds[w]..bounds[w + 1]` is worker `w`'s range of chunk indices.
    bounds: Vec<usize>,
}

impl StealScheduler {
    /// Splits `num_chunks` chunk indices as evenly as possible over
    /// `workers` ranges (`workers >= 1`; earlier workers get the larger
    /// ranges and the lower indices).
    pub fn new(num_chunks: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        let per = num_chunks / workers;
        let extra = num_chunks % workers;
        let mut bounds = Vec::with_capacity(workers + 1);
        let mut start = 0usize;
        bounds.push(0);
        for w in 0..workers {
            start += per + usize::from(w < extra);
            bounds.push(start);
        }
        StealScheduler {
            cursors: (0..workers).map(|w| AtomicUsize::new(bounds[w])).collect(),
            bounds,
        }
    }

    /// Number of worker ranges.
    pub fn workers(&self) -> usize {
        self.cursors.len()
    }

    /// Claims the next chunk for `worker`: from its own range while any
    /// remain, then from its peers' ranges, scanned in round-robin order
    /// starting after its own. Returns `None` once every chunk of the
    /// batch has been claimed.
    ///
    /// Every chunk index is returned exactly once across all workers.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= self.workers()`.
    pub fn claim(&self, worker: usize) -> Option<Claim> {
        let own = self.claim_from(worker);
        if own.is_some() {
            return own.map(|chunk| Claim {
                chunk,
                stolen: false,
            });
        }
        let workers = self.workers();
        for offset in 1..workers {
            let victim = (worker + offset) % workers;
            if let Some(chunk) = self.claim_from(victim) {
                return Some(Claim {
                    chunk,
                    stolen: true,
                });
            }
        }
        None
    }

    fn claim_from(&self, range: usize) -> Option<usize> {
        let end = self.bounds[range + 1];
        // Relaxed is enough: the chunk payloads are handed over by the
        // caller (mutex-guarded spans), the cursor only arbitrates indices.
        if self.cursors[range].load(Ordering::Relaxed) >= end {
            return None;
        }
        let chunk = self.cursors[range].fetch_add(1, Ordering::Relaxed);
        (chunk < end).then_some(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn drain_all(num_chunks: usize, workers: usize) -> Vec<Vec<Claim>> {
        let sched = StealScheduler::new(num_chunks, workers);
        let mut logs = vec![Vec::new(); workers];
        crossbeam::scope(|scope| {
            for (w, log) in logs.iter_mut().enumerate() {
                let sched = &sched;
                scope.spawn(move |_| {
                    while let Some(claim) = sched.claim(w) {
                        log.push(claim);
                    }
                });
            }
        })
        .unwrap();
        logs
    }

    #[test]
    fn every_chunk_is_claimed_exactly_once() {
        for (chunks, workers) in [(0, 1), (1, 4), (7, 3), (64, 4), (100, 7), (5, 8)] {
            let logs = drain_all(chunks, workers);
            let mut all: Vec<usize> = logs.iter().flatten().map(|claim| claim.chunk).collect();
            all.sort_unstable();
            assert_eq!(
                all,
                (0..chunks).collect::<Vec<_>>(),
                "chunks {chunks} workers {workers}"
            );
        }
    }

    #[test]
    fn own_range_is_claimed_in_ascending_order() {
        // Low indices first is what makes the early-winner cutoff
        // effective; verify it per worker range under contention.
        let logs = drain_all(97, 4);
        for log in &logs {
            let own: Vec<usize> = log
                .iter()
                .filter(|claim| !claim.stolen)
                .map(|claim| claim.chunk)
                .collect();
            assert!(own.windows(2).all(|w| w[0] < w[1]), "{own:?}");
        }
    }

    #[test]
    fn skewed_batches_keep_all_workers_busy_via_stealing() {
        // Worker 0's chunks are slow; the other workers must finish their
        // own ranges and then steal from worker 0's — so the steal counter
        // is positive and every worker claimed at least one chunk.
        let workers = 4;
        let chunks = 32;
        let sched = StealScheduler::new(chunks, workers);
        let steals = AtomicUsize::new(0);
        let claimed = AtomicUsize::new(0);
        let mut per_worker = vec![0usize; workers];
        crossbeam::scope(|scope| {
            for (w, count) in per_worker.iter_mut().enumerate() {
                let (sched, steals, claimed) = (&sched, &steals, &claimed);
                scope.spawn(move |_| {
                    while let Some(claim) = sched.claim(w) {
                        *count += 1;
                        claimed.fetch_add(1, Ordering::Relaxed);
                        if claim.stolen {
                            steals.fetch_add(1, Ordering::Relaxed);
                        }
                        if claim.chunk < chunks / workers {
                            // The skew: worker 0's own range is expensive.
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(claimed.load(Ordering::Relaxed), chunks);
        assert!(
            steals.load(Ordering::Relaxed) > 0,
            "no steals despite skew: {per_worker:?}"
        );
        assert!(
            per_worker.iter().all(|&n| n > 0),
            "idle worker: {per_worker:?}"
        );
    }

    #[test]
    fn empty_ranges_are_stealable_noops() {
        // More workers than chunks: the rangeless workers immediately
        // steal (or finish), nothing is claimed twice, nothing hangs.
        let sched = StealScheduler::new(3, 8);
        assert_eq!(sched.workers(), 8);
        let mut all = Vec::new();
        for w in (0..8).rev() {
            while let Some(claim) = sched.claim(w) {
                all.push(claim.chunk);
            }
        }
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
        for w in 0..8 {
            assert_eq!(sched.claim(w), None);
        }
    }
}
